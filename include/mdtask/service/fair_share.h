// Weighted fair-share scheduling across tenant classes.
//
// Admitted requests queue here until the dispatcher has capacity; the
// scheduler decides WHICH queued request runs next. Two mechanisms
// compose:
//
//  * Across classes: weighted deficit round-robin (DRR). Each class
//    accumulates `quantum_bytes x weight` of byte credit per visit and
//    serves requests while its deficit covers the head request's cost
//    (max(1, input_bytes)). Over a saturated interval each class gets
//    bandwidth proportional to its weight regardless of how many
//    requests the others queue — an interactive trickle is not starved
//    by a best-effort flood.
//  * Within a class: round-robin over tenants (arrival order per
//    tenant), so one tenant's burst cannot monopolize its class.
//
// Deterministic: pop order is a pure function of the push sequence.
// Single-consumer oriented but fully thread-safe (the live service's
// dispatcher is one thread; the DES drives it single-threaded).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "mdtask/service/request.h"

namespace mdtask::service {

struct FairShareConfig {
  /// DRR weight per TenantClass (index = class). Defaults give the
  /// interactive class ~8/12 of a saturated service, batch ~3/12,
  /// best-effort ~1/12.
  std::array<std::uint32_t, kTenantClasses> weights{8, 3, 1};
  /// Byte credit one weight unit earns per DRR visit. Should be at
  /// least the typical request cost, or small requests serialize.
  std::uint64_t quantum_bytes = 1ull << 20;
};

class FairShareScheduler {
 public:
  explicit FairShareScheduler(FairShareConfig config) : config_(config) {}
  FairShareScheduler() : FairShareScheduler(FairShareConfig{}) {}

  /// Enqueues an admitted request.
  void push(AnalysisRequest request);

  /// Pops the next request in DRR order into `out`; false when empty.
  bool pop(AnalysisRequest* out);

  std::size_t queued() const;
  std::size_t queued(TenantClass tenant_class) const;

  const FairShareConfig& config() const noexcept { return config_; }

 private:
  /// One class's queues: per-tenant FIFOs served round-robin.
  struct ClassQueue {
    std::deque<std::uint64_t> tenant_order;  ///< RR ring of tenants
    std::unordered_map<std::uint64_t, std::deque<AnalysisRequest>>
        by_tenant;
    std::uint64_t deficit = 0;
    std::size_t size = 0;
  };

  static std::uint64_t cost(const AnalysisRequest& request) noexcept {
    return request.input_bytes > 0 ? request.input_bytes : 1;
  }
  /// Pops the head request of the class's round-robin tenant.
  AnalysisRequest pop_class(ClassQueue& q);

  FairShareConfig config_;
  mutable std::mutex mu_;
  std::array<ClassQueue, kTenantClasses> classes_;
  std::size_t cursor_ = 0;       ///< class the next DRR visit starts at
  bool visit_pending_ = true;    ///< cursor class not yet credited
};

}  // namespace mdtask::service
