// DES replay of the serving layer (docs/SERVICE.md).
//
// simulate_service() replays a seeded traffic schedule (traffic.h)
// through the REAL serving components — AdmissionController,
// FairShareScheduler, ResultCache, Batcher — against a sim::Resource
// engine pool in virtual time. Engine jobs cost a base latency plus a
// per-megabyte streaming term (one store pass amortized across the
// batch, so coalescing pays); cache hits answer without touching the
// pool. Optionally the autoscale TargetUtilizationPolicy closes the
// loop on the pool, scaling it with the diurnal/bursty demand.
//
// The reliability layer is mirrored in virtual time when enabled in
// config.service: deadline reapers fire as DES events, the executor
// boundary retries with virtual backoff and hedges at k x p95, the
// SAME CircuitBreakerBank / DegradationController / ChaosInjector
// classes run on the virtual clock, and chaos verdicts are keyed by
// chaos_job_id — so the live service and this twin agree byte for
// byte on every injected fault for the same seed.
//
// The report carries per-tenant-class latency percentiles and SLO
// attainment — the tables bench_service prints — plus a canonical
// event log: everything is a pure function of the config, so two runs
// with the same seed produce byte-identical logs, traces and tables.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mdtask/autoscale/policy.h"
#include "mdtask/fault/recovery.h"
#include "mdtask/service/service.h"
#include "mdtask/service/traffic.h"
#include "mdtask/trace/tracer.h"

namespace mdtask::service {

/// Per-class completion-latency targets (seconds from arrival).
struct SloTargets {
  std::array<double, kTenantClasses> latency_s{0.5, 2.0, 8.0};
};

struct ServiceSimConfig {
  TrafficConfig traffic;
  /// Admission / fair-share / cache / batch knobs (the live-service
  /// struct reused; its executor plays no role here).
  ServiceConfig service;
  /// Initial engine pool width (servers = concurrent engine jobs).
  std::size_t servers = 8;
  /// Engine job cost model: base + per-MB streaming + a marginal term
  /// per additional coalesced request.
  double service_base_s = 0.010;
  double service_per_mb_s = 0.020;
  double per_request_overhead_s = 0.002;
  SloTargets slo;
  /// Close the autoscale loop on the engine pool.
  bool autoscale_enabled = false;
  autoscale::TargetUtilizationPolicy::Config autoscale;
  double tick_interval_s = 0.5;
  /// Mirror arrivals into the log (off: only rejects, dispatches,
  /// completions and scale events are logged).
  bool log_arrivals = false;
  /// Mirror engine-job spans and service:* counters (virtual time).
  trace::Tracer* tracer = nullptr;
  std::uint32_t trace_pid = 40;
  /// Mirror chaos-failure / recovery decisions (scope kService) — the
  /// live service writes byte-identical canonical lines for the same
  /// chaos seed (the determinism tests diff the two).
  fault::RecoveryLog* recovery_log = nullptr;
  /// Track the N highest-volume tenants individually (0 = off); fills
  /// ServiceSimReport::tenants. Observation only: no behaviour change.
  std::size_t top_tenants = 0;
};

/// Outcome for one tenant class.
struct ClassOutcome {
  std::uint64_t requests = 0;    ///< arrivals
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;    ///< shed at admission
  std::uint64_t cache_hits = 0;
  std::uint64_t dedup_joins = 0; ///< joined an in-flight computation
  std::uint64_t completed = 0;
  // Reliability outcomes (all zero with the mechanisms disabled).
  std::uint64_t deadline_expired = 0;  ///< reaped kDeadlineExceeded
  std::uint64_t circuit_rejected = 0;  ///< rejected kCircuitOpen
  std::uint64_t brownout_shed = 0;     ///< best-effort shed by brownout
  std::uint64_t failed = 0;            ///< engine failure surfaced
  double p50_s = 0.0;  ///< completion latency percentiles (arrival ->
  double p95_s = 0.0;  ///< resolution, nearest-rank)
  double p99_s = 0.0;
  double max_s = 0.0;
  /// Completions within the class SLO over every judged request
  /// (completed + rejected + deadline_expired + circuit_rejected +
  /// brownout_shed + failed): any shed/miss/failure counts against.
  double slo_attainment = 0.0;
};

/// Outcome for one individual tenant (top-N by arrival volume).
struct TenantOutcome {
  std::uint64_t tenant = 0;
  TenantClass tenant_class = TenantClass::kBatch;
  std::uint64_t requests = 0;   ///< arrivals
  std::uint64_t completed = 0;
  std::uint64_t missed = 0;     ///< sheds + deadline misses + failures
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  /// Completions within the tenant's class SLO / (completed + missed).
  double slo_attainment = 0.0;
};

struct ServiceSimReport {
  std::array<ClassOutcome, kTenantClasses> classes;
  std::uint64_t requests = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t dedup_joins = 0;
  std::uint64_t engine_jobs = 0;       ///< pool acquisitions
  std::uint64_t batched_requests = 0;  ///< requests carried by jobs
  std::size_t initial_servers = 0;
  std::size_t peak_servers = 0;
  std::size_t final_servers = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  // Reliability totals (all zero with the mechanisms disabled).
  std::uint64_t deadline_expired = 0;
  std::uint64_t circuit_rejected = 0;
  std::uint64_t brownout_shed = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t retries = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t chaos_failures = 0;
  std::uint64_t chaos_delays = 0;
  /// Largest (resolution time - deadline) over requests carrying one:
  /// the deadline reaper keeps this at 0 — the acceptance bound.
  double max_deadline_overrun_s = 0.0;
  /// Top-N tenants by arrival volume (config.top_tenants), volume-desc
  /// then tenant-id-asc; empty when tracking is off.
  std::vector<TenantOutcome> tenants;
  double horizon_s = 0.0;   ///< virtual time of the last event
  double busy_time_s = 0.0; ///< pool busy-time integral
  /// Canonical event log: deterministic, byte-identical across runs of
  /// the same config (the determinism tests diff it verbatim).
  std::vector<std::string> log;
};

ServiceSimReport simulate_service(const ServiceSimConfig& config);

}  // namespace mdtask::service
