// DES replay of the serving layer (docs/SERVICE.md).
//
// simulate_service() replays a seeded traffic schedule (traffic.h)
// through the REAL serving components — AdmissionController,
// FairShareScheduler, ResultCache, Batcher — against a sim::Resource
// engine pool in virtual time. Engine jobs cost a base latency plus a
// per-megabyte streaming term (one store pass amortized across the
// batch, so coalescing pays); cache hits answer without touching the
// pool. Optionally the autoscale TargetUtilizationPolicy closes the
// loop on the pool, scaling it with the diurnal/bursty demand.
//
// The report carries per-tenant-class latency percentiles and SLO
// attainment — the tables bench_service prints — plus a canonical
// event log: everything is a pure function of the config, so two runs
// with the same seed produce byte-identical logs, traces and tables.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mdtask/autoscale/policy.h"
#include "mdtask/service/service.h"
#include "mdtask/service/traffic.h"
#include "mdtask/trace/tracer.h"

namespace mdtask::service {

/// Per-class completion-latency targets (seconds from arrival).
struct SloTargets {
  std::array<double, kTenantClasses> latency_s{0.5, 2.0, 8.0};
};

struct ServiceSimConfig {
  TrafficConfig traffic;
  /// Admission / fair-share / cache / batch knobs (the live-service
  /// struct reused; its executor plays no role here).
  ServiceConfig service;
  /// Initial engine pool width (servers = concurrent engine jobs).
  std::size_t servers = 8;
  /// Engine job cost model: base + per-MB streaming + a marginal term
  /// per additional coalesced request.
  double service_base_s = 0.010;
  double service_per_mb_s = 0.020;
  double per_request_overhead_s = 0.002;
  SloTargets slo;
  /// Close the autoscale loop on the engine pool.
  bool autoscale_enabled = false;
  autoscale::TargetUtilizationPolicy::Config autoscale;
  double tick_interval_s = 0.5;
  /// Mirror arrivals into the log (off: only rejects, dispatches,
  /// completions and scale events are logged).
  bool log_arrivals = false;
  /// Mirror engine-job spans and service:* counters (virtual time).
  trace::Tracer* tracer = nullptr;
  std::uint32_t trace_pid = 40;
};

/// Outcome for one tenant class.
struct ClassOutcome {
  std::uint64_t requests = 0;    ///< arrivals
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;    ///< shed at admission
  std::uint64_t cache_hits = 0;
  std::uint64_t dedup_joins = 0; ///< joined an in-flight computation
  std::uint64_t completed = 0;
  double p50_s = 0.0;  ///< completion latency percentiles (arrival ->
  double p95_s = 0.0;  ///< resolution, nearest-rank)
  double p99_s = 0.0;
  double max_s = 0.0;
  /// Completions within the class SLO / (completed + rejected): a shed
  /// request counts as a miss.
  double slo_attainment = 0.0;
};

struct ServiceSimReport {
  std::array<ClassOutcome, kTenantClasses> classes;
  std::uint64_t requests = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t dedup_joins = 0;
  std::uint64_t engine_jobs = 0;       ///< pool acquisitions
  std::uint64_t batched_requests = 0;  ///< requests carried by jobs
  std::size_t initial_servers = 0;
  std::size_t peak_servers = 0;
  std::size_t final_servers = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  double horizon_s = 0.0;   ///< virtual time of the last event
  double busy_time_s = 0.0; ///< pool busy-time integral
  /// Canonical event log: deterministic, byte-identical across runs of
  /// the same config (the determinism tests diff it verbatim).
  std::vector<std::string> log;
};

ServiceSimReport simulate_service(const ServiceSimConfig& config);

}  // namespace mdtask::service
