// Request batching: coalesce compatible requests into one engine job.
//
// Requests that read the SAME trajectory store with the SAME analysis
// family share their dominant cost — streaming the store through the
// engine — even when their parameters differ. The batcher holds such
// requests in an open batch for at most `max_delay_s`, dispatching
// early when the batch reaches `max_batch`; the engine then amortizes
// one pass over the store across every request in the job. Requests
// for different (store, family) pairs never coalesce.
//
// Time is the caller's clock: wall seconds in the live service,
// virtual seconds in the DES — the batcher itself never reads a clock,
// which is what keeps the simulation deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "mdtask/service/request.h"

namespace mdtask::service {

/// One coalesced engine execution: every request reads the same store
/// with the same family. Requests keep submission order.
struct EngineJob {
  std::uint64_t job_id = 0;
  AnalysisFamily family = AnalysisFamily::kRmsdSeries;
  std::uint64_t store_fingerprint = 0;
  /// Tightest ABSOLUTE member deadline (0 = no member carries one):
  /// the whole job must land by the earliest deadline it answers.
  double deadline_s = 0.0;
  std::vector<AnalysisRequest> requests;

  std::uint64_t total_bytes() const noexcept {
    std::uint64_t sum = 0;
    for (const AnalysisRequest& r : requests) sum += r.input_bytes;
    return sum;
  }
};

struct BatchConfig {
  std::size_t max_batch = 8;      ///< dispatch early at this size
  double max_delay_s = 0.005;     ///< oldest request waits at most this
  bool enabled = true;            ///< off: every request is its own job
};

class Batcher {
 public:
  explicit Batcher(BatchConfig config) : config_(config) {}
  Batcher() : Batcher(BatchConfig{}) {}

  /// Adds `request` at time `now_s`. Returns a job when the add closed
  /// a batch (size limit reached, or batching disabled); otherwise the
  /// request waits and the caller should arm a timer for
  /// next_deadline().
  std::optional<EngineJob> add(AnalysisRequest request, double now_s);

  /// Closes and returns every batch whose delay window expired at
  /// `now_s`, in deterministic (store, family) key order.
  std::vector<EngineJob> due(double now_s);

  /// Earliest open-batch deadline, if any batch is open.
  std::optional<double> next_deadline() const;

  /// Closes and returns every open batch (drain path).
  std::vector<EngineJob> flush_all();

  /// Requests waiting in open batches.
  std::size_t pending() const;

  /// Open (not yet sealed) batches; each will consume one engine slot
  /// when it dispatches — the DES reserves capacity against this.
  std::size_t open_batches() const;

  /// Jobs produced so far (job ids are 1..jobs()).
  std::uint64_t jobs() const;

  const BatchConfig& config() const noexcept { return config_; }

 private:
  using BatchKey = std::pair<std::uint64_t, std::uint8_t>;
  struct Open {
    std::vector<AnalysisRequest> requests;
    double deadline_s = 0.0;      ///< flush deadline (delay window)
    double job_deadline_s = 0.0;  ///< tightest member deadline (0 = none)
  };

  EngineJob seal(BatchKey key, Open&& open);  // mu_ held

  BatchConfig config_;
  mutable std::mutex mu_;
  /// std::map: due()/flush_all() emit in key order, deterministically.
  std::map<BatchKey, Open> open_;
  std::size_t pending_ = 0;
  std::uint64_t next_job_ = 0;
};

}  // namespace mdtask::service
