// Request reliability layer of the serving front end (docs/SERVICE.md).
//
// The serving path composes five independent mechanisms, each behind a
// disabled-by-default config so the baseline pipeline is byte-identical
// with everything off:
//
//  * Deadlines   — a request carries a completion budget; the service
//                  fails it fast with kDeadlineExceeded the moment the
//                  budget cannot be met, instead of letting it queue.
//  * Retry       — executor invocations are wrapped in the shared
//                  fault::RetryPolicy (bounded attempts, exponential
//                  backoff), scoped as fault::EngineId::kService.
//  * Hedging     — a job still running at latency_factor x the windowed
//                  p95 gets a duplicate submission; first completion
//                  wins, the loser's result is dropped.
//  * Breakers    — per-(tenant class, analysis family) circuit breakers
//                  trip on failure-rate windows and reject with
//                  kCircuitOpen until a half-open probe heals them.
//  * Brownout    — a DegradationController watches queue depth and
//                  breaker state and degrades in steps: shed best-effort
//                  first, then shrink batch delay windows, then serve
//                  stale cache entries flagged stale=true.
//
// Chaos testing drives all of the above: a ChaosInjector composes the
// deterministic fault::FaultInjector into the executor boundary —
// fail / slow / hang by pure hash of (seed, job identity, attempt) —
// and the SAME decision function runs in the simulate_service DES twin,
// so live and virtual chaos verdicts agree byte for byte.
//
// Time is always the caller's clock (wall seconds live, virtual seconds
// in the DES); nothing here reads a clock or mutates an RNG stream.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>

#include "mdtask/autoscale/metrics.h"
#include "mdtask/fault/fault.h"
#include "mdtask/fault/injector.h"
#include "mdtask/service/batcher.h"
#include "mdtask/service/request.h"

namespace mdtask::service {

// ---------------------------------------------------------------------------
// Deadlines

/// Per-request completion budgets. A request may carry its own
/// deadline_s; otherwise the tenant-class default applies. Budgets are
/// RELATIVE seconds at submission; admission rewrites them to absolute
/// service-clock deadlines.
struct DeadlineConfig {
  bool enabled = false;
  /// Default budget per tenant class (indexed by TenantClass), in the
  /// class's latency order: interactive tightest, best-effort loosest.
  std::array<double, kTenantClasses> default_s{0.5, 5.0, 30.0};

  double for_class(TenantClass tenant_class) const noexcept {
    return default_s[static_cast<std::size_t>(tenant_class)];
  }
};

/// The relative budget `request` submits under: its own deadline_s when
/// positive, else the class default. 0 when deadlines are disabled.
double deadline_budget_s(const DeadlineConfig& config,
                         const AnalysisRequest& request) noexcept;

// ---------------------------------------------------------------------------
// Retry and hedging

/// Bounded retry of failed executor invocations, using the shared
/// fault vocabulary so the chaos harness and the per-engine recovery
/// policies agree on backoff arithmetic.
struct RetryConfig {
  bool enabled = false;
  fault::RetryPolicy policy{3, 0.002, 2.0, 0.0};
};

/// Hedged execution: duplicate a job that outlives latency_factor x the
/// MetricsWindow p95 of recent job latencies; first completion wins.
struct HedgeConfig {
  bool enabled = false;
  double latency_factor = 2.0;  ///< hedge at this multiple of p95
  double min_delay_s = 0.001;   ///< never hedge sooner than this
  std::uint64_t min_samples = 16;  ///< completions needed for a p95 signal
};

/// Seconds after dispatch at which a hedge should launch, or nullopt
/// when hedging is off or the latency window has too few samples.
std::optional<double> hedge_delay_s(
    const HedgeConfig& config,
    const autoscale::MetricsSnapshot& snapshot) noexcept;

/// Attempt-index offset hedge runners use for chaos decisions, so a
/// hedge draws verdicts independent of its primary (both live and DES
/// paths share the constant — it is part of the chaos identity).
inline constexpr int kHedgeAttemptBase = 1 << 20;

// ---------------------------------------------------------------------------
// Circuit breakers

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };
const char* to_string(BreakerState state) noexcept;

struct BreakerConfig {
  bool enabled = false;
  std::size_t window = 32;         ///< outcomes per cell failure window
  std::size_t min_samples = 8;     ///< observations before a trip is legal
  double failure_threshold = 0.5;  ///< windowed failure fraction that trips
  double cooldown_s = 1.0;         ///< open duration before probing
  std::size_t half_open_probes = 2;  ///< probe successes required to close
};

/// One breaker per (tenant class, analysis family) cell, so a failing
/// leaflet pipeline cannot reject interactive RMSD traffic. All
/// transitions are pure functions of the recorded outcome sequence and
/// the caller's clock — the DES replays them deterministically.
class CircuitBreakerBank {
 public:
  explicit CircuitBreakerBank(BreakerConfig config) : config_(config) {}
  CircuitBreakerBank() : CircuitBreakerBank(BreakerConfig{}) {}

  /// May a request of this cell proceed at `now_s`? An open cell past
  /// its cooldown moves to half-open and admits up to half_open_probes
  /// in-flight probes; a false return is a typed kCircuitOpen shed.
  bool allow(TenantClass tenant_class, AnalysisFamily family, double now_s);

  /// Records the final outcome of one admitted request of this cell.
  void record(TenantClass tenant_class, AnalysisFamily family, bool ok,
              double now_s);

  /// Current state, with the open->half-open cooldown expiry applied
  /// read-only (the transition itself commits on the next allow()).
  BreakerState state(TenantClass tenant_class, AnalysisFamily family,
                     double now_s) const;

  /// Cells currently rejecting traffic (open and inside cooldown).
  std::size_t open_cells(double now_s) const;

  struct Stats {
    std::uint64_t trips = 0;       ///< closed/half-open -> open transitions
    std::uint64_t closes = 0;      ///< half-open -> closed recoveries
    std::uint64_t probes = 0;      ///< half-open requests admitted
    std::uint64_t rejections = 0;  ///< requests rejected by open cells
  };
  Stats stats() const;

  const BreakerConfig& config() const noexcept { return config_; }

 private:
  struct Cell {
    BreakerState state = BreakerState::kClosed;
    /// Ring of recent outcomes (1 = failure), window-bounded.
    std::array<std::uint8_t, 64> ring{};
    std::size_t next = 0;
    std::size_t count = 0;
    std::size_t failures = 0;
    double open_until_s = 0.0;
    std::size_t probes_inflight = 0;
    std::size_t probe_successes = 0;
  };

  static std::size_t index(TenantClass tenant_class,
                           AnalysisFamily family) noexcept {
    return static_cast<std::size_t>(tenant_class) * kAnalysisFamilies +
           static_cast<std::size_t>(family);
  }
  void trip(Cell& cell, double now_s);     // mu_ held
  void push_outcome(Cell& cell, bool ok);  // mu_ held

  BreakerConfig config_;
  mutable std::mutex mu_;
  std::array<Cell, kTenantClasses * kAnalysisFamilies> cells_{};
  Stats stats_;
};

// ---------------------------------------------------------------------------
// Graceful degradation (brownout)

/// Cumulative degradation steps: each level implies the ones before it.
enum class BrownoutLevel : std::uint8_t {
  kNormal = 0,
  kShedBestEffort = 1,  ///< reject best-effort submissions up front
  kShrinkBatch = 2,     ///< force-flush open batches (no delay windows)
  kServeStale = 3,      ///< answer misses from stale same-analysis entries
};
const char* to_string(BrownoutLevel level) noexcept;

struct BrownoutConfig {
  bool enabled = false;
  /// Queue-depth thresholds that ENTER each level (scheduler backlog).
  std::size_t shed_depth = 64;
  std::size_t shrink_depth = 128;
  std::size_t stale_depth = 256;
  /// A level exits only once depth falls to this fraction of its entry
  /// threshold (hysteresis; one level per update step).
  double exit_fraction = 0.5;
  /// Any open breaker cell forces at least kShedBestEffort: failure
  /// pressure degrades service even before the queue backs up.
  bool breaker_escalates = true;
};

/// Maps observed pressure (queue depth + open breaker cells) to a
/// BrownoutLevel with hysteresis. Pure function of the observation
/// sequence — no clock, no randomness — so the DES twin replays it.
class DegradationController {
 public:
  explicit DegradationController(BrownoutConfig config) : config_(config) {}
  DegradationController() : DegradationController(BrownoutConfig{}) {}

  /// Recomputes the level for the latest observation and returns it.
  BrownoutLevel update(std::size_t queue_depth,
                       std::size_t open_breaker_cells);

  BrownoutLevel level() const;

  struct Stats {
    std::uint64_t escalations = 0;  ///< level increases
    std::uint64_t recoveries = 0;   ///< level decreases
  };
  Stats stats() const;

  const BrownoutConfig& config() const noexcept { return config_; }

 private:
  std::size_t enter_depth(BrownoutLevel level) const noexcept;

  BrownoutConfig config_;
  mutable std::mutex mu_;
  BrownoutLevel level_ = BrownoutLevel::kNormal;
  Stats stats_;
};

// ---------------------------------------------------------------------------
// Chaos

/// Chaos rates applied at the executor boundary, per (job, attempt).
/// fail -> the attempt errors (worker-oom vocabulary); slow -> the
/// attempt takes slow_s longer (straggler); hang -> hang_s longer
/// (filesystem stall). Severity masks: fail > hang > slow.
struct ChaosConfig {
  bool enabled = false;
  std::uint64_t seed = 42;
  double fail_rate = 0.0;
  double slow_rate = 0.0;
  double slow_s = 0.010;
  double hang_rate = 0.0;
  double hang_s = 0.050;
};

/// One chaos verdict for an executor attempt.
struct ChaosOutcome {
  fault::FaultKind kind = fault::FaultKind::kNone;
  double delay_s = 0.0;  ///< added latency (slow / hang), 0 for fail

  bool fails() const noexcept {
    return kind == fault::FaultKind::kWorkerOomKill;
  }
  bool fired() const noexcept { return kind != fault::FaultKind::kNone; }
};

/// Order-independent chaos identity of a coalesced job: the XOR of the
/// mixed member RequestKey hashes, combined with the member count.
/// Live ticket numbering and DES job ids never enter the hash, which is
/// what lets the live service and the DES twin agree on every verdict.
/// (Two jobs carrying the same key multiset collide on purpose: they
/// are the same work, so they suffer the same chaos.)
std::uint64_t chaos_job_id(const EngineJob& job) noexcept;

/// Deterministic chaos decision point scoped EngineId::kService. Owns
/// its FaultPlan (the underlying injector keeps a pointer, so the
/// injector is non-copyable by design).
class ChaosInjector {
 public:
  explicit ChaosInjector(const ChaosConfig& config);

  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  /// The verdict for attempt `attempt` of the job identified by
  /// `chaos_id` (use chaos_job_id). Pure hash: any call order, any
  /// thread, same answer.
  ChaosOutcome decide(std::uint64_t chaos_id, int attempt) const noexcept;

  bool enabled() const noexcept { return config_.enabled; }
  const ChaosConfig& config() const noexcept { return config_; }

 private:
  ChaosConfig config_;
  fault::FaultPlan plan_;
  fault::FaultInjector injector_;
};

// ---------------------------------------------------------------------------
// Aggregate

/// Everything the reliability layer adds to ServiceConfig. All defaults
/// off: a default-constructed service behaves exactly as before.
struct ReliabilityConfig {
  DeadlineConfig deadline;
  RetryConfig retry;
  HedgeConfig hedge;
  BreakerConfig breaker;
  BrownoutConfig brownout;
};

}  // namespace mdtask::service
