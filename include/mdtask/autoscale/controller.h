// Actuation side of the mdtask::autoscale control loop.
//
// An AutoscaleController closes the loop each tick: snapshot the
// MetricsWindow, ask the policies for a verdict, apply it through the
// engine's resize/speculation callbacks, and record what happened in
// the RecoveryLog (AutoscaleRecord, mirrored as `autoscale:*` trace
// instants when the log has a tracer attached).
//
// Per-engine actuation (docs/AUTOSCALING.md):
//  * Spark — add_executors / decommission_executors + speculate_inflight
//  * Dask  — add_workers / retire_workers + speculate_inflight
//  * RP    — grow_pilot / shrink_pilot (no unit-level speculation: a CU
//            is atomic at the pilot level)
//  * MPI   — rigid: the controller records the decision it cannot act
//            on as a rigid-veto, mirroring the paper's rigid baseline.
//
// Who calls tick() decides the clock: the DES ticks in virtual time
// (simulate_adaptive_wave), live runs tick from a wall-clock
// AdaptiveDriver thread. The controller itself never reads a clock, so
// decision sequences are a deterministic function of the observed
// snapshots.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "mdtask/autoscale/metrics.h"
#include "mdtask/autoscale/policy.h"
#include "mdtask/fault/recovery.h"

namespace mdtask::autoscale {

/// How the controller reaches one engine. All callbacks are optional;
/// a missing callback turns the corresponding decision into a no-op
/// (rigid engines instead set `rigid` so vetoes are recorded).
struct EngineActions {
  fault::EngineId engine = fault::EngineId::kSpark;
  /// Rigid pool (MPI): resize decisions are logged as rigid-veto
  /// instead of applied.
  bool rigid = false;
  /// Adds `count` servers; returns how many joined.
  std::function<std::size_t(std::size_t count)> grow;
  /// Removes `count` servers (engine-default departure semantics);
  /// returns how many actually left.
  std::function<std::size_t(std::size_t count)> shrink;
  /// Backup-submits every in-flight task older than `threshold_s`;
  /// returns the number of copies submitted.
  std::function<std::size_t(double threshold_s)> speculate;
  /// Post-action pool size, for exact AutoscaleRecord bookkeeping.
  /// Missing: the controller derives it from the snapshot +/- applied.
  std::function<std::size_t()> pool_size;
};

/// Result of one control tick (what the bench tables report).
struct TickResult {
  Decision decision;           ///< first non-hold resize verdict
  std::size_t applied = 0;     ///< servers actually added/removed
  std::size_t speculated = 0;  ///< backup copies submitted this tick
  bool vetoed = false;         ///< resize decision hit a rigid pool
  MetricsSnapshot snapshot;    ///< the observation the tick acted on
};

/// Drives policies against one engine. Single ticker: exactly one
/// thread (or the DES event loop) calls tick(); the window it observes
/// may be fed concurrently by engine workers.
class AutoscaleController {
 public:
  /// `policies`, `window` and `log` are borrowed and must outlive the
  /// controller. Policy order matters: the first non-hold resize
  /// verdict wins the tick; speculation takes the first policy with a
  /// positive threshold.
  AutoscaleController(EngineActions actions, std::vector<Policy*> policies,
                      MetricsWindow* window,
                      fault::RecoveryLog* log = nullptr)
      : actions_(std::move(actions)),
        policies_(std::move(policies)),
        window_(window),
        log_(log) {}

  /// One control tick at `now_s` (the caller's clock). Observes,
  /// decides, acts, records.
  TickResult tick(double now_s);

  /// Actionable decisions recorded so far (the AutoscaleRecord seq of
  /// the next decision).
  std::size_t decisions() const noexcept { return seq_; }

  const EngineActions& actions() const noexcept { return actions_; }

  /// Resets every policy and the decision counter for a fresh run.
  void reset();

 private:
  void record(fault::AutoscaleAction action, std::size_t count,
              std::size_t pool, std::size_t queue_depth, double now_s);

  EngineActions actions_;
  std::vector<Policy*> policies_;
  MetricsWindow* window_;
  fault::RecoveryLog* log_;
  std::size_t seq_ = 0;
};

}  // namespace mdtask::autoscale
