// Policy-driven task-wave replay: the adaptive counterpart of
// fault::simulate_task_wave's fixed MembershipPlan schedules.
//
// The replay runs a task wave on a simulated server pool in virtual
// time, with an AutoscaleController ticking on a fixed virtual-time
// cadence. Each tick observes the pool (size, busy, queue depth) and
// the completed-task duration window, then acts through the same
// decision path live engines use: TargetUtilizationPolicy resizes the
// pool (engine-default departure semantics on the shrink side — Spark
// kills and restarts preempted work, Dask/RP drain, MPI is rigid and
// only logs vetoes) and StragglerSpeculationPolicy backup-submits
// in-flight tasks older than k x p95 (first-completion-wins; the loser
// copy is killed at the winner's completion, releasing its server —
// the same model as the static speculation study).
//
// Stragglers and filesystem stalls come from the FaultPlan through the
// pure-hash FaultInjector: a straggler's nominal duration stretches by
// the drawn factor, its backup copy runs at nominal speed. Failing
// fault kinds are out of scope here (simulate_task_wave is the
// recovery study); they execute clean.
//
// Everything is a deterministic function of (plan seed, durations,
// config): single-threaded virtual time, pure-hash draws, nearest-rank
// percentiles. Same seed, byte-identical RecoveryLog canonical
// sequences and traces on all four engines — the adaptive determinism
// tests pin this.
#pragma once

#include <cstdint>
#include <vector>

#include "mdtask/autoscale/policy.h"
#include "mdtask/fault/fault.h"
#include "mdtask/fault/recovery.h"
#include "mdtask/fault/sim_faults.h"

namespace mdtask::autoscale {

/// Knobs of the adaptive replay. Scaling and speculation can be gated
/// independently so benches can attribute wins to one mechanism.
struct AdaptiveSimConfig {
  TargetUtilizationPolicy::Config utilization;
  StragglerSpeculationPolicy::Config speculation;
  bool scaling_enabled = true;
  bool speculation_enabled = true;
  /// Virtual seconds between control ticks.
  double tick_interval_s = 0.5;
  /// Completed-task duration window fed to the policies.
  std::size_t metrics_capacity = 1024;
  /// Per-server speed multipliers (heterogeneous core classes): server
  /// slot s runs its holds at core_speeds[s % size] x nominal speed,
  /// and slots added by scale-ups continue the tiling. Build one with
  /// sim::core_speed_schedule. Empty (the default, and every published
  /// run) means all servers run at 1.0 — the replay is then event-for-
  /// event identical to the homogeneous model. Pair with
  /// speculation.core_class_aware to stop the controller from backup-
  /// copying tasks that are merely sitting on slow cores.
  std::vector<double> core_speeds;
};

/// Outcome of one adaptive replay.
struct AdaptiveOutcome {
  double makespan_s = 0.0;  ///< last task completion (virtual time)
  std::uint64_t ticks = 0;  ///< control ticks evaluated
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint64_t rigid_vetoes = 0;      ///< decisions MPI could not act on
  std::uint64_t speculative_copies = 0;
  std::uint64_t stragglers = 0;        ///< straggler faults injected
  std::uint64_t preempted = 0;         ///< holds displaced by kill-shrinks
  std::size_t peak_pool = 0;
  std::size_t final_pool = 0;
  /// Effective task latency (first dispatch to first completion,
  /// nearest-rank over all tasks): the tail speculation is meant to cut.
  double p50_task_s = 0.0;
  double p95_task_s = 0.0;
  double p99_task_s = 0.0;
};

/// Replays `durations` on an initially `cores`-wide pool with the
/// controller in the loop. `log` (optional) receives every actionable
/// decision as an AutoscaleRecord and every backup submission as a
/// speculative-copy RecoveryEvent, all stamped with virtual
/// microseconds; attach a tracer to mirror them as `autoscale:*` /
/// `recovery:*` instants. `pool_timeline` (optional) samples (virtual
/// time, pool size) at start and whenever a tick changed the pool.
AdaptiveOutcome simulate_adaptive_wave(
    std::size_t cores, const std::vector<double>& durations,
    const fault::FaultPlan& plan, fault::EngineId engine,
    const AdaptiveSimConfig& config, fault::RecoveryLog* log = nullptr,
    std::vector<fault::PoolSample>* pool_timeline = nullptr);

}  // namespace mdtask::autoscale
