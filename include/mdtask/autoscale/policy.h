// Decision side of the mdtask::autoscale control loop.
//
// A Policy turns one MetricsSnapshot into at most one resize Decision
// per tick, plus an optional straggler-speculation threshold. Policies
// are pure functions of the snapshot and their own configuration (no
// wall clock, no randomness): the only state a policy keeps is the
// timestamp of its last action, and that timestamp comes from the
// snapshot's clock — virtual seconds in the DES, wall seconds in live
// drivers. Same observations in, same decisions out.
//
//  * TargetUtilizationPolicy — Dask-adaptive-style resizing: size the
//    pool for the observed demand (busy + queued) at a target
//    utilization, with high/low watermark hysteresis, a per-action
//    cooldown, and a bounded step per tick.
//  * StragglerSpeculationPolicy — Spark-speculation-style backup
//    submission: any in-flight task older than k x p95 of the completed
//    window earns a backup copy (first-completion-wins on the engine
//    side). Holds until enough completions exist for p95 to mean
//    anything.
#pragma once

#include <cstddef>
#include <string>

#include "mdtask/autoscale/metrics.h"

namespace mdtask::autoscale {

/// One resize decision for a control tick. kHold carries no count.
struct Decision {
  enum class Kind { kHold, kScaleUp, kScaleDown };
  Kind kind = Kind::kHold;
  std::size_t count = 0;  ///< servers to add/remove
  /// Human-readable rationale ("util 0.97 >= 0.90, demand 41 -> +8"),
  /// surfaced in bench tables and traces; not part of canonical logs.
  std::string reason;
};

/// Interface of one pluggable control policy. decide() may mutate
/// internal bookkeeping (cooldown clocks) and is called by exactly one
/// controller; the const queries must stay pure.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual const char* name() const noexcept = 0;

  /// Resize verdict for this tick. Default: always hold.
  virtual Decision decide(const MetricsSnapshot&) { return {}; }

  /// Straggler threshold in seconds: an in-flight task older than this
  /// should get a backup copy. <= 0 disables speculation this tick.
  virtual double speculation_threshold_s(const MetricsSnapshot&) const {
    return 0.0;
  }

  /// Forgets learned state (cooldown clocks) so the policy can drive a
  /// fresh run.
  virtual void reset() {}
};

/// Feedback-driven pool sizing at a target utilization.
class TargetUtilizationPolicy : public Policy {
 public:
  struct Config {
    /// Size the pool so demand / pool ~= target when acting.
    double target = 0.80;
    /// Act only outside the [low, high] utilization band (hysteresis).
    double high_watermark = 0.90;
    double low_watermark = 0.50;
    /// Minimum control-time seconds between two actions.
    double cooldown_s = 2.0;
    std::size_t min_pool = 1;
    std::size_t max_pool = 4096;
    /// Largest resize in one decision.
    std::size_t max_step = 16;
  };

  TargetUtilizationPolicy() = default;
  explicit TargetUtilizationPolicy(Config config) : config_(config) {}

  const char* name() const noexcept override { return "target-utilization"; }
  Decision decide(const MetricsSnapshot& m) override;
  void reset() override { last_action_s_ = kNever; }

  const Config& config() const noexcept { return config_; }

 private:
  static constexpr double kNever = -1e300;
  Config config_;
  double last_action_s_ = kNever;
};

/// Backup-submit stragglers once the completed-task window is
/// trustworthy: threshold = threshold_factor x windowed p95.
class StragglerSpeculationPolicy : public Policy {
 public:
  struct Config {
    /// k in the k x p95 straggler test.
    double threshold_factor = 2.0;
    /// Completions required before p95 is considered meaningful.
    std::uint64_t min_completed = 8;
    /// Floor on the threshold, guarding against degenerate tiny p95.
    double min_threshold_s = 0.0;
    /// Distinguish "slow core" from "slow task" on heterogeneous
    /// machines: the engine compares each in-flight copy's wall age
    /// SCALED BY its core's speed multiplier against the threshold, and
    /// records speed-normalized latencies into the window. A task at
    /// 2x wall age on a 0.5x core is exactly on schedule and is NOT
    /// speculated; the same age on a 1.0x core is. No effect on
    /// homogeneous pools (all multipliers 1.0), so defaults/published
    /// runs are unchanged.
    bool core_class_aware = false;
  };

  StragglerSpeculationPolicy() = default;
  explicit StragglerSpeculationPolicy(Config config) : config_(config) {}

  const char* name() const noexcept override { return "straggler-speculation"; }
  double speculation_threshold_s(const MetricsSnapshot& m) const override;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace mdtask::autoscale
