// Observation side of the mdtask::autoscale control loop.
//
// A MetricsWindow aggregates the live signals a scaling policy feeds on:
// the latest pool/queue observation (pool size, busy servers, queue
// depth) and a sliding window of completed-task durations from which the
// per-tick snapshot derives p50/p95/p99. Producers are the engines
// (task-completion hooks) and the controller's tick (pool observation);
// the only consumer is Policy::decide/speculation_threshold_s via
// snapshot().
//
// Percentiles use the nearest-rank definition: a snapshot is a pure
// function of the multiset of windowed samples, so the DES — which
// records completions in virtual-time order — gets byte-identical
// snapshots for the same seed. Live engines feed the window from worker
// threads (the window is thread-safe); their snapshots depend on wall
// clock timing, which is why the determinism guarantees in
// docs/AUTOSCALING.md are stated for the DES replays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mdtask::autoscale {

/// Nearest-rank percentile of `samples` (q in [0, 100]); sorts a copy.
/// Returns 0 for an empty sample set.
double duration_percentile(std::vector<double> samples, double q);

/// One coherent observation handed to policies: the latest pool state
/// plus duration percentiles over the completed-task window.
struct MetricsSnapshot {
  double now_s = 0.0;          ///< control-loop time of the snapshot
  std::size_t pool_size = 0;   ///< servers in the pool (post-drain view)
  std::size_t busy = 0;        ///< servers currently holding a task
  std::size_t queue_depth = 0; ///< tasks waiting for a server
  double utilization = 0.0;    ///< busy / pool_size, clamped to [0, 1]
  std::uint64_t completed = 0; ///< completions recorded since reset()
  double p50_s = 0.0;          ///< windowed completed-task duration p50
  double p95_s = 0.0;
  double p99_s = 0.0;
};

/// Thread-safe sliding-window aggregator. `capacity` bounds the
/// duration window (ring buffer; older completions age out) so long
/// runs track the recent regime rather than the whole history.
class MetricsWindow {
 public:
  explicit MetricsWindow(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Latest pool observation (typically once per control tick).
  void observe_pool(std::size_t pool_size, std::size_t busy,
                    std::size_t queue_depth);

  /// One completed task took `seconds` from first dispatch to
  /// completion (engines call this from their completion paths).
  void record_task_duration(double seconds);

  /// Coherent snapshot stamped with `now_s` (the caller's clock —
  /// virtual seconds in the DES, wall seconds in live drivers).
  MetricsSnapshot snapshot(double now_s = 0.0) const;

  /// Completions recorded since construction/reset.
  std::uint64_t completed() const;

  void reset();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<double> window_;  ///< ring buffer of recent durations
  std::size_t next_ = 0;        ///< ring cursor once the window is full
  std::uint64_t completed_ = 0;
  std::size_t pool_size_ = 0;
  std::size_t busy_ = 0;
  std::size_t queue_depth_ = 0;
};

}  // namespace mdtask::autoscale
