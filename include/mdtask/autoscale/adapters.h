// Live-engine hookups for the autoscale control loop.
//
// Each factory wraps one running engine into an EngineAdapter: the
// EngineActions the AutoscaleController acts through, plus an observe
// callback that samples the engine's pool (size, busy, queue depth)
// into a MetricsWindow right before each tick. Completed-task
// durations flow into the same window through the engine's own config
// (SparkConfig/DaskConfig/PilotDescription `metrics_window`).
//
// Header-only on purpose: mdtask_autoscale sits below the engines in
// the link order, so its compiled sources cannot reference them — but
// any binary that links mdtask_engines can include this glue.
#pragma once

#include <functional>

#include "mdtask/autoscale/controller.h"
#include "mdtask/engines/dask/dask.h"
#include "mdtask/engines/rp/pilot.h"
#include "mdtask/engines/spark/spark.h"

namespace mdtask::autoscale {

/// One engine's hookup for a live control loop. The adapter borrows
/// the engine object; keep the engine alive for the adapter's
/// lifetime.
struct EngineAdapter {
  EngineActions actions;
  /// Samples (pool, busy, queued) into the window. The driver calls
  /// this right before each controller tick.
  std::function<void(MetricsWindow&)> observe;
};

/// Spark: executor-pool resizing via dynamic allocation plus
/// spark.speculation-style backup tasks.
inline EngineAdapter spark_adapter(spark::SparkContext& ctx) {
  EngineAdapter adapter;
  adapter.actions.engine = fault::EngineId::kSpark;
  adapter.actions.grow = [&ctx](std::size_t count) {
    ctx.add_executors(count);
    return count;
  };
  adapter.actions.shrink = [&ctx](std::size_t count) {
    const std::size_t before = ctx.pool().size();
    ctx.decommission_executors(count);
    const std::size_t after = ctx.pool().size();
    return before > after ? before - after : 0;
  };
  adapter.actions.speculate = [&ctx](double threshold_s) {
    return ctx.speculate_inflight(threshold_s);
  };
  adapter.actions.pool_size = [&ctx] { return ctx.pool().size(); };
  adapter.observe = [&ctx](MetricsWindow& window) {
    window.observe_pool(ctx.pool().size(), ctx.pool().busy(),
                        ctx.pool().queued());
  };
  return adapter;
}

/// Dask: worker add/retire plus straggler re-enqueue speculation.
inline EngineAdapter dask_adapter(dask::DaskClient& client) {
  EngineAdapter adapter;
  adapter.actions.engine = fault::EngineId::kDask;
  adapter.actions.grow = [&client](std::size_t count) {
    client.add_workers(count);
    return count;
  };
  adapter.actions.shrink = [&client](std::size_t count) {
    return client.retire_workers(count);
  };
  adapter.actions.speculate = [&client](double threshold_s) {
    return client.speculate_inflight(threshold_s);
  };
  adapter.actions.pool_size = [&client] { return client.workers(); };
  adapter.observe = [&client](MetricsWindow& window) {
    window.observe_pool(client.workers(), client.busy(), client.queued());
  };
  return adapter;
}

/// RADICAL-Pilot: pilot resizing only — a CU is atomic at the pilot
/// level, so there is no unit-level speculation callback.
inline EngineAdapter rp_adapter(rp::UnitManager& manager) {
  EngineAdapter adapter;
  adapter.actions.engine = fault::EngineId::kRp;
  adapter.actions.grow = [&manager](std::size_t count) {
    manager.grow_pilot(count);
    return count;
  };
  adapter.actions.shrink = [&manager](std::size_t count) {
    return manager.shrink_pilot(count);
  };
  adapter.actions.pool_size = [&manager] { return manager.cores(); };
  adapter.observe = [&manager](MetricsWindow& window) {
    window.observe_pool(manager.cores(), manager.busy_cores(),
                        manager.queued_units());
  };
  return adapter;
}

/// MPI: a rigid world — resize decisions are recorded as rigid vetoes,
/// never applied. `busy` and `queued` samplers are optional; absent,
/// the world observes as fully busy with an empty queue (a static
/// decomposition has no task queue to deepen).
inline EngineAdapter mpi_adapter(
    std::size_t world_size, std::function<std::size_t()> busy = nullptr,
    std::function<std::size_t()> queued = nullptr) {
  EngineAdapter adapter;
  adapter.actions.engine = fault::EngineId::kMpi;
  adapter.actions.rigid = true;
  adapter.actions.pool_size = [world_size] { return world_size; };
  adapter.observe = [world_size, busy = std::move(busy),
                     queued = std::move(queued)](MetricsWindow& window) {
    window.observe_pool(world_size, busy ? busy() : world_size,
                        queued ? queued() : 0);
  };
  return adapter;
}

}  // namespace mdtask::autoscale
