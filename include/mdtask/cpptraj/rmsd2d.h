// CPPTraj comparator: optimized C++ 2D-RMSD (Sec. 2.2, Fig. 6).
//
// CPPTraj computes the all-pairs frame RMSD matrix ("2D-RMSD", Alg. 1
// without the min-max reduction), parallelized by distributing frames
// over MPI ranks. The paper contrasts a GNU build with no optimization
// against an Intel -O3 build of the same code; this module reproduces
// that contrast honestly: rmsd2d_block_reference is compiled at -O0 and
// rmsd2d_block_optimized at -O3 + unrolled accumulation (see
// src/CMakeLists.txt), so the measured gap comes from real compiler
// optimization of the same inner loop family.
#pragma once

#include <cstddef>
#include <vector>

#include "mdtask/traj/trajectory.h"

namespace mdtask::cpptraj {

/// Which build of the kernel to run. kReference and kOptimized are
/// Fig. 6's two curves; kTiled is the batch-kernel successor running the
/// cache-blocked SoA kernel of mdtask/kernels/batch.h (vectorized
/// policy).
enum class Rmsd2dKernel { kReference, kOptimized, kTiled };

/// All-pairs frame RMSD between two trajectories, row-major
/// [t1.frames() x t2.frames()]. Reference build (compiled -O0).
std::vector<double> rmsd2d_block_reference(const traj::Trajectory& t1,
                                           const traj::Trajectory& t2);

/// Same contract, optimized build (compiled -O3, blocked accumulation).
std::vector<double> rmsd2d_block_optimized(const traj::Trajectory& t1,
                                           const traj::Trajectory& t2);

/// Same contract via the tiled SoA batch kernel (kernels::rmsd2d_packed,
/// kVectorized policy): packs both trajectories once and fills the
/// matrix in kFrameTile x kFrameTile tiles. Values agree with the other
/// kernels to ~1e-6 relative (single-precision lane accumulation).
std::vector<double> rmsd2d_block_tiled(const traj::Trajectory& t1,
                                       const traj::Trajectory& t2);

/// Dispatches on the kernel enum.
std::vector<double> rmsd2d_block(const traj::Trajectory& t1,
                                 const traj::Trajectory& t2,
                                 Rmsd2dKernel kernel);

/// Hausdorff distance recovered from a full 2D-RMSD matrix (the paper's
/// CPPTraj pipeline: 2D-RMSD in parallel, min-max gathered afterwards).
double hausdorff_from_matrix(const std::vector<double>& matrix,
                             std::size_t rows, std::size_t cols);

/// Result of a parallel CPPTraj-style PSA run.
struct CpptrajPsaResult {
  /// Hausdorff distance per trajectory pair, row-major N x N.
  std::vector<double> distances;
  std::size_t n = 0;
  double wall_seconds = 0.0;
};

/// Frame-distributed parallel 2D-RMSD of ONE trajectory pair: CPPTraj
/// "reads in parallel frames from a single trajectory file... the
/// frames are equally distributed to the MPI processes" (Sec. 2.2).
/// Each rank owns a contiguous row block of the matrix; the full matrix
/// is gathered at rank 0. Identical output to rmsd2d_block (tested).
std::vector<double> rmsd2d_parallel(const traj::Trajectory& t1,
                                    const traj::Trajectory& t2, int ranks,
                                    Rmsd2dKernel kernel);

/// Runs PSA over the ensemble the CPPTraj way: the trajectory-pair list
/// is distributed over `ranks` MPI ranks (at least one rank per ensemble
/// member in the real tool); each rank computes full 2D-RMSD blocks with
/// the chosen kernel; results are gathered and the Hausdorff min-max is
/// applied at the root.
CpptrajPsaResult cpptraj_psa(const traj::Ensemble& ensemble, int ranks,
                             Rmsd2dKernel kernel);

}  // namespace mdtask::cpptraj
