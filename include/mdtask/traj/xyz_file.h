// XYZ: the ubiquitous plain-text trajectory interchange format.
//
// Layout per frame:
//   <atom count>\n
//   <comment line>\n
//   <element> <x> <y> <z>\n  (atom count times)
// repeated for every frame. All frames must share the atom count.
// A second on-disk format (besides MDT) gives the library a real
// interop path and exercises text parsing error handling.
#pragma once

#include <string>

#include "mdtask/common/error.h"
#include "mdtask/traj/trajectory.h"

namespace mdtask::traj {

/// Writes `trajectory` as multi-frame XYZ; `element` labels every atom.
Status write_xyz(const std::string& path, const Trajectory& trajectory,
                 const std::string& element = "C");

/// Reads a multi-frame XYZ file. Fails with kFormatError on malformed
/// headers, short frames, inconsistent atom counts or non-numeric
/// coordinates.
Result<Trajectory> read_xyz(const std::string& path);

}  // namespace mdtask::traj
