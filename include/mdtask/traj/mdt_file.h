// MDT: a minimal binary trajectory file format.
//
// The paper's pipelines read trajectories from a shared parallel
// filesystem (Lustre); MDT is this repository's on-disk stand-in. Layout:
//   magic "MDTRJ1\n" (7 bytes) | u8 flags | u64 frames | u64 atoms |
//   float32 xyz data, frame-major.
// The format supports partial reads of frame ranges, which the engines use
// for per-task input staging.
#pragma once

#include <cstdint>
#include <string>

#include "mdtask/common/error.h"
#include "mdtask/traj/trajectory.h"

namespace mdtask::traj {

/// Writes a trajectory to `path`; overwrites existing files.
Status write_mdt(const std::string& path, const Trajectory& trajectory);

/// Reads a whole trajectory.
Result<Trajectory> read_mdt(const std::string& path);

/// Reads only frames [first, first+count), e.g. one rank's frame block.
Result<Trajectory> read_mdt_frames(const std::string& path,
                                   std::size_t first, std::size_t count);

/// Shape of an MDT file without reading the payload.
struct MdtInfo {
  std::size_t frames = 0;
  std::size_t atoms = 0;
};
Result<MdtInfo> stat_mdt(const std::string& path);

}  // namespace mdtask::traj
