// 3-D geometry primitives for MD frames.
//
// Positions are stored in single precision, matching common MD trajectory
// formats (DCD/XTC); distance kernels accumulate in double.
#pragma once

#include <cmath>

namespace mdtask::traj {

/// A 3-D position/displacement in single precision.
struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(Vec3 o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(Vec3 o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(float s) const noexcept {
    return {x * s, y * s, z * s};
  }
  constexpr Vec3& operator+=(Vec3 o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr bool operator==(const Vec3&) const noexcept = default;
};

/// Squared Euclidean distance in double precision.
inline double dist2(Vec3 a, Vec3 b) noexcept {
  const double dx = static_cast<double>(a.x) - static_cast<double>(b.x);
  const double dy = static_cast<double>(a.y) - static_cast<double>(b.y);
  const double dz = static_cast<double>(a.z) - static_cast<double>(b.z);
  return dx * dx + dy * dy + dz * dz;
}

/// Euclidean distance in double precision.
inline double dist(Vec3 a, Vec3 b) noexcept { return std::sqrt(dist2(a, b)); }

}  // namespace mdtask::traj
