// Atom selections and trajectory sub-setting (Sec. 2: "Sub-setting
// methods are used to isolate parts of interest of MD simulation").
//
// A selection is a sorted, duplicate-free list of atom indices. Builders
// cover the common geometric and index-based criteria; combinators give
// the boolean algebra; subset_* extract reduced frames/trajectories.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mdtask/common/error.h"
#include "mdtask/traj/trajectory.h"

namespace mdtask::traj {

/// Sorted unique atom indices.
using AtomSelection = std::vector<std::uint32_t>;

/// Every atom of an n-atom system.
AtomSelection select_all(std::size_t n_atoms);

/// Atoms with index in [begin, end).
AtomSelection select_range(std::uint32_t begin, std::uint32_t end);

/// Every `stride`-th atom of an n-atom system (stride >= 1).
AtomSelection select_stride(std::size_t n_atoms, std::size_t stride);

/// Atoms within `radius` of `center` in the given frame.
AtomSelection select_sphere(std::span<const Vec3> frame, Vec3 center,
                            double radius);

/// Atoms whose coordinate along `axis` (0=x, 1=y, 2=z) lies in [lo, hi].
AtomSelection select_slab(std::span<const Vec3> frame, int axis, double lo,
                          double hi);

/// Normalizes an arbitrary index list into a selection (sorts, dedups).
AtomSelection make_selection(std::vector<std::uint32_t> indices);

/// Boolean algebra over selections.
AtomSelection selection_union(const AtomSelection& a, const AtomSelection& b);
AtomSelection selection_intersection(const AtomSelection& a,
                                     const AtomSelection& b);
AtomSelection selection_difference(const AtomSelection& a,
                                   const AtomSelection& b);

/// Extracts the selected atoms of one frame.
std::vector<Vec3> subset_frame(std::span<const Vec3> frame,
                               const AtomSelection& selection);

/// Extracts the selected atoms of every frame. Returns kOutOfRange if
/// the selection references atoms beyond the trajectory's width.
Result<Trajectory> subset_trajectory(const Trajectory& trajectory,
                                     const AtomSelection& selection);

/// Extracts frames [begin, end) with the given stride (>= 1).
/// Returns kOutOfRange for begin/end outside the trajectory.
Result<Trajectory> slice_frames(const Trajectory& trajectory,
                                std::size_t begin, std::size_t end,
                                std::size_t stride = 1);

}  // namespace mdtask::traj
