// Dataset catalog mirroring the paper's evaluation datasets.
//
// PSA (Sec. 4.2): trajectories with 3341 (small), 6682 (medium) and 13364
// (large) atoms per frame, 102 frames, in ensembles of 128 and 256.
// Leaflet Finder (Sec. 4.3): membranes of 131k, 262k, 524k and 4M atoms
// with ~896k, ~1.75M, ~3.52M and ~44.6M contact edges.
//
// Each entry also carries a `scale` knob so tests and laptop-sized runs
// can use geometrically shrunken versions of the same dataset family.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mdtask/traj/generators.h"

namespace mdtask::traj {

/// PSA dataset family sizes from the paper.
enum class PsaSize { kSmall, kMedium, kLarge };

/// Atom count per frame for a PSA dataset size (3341 / 6682 / 13364).
std::size_t psa_atoms(PsaSize size) noexcept;
const char* to_string(PsaSize size) noexcept;

/// Generator parameters for a paper PSA dataset, optionally scaled down by
/// `scale` (atoms and frames divided by `scale`, minimum 4 / 4).
ProteinTrajectoryParams psa_params(PsaSize size, std::size_t scale = 1);

/// Leaflet Finder dataset family from the paper.
enum class LfSize { k131k, k262k, k524k, k4M };

/// Total atom count of an LF dataset (131072 / 262144 / 524288 / 4194304).
std::size_t lf_atoms(LfSize size) noexcept;
const char* to_string(LfSize size) noexcept;

/// Approximate edge count the paper reports for each LF dataset.
std::size_t lf_paper_edges(LfSize size) noexcept;

/// Generator parameters for a paper LF dataset, optionally scaled down.
BilayerParams lf_params(LfSize size, std::size_t scale = 1);

/// All PSA sizes / LF sizes, for sweeps.
std::vector<PsaSize> all_psa_sizes();
std::vector<LfSize> all_lf_sizes();

}  // namespace mdtask::traj
