// Synthetic dataset generators.
//
// The paper evaluates on real biomolecular data we cannot redistribute:
// protein trajectory ensembles (3341 / 6682 / 13364 atoms x 102 frames)
// for PSA, and lipid membranes (131k / 262k / 524k / 4M atoms) for the
// Leaflet Finder. These generators produce synthetic systems with the
// same shapes and — for the membranes — the same graph densities, which is
// what the algorithms' cost depends on (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>
#include <vector>

#include "mdtask/traj/trajectory.h"

namespace mdtask::traj {

/// Parameters for the correlated-random-walk protein trajectory generator.
struct ProteinTrajectoryParams {
  std::size_t atoms = 3341;   ///< paper "small" = 3341 atoms/frame
  std::size_t frames = 102;   ///< paper trajectories have 102 frames
  double coil_radius = 20.0;  ///< initial random-coil radius (Angstrom)
  double step_sigma = 0.15;   ///< per-frame per-atom displacement stddev
  double drift = 0.5;         ///< slow collective drift magnitude per frame
  std::uint64_t seed = 1;
};

/// Generates one smooth synthetic trajectory: atoms start in a Gaussian
/// coil and move by correlated small steps plus a slow collective drift,
/// producing paths whose pairwise Hausdorff distances are non-degenerate.
Trajectory make_protein_trajectory(const ProteinTrajectoryParams& params);

/// Generates an ensemble of `count` trajectories with distinct seeds
/// (seed, seed+1, ...). Each member is independent, as in the paper where
/// ensemble members come from different simulation runs.
Ensemble make_protein_ensemble(std::size_t count,
                               const ProteinTrajectoryParams& params);

/// Parameters for the lipid-bilayer generator.
struct BilayerParams {
  std::size_t atoms = 131072;     ///< total atoms across both leaflets
  double spacing = 1.0;           ///< in-plane lattice spacing (Angstrom)
  double jitter = 0.18;           ///< positional noise stddev (x spacing)
  double leaflet_gap = 4.0;       ///< z distance between leaflets (x spacing)
  double curvature = 0.05;        ///< gentle sheet curvature amplitude
  std::uint64_t seed = 7;
};

/// A generated membrane: positions plus ground-truth leaflet labels.
struct Bilayer {
  std::vector<Vec3> positions;
  std::vector<std::uint8_t> leaflet;  ///< 0 = lower sheet, 1 = upper sheet

  std::size_t atoms() const noexcept { return positions.size(); }
};

/// Builds two locally-parallel curved sheets of jittered lattice points.
/// With the default parameters and `cutoff = 1.5 * spacing`, the contact
/// graph's average degree is ~13.7, matching the paper's edge counts
/// (131k atoms -> ~896k edges, ..., 4M atoms -> ~44.6M edges).
Bilayer make_bilayer(const BilayerParams& params);

/// The radius used by the Leaflet Finder experiments for a given bilayer
/// spacing (1.5 x spacing; includes first and second lattice neighbours).
double default_cutoff(const BilayerParams& params);

/// Parameters for the lipid-resolved membrane generator.
struct LipidBilayerParams {
  std::size_t lipids = 256;      ///< lipid molecules across both leaflets
  std::size_t tail_beads = 3;    ///< tail atoms per lipid (below the head)
  double spacing = 1.0;          ///< in-plane head lattice spacing
  double jitter = 0.15;          ///< positional noise stddev (x spacing)
  double leaflet_gap = 6.0;      ///< head-to-head z distance (x spacing)
  std::uint64_t seed = 21;
};

/// Builds a membrane at per-lipid resolution as a Universe: every lipid
/// contributes one phosphate head (atom name "P", residue = lipid id)
/// and `tail_beads` tail atoms ("C1".."Ck") pointing into the membrane
/// interior. This is the system the real MDAnalysis LeafletFinder
/// analyzes: it runs on the HEAD-GROUP selection ("name P"), whose two
/// sheets are separated, while the interleaved tails are not.
class Universe;  // fwd (universe.h)
Universe make_lipid_bilayer_universe(const LipidBilayerParams& params);

}  // namespace mdtask::traj
