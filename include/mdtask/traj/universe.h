// Universe: topology + trajectory, MDAnalysis's central abstraction
// ("a common object-oriented API to trajectory data", Sec. 2.1).
//
// The topology carries per-atom metadata (name, residue id, residue
// name, mass); select() evaluates an MDAnalysis-flavoured selection
// expression against topology and coordinates:
//
//   name CA
//   resname LYS ARG
//   resid 10:20
//   index 0:99
//   mass > 12.0
//   around 5.0 of (name CA and resid 1)     [distance to a sub-selection]
//   not name H* ; and / or ; parentheses
//
// Wildcards: a trailing '*' in a name/resname matches any suffix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mdtask/common/error.h"
#include "mdtask/traj/selection.h"
#include "mdtask/traj/trajectory.h"

namespace mdtask::traj {

/// Per-atom static metadata.
struct Atom {
  std::string name = "X";
  std::string residue_name = "UNK";
  std::uint32_t residue_id = 0;
  float mass = 0.0f;
};

/// The system topology: one Atom entry per trajectory column.
class Topology {
 public:
  Topology() = default;
  explicit Topology(std::vector<Atom> atoms) : atoms_(std::move(atoms)) {}

  std::size_t size() const noexcept { return atoms_.size(); }
  const Atom& atom(std::size_t i) const noexcept { return atoms_[i]; }
  const std::vector<Atom>& atoms() const noexcept { return atoms_; }

 private:
  std::vector<Atom> atoms_;
};

/// Topology + trajectory, with expression-based selection.
class Universe {
 public:
  /// Fails with kInvalidArgument if topology width != trajectory atoms.
  static Result<Universe> create(Topology topology, Trajectory trajectory);

  const Topology& topology() const noexcept { return topology_; }
  const Trajectory& trajectory() const noexcept { return trajectory_; }
  std::size_t atoms() const noexcept { return topology_.size(); }
  std::size_t frames() const noexcept { return trajectory_.frames(); }

  /// Evaluates a selection expression against the topology and the
  /// coordinates of `frame` (geometric predicates like `around` use the
  /// frame's positions). Returns kFormatError on parse errors with a
  /// message pointing at the offending token.
  Result<AtomSelection> select(const std::string& expression,
                               std::size_t frame = 0) const;

  /// Extracts a reduced Universe containing only the selected atoms.
  Result<Universe> subset(const AtomSelection& selection) const;

 private:
  Universe(Topology topology, Trajectory trajectory)
      : topology_(std::move(topology)), trajectory_(std::move(trajectory)) {}

  Topology topology_;
  Trajectory trajectory_;
};

/// Builds a simple synthetic protein-like topology for an n-atom system:
/// residues of `atoms_per_residue` atoms cycling through common residue
/// names, each residue laid out as (N, CA, C, O, CB, ...). Used by tests
/// and examples; real users construct Topology directly.
Topology make_protein_topology(std::size_t n_atoms,
                               std::size_t atoms_per_residue = 5);

}  // namespace mdtask::traj
