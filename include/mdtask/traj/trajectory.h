// Trajectory containers.
//
// A Trajectory is the paper's unit of PSA work: a time series of frames,
// each frame holding N atom positions in 3-D (a 2-D array of shape
// [frames][atoms], Sec. 2.1.1). Storage is one contiguous frame-major
// buffer so per-frame spans are cache-friendly and cheaply shareable.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "mdtask/common/error.h"
#include "mdtask/traj/vec3.h"

namespace mdtask::traj {

/// A fixed-topology MD trajectory: `frames() x atoms()` positions.
class Trajectory {
 public:
  Trajectory() = default;

  /// Creates an uninitialized trajectory of the given shape.
  Trajectory(std::size_t n_frames, std::size_t n_atoms)
      : n_frames_(n_frames),
        n_atoms_(n_atoms),
        data_(n_frames * n_atoms) {}

  std::size_t frames() const noexcept { return n_frames_; }
  std::size_t atoms() const noexcept { return n_atoms_; }
  bool empty() const noexcept { return data_.empty(); }

  /// Positions of frame `f` (unchecked in release; asserts shape in debug).
  std::span<const Vec3> frame(std::size_t f) const noexcept {
    return {data_.data() + f * n_atoms_, n_atoms_};
  }
  std::span<Vec3> frame(std::size_t f) noexcept {
    return {data_.data() + f * n_atoms_, n_atoms_};
  }

  /// Whole buffer, frame-major.
  std::span<const Vec3> data() const noexcept { return data_; }
  std::span<Vec3> data() noexcept { return data_; }

  /// Size of the in-memory representation in bytes (used by the engines to
  /// account for broadcast/staging volume).
  std::size_t byte_size() const noexcept {
    return data_.size() * sizeof(Vec3);
  }

 private:
  std::size_t n_frames_ = 0;
  std::size_t n_atoms_ = 0;
  std::vector<Vec3> data_;
};

/// An ensemble of same-topology trajectories (the PSA input set).
using Ensemble = std::vector<Trajectory>;

}  // namespace mdtask::traj
