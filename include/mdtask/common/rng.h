// Deterministic pseudo-random number generation.
//
// All synthetic data in this repository (trajectories, bilayers, workload
// jitter) flows through Xoshiro256StarStar so that every experiment is
// reproducible from a single seed. The generator satisfies
// UniformRandomBitGenerator and plugs into <random> distributions.
#pragma once

#include <cstdint>
#include <limits>

#include "mdtask/common/hash.h"

namespace mdtask {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-expressed). Fast, 256-bit state, passes BigCrush.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Jump ahead 2^128 steps: yields a statistically independent stream.
  /// Used to hand each simulated worker its own stream.
  void jump() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;
  /// Normal with given mean/stddev.
  double normal(double mean, double stddev) noexcept;
  /// Uniform integer in [0, n) without modulo bias (Lemire reduction).
  std::uint64_t bounded(std::uint64_t n) noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// splitmix64 (seeding, small-integer hashing) now lives in
// mdtask/common/hash.h alongside FNV-1a; included above so existing
// call sites keep compiling unchanged.

}  // namespace mdtask
