// Console table and CSV rendering for the benchmark harness.
//
// Every bench binary prints an aligned table mirroring a paper figure or
// table, and writes the same rows as CSV for downstream plotting.
#pragma once

#include <string>
#include <vector>

#include "mdtask/common/error.h"

namespace mdtask {

/// A simple column-aligned text table with a title and CSV export.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Column count of subsequent rows must match.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; throws std::invalid_argument on column mismatch
  /// (construction-time programming error, not a runtime condition).
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);
  /// Formats a byte count as B/KB/MB/GB with binary units.
  static std::string fmt_bytes(double bytes);

  std::size_t row_count() const noexcept { return rows_.size(); }
  const std::string& title() const noexcept { return title_; }

  /// Renders the aligned table with a title banner.
  std::string render() const;

  /// Renders RFC-4180-ish CSV (header + rows, quoted when needed).
  std::string to_csv() const;

  /// Writes CSV to the given path.
  Status write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mdtask
