// Minimal leveled logging. Off by default so benches stay quiet; examples
// turn it on for narration.
#pragma once

#include <sstream>
#include <string>

namespace mdtask {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (thread-safe; relaxed atomics).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr if `level` >= the global level.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, out_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

#define MDTASK_LOG(level) ::mdtask::detail::LogStream(level)
#define MDTASK_LOG_INFO MDTASK_LOG(::mdtask::LogLevel::kInfo)
#define MDTASK_LOG_WARN MDTASK_LOG(::mdtask::LogLevel::kWarn)
#define MDTASK_LOG_ERROR MDTASK_LOG(::mdtask::LogLevel::kError)

}  // namespace mdtask
