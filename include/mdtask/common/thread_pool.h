// A resizable thread pool used as the real execution backend for the
// task-parallel engines (Spark/Dask/RP mini-runtimes run their partitions
// here when executing for correctness rather than in simulated time).
// Elastic membership events grow it with add_workers and shrink it with
// retire_workers (drain semantics: a retiring worker finishes its
// current job, stops taking new ones, and exits).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "mdtask/trace/tracer.h"

namespace mdtask {

/// Resizable FIFO thread pool. Tasks are std::function<void()>; submit()
/// also offers a future-returning overload for result-bearing jobs.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a fire-and-forget job. Safe from multiple threads.
  void post(std::function<void()> job);

  /// Enqueues a result-bearing job and returns its future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    post([task] { (*task)(); });
    return fut;
  }

  /// Blocks until every queued and running job has finished.
  void wait_idle();

  /// Elastic grow: spawns `count` additional workers, which start
  /// draining the queue immediately. If tracing is enabled they get
  /// their own "<worker_prefix>-<i>" tracks.
  void add_workers(std::size_t count);

  /// Elastic shrink with drain semantics: flags `count` workers
  /// (highest indices first — deterministic) to exit after their
  /// current job; queued jobs are left for the survivors. Clamped so at
  /// least one active worker remains. Returns the indices of the
  /// retired workers, which engines use to find the tasks that were
  /// in flight on departed executors.
  std::vector<std::size_t> retire_workers(std::size_t count);

  /// Active (non-retired) workers. Counts a retiring worker out as soon
  /// as it is flagged, even if it is still finishing its last job.
  std::size_t size() const;

  /// Jobs enqueued but not yet picked up by a worker. Together with
  /// busy() this is the observation an autoscale MetricsWindow samples.
  std::size_t queued() const;

  /// Workers currently executing a job (including retiring workers
  /// still finishing their last one).
  std::size_t busy() const;

  /// Starts emitting spans to `tracer` under process track `pid`: one
  /// thread track per worker ("<worker_prefix>-<i>"), a "queue-wait"
  /// span from enqueue to pickup and a "job" span around each run.
  /// Call before submitting work (engines call it right after
  /// construction); jobs posted earlier carry no queue-wait stamp.
  void enable_tracing(trace::Tracer& tracer, std::uint32_t pid,
                      const std::string& worker_prefix = "worker");

  /// The calling worker thread's trace track, or nullptr when the
  /// caller is not a traced pool worker. Engines use this to put task
  /// spans on the executing worker's timeline.
  static const trace::Track* current_worker_track() noexcept;

  /// The calling worker thread's index in its pool, or -1 off-pool.
  static std::ptrdiff_t current_worker_index() noexcept;

 private:
  struct Job {
    std::function<void()> fn;
    double enqueue_us = -1.0;  ///< tracer timestamp; -1 = not stamped
  };

  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::deque<Job> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  std::size_t alive_ = 0;                 ///< workers not flagged to retire
  bool stop_ = false;
  std::vector<std::uint8_t> retire_flags_;  ///< per worker; guarded by mu_
  trace::Tracer* tracer_ = nullptr;       ///< guarded by mu_
  std::uint32_t trace_pid_ = 0;           ///< for tracks of late joiners
  std::string worker_prefix_ = "worker";
  std::vector<trace::Track> tracks_;      ///< per worker; guarded by mu_
};

}  // namespace mdtask
