// A resizable thread pool used as the real execution backend for the
// task-parallel engines (Spark/Dask/RP mini-runtimes run their partitions
// here when executing for correctness rather than in simulated time).
// Elastic membership events grow it with add_workers and shrink it with
// retire_workers (drain semantics: a retiring worker finishes its
// current job, stops taking new ones, and exits; its queued jobs are
// handed to the survivors).
//
// Execution model (docs/TOPOLOGY.md): topology-aware work stealing.
// Each worker owns a cache-line-padded deque (topo::StealQueue); a job
// posted from inside a worker goes to that worker's deque and is popped
// LIFO (hot in its cache), jobs posted from non-worker threads land in
// a shared overflow queue that idle workers drain in batches, and a
// worker whose own deque runs dry steals FIFO from victims ordered by
// hardware distance (SMT sibling -> L2 peer -> package peer -> rest).
// Workers are pinned one-per-physical-core (SMT siblings second) unless
// MDTASK_PIN_THREADS=0. The same public API and drain/retire semantics
// as the earlier single-FIFO pool are preserved; bench_pool gates the
// contended-throughput win over that design.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mdtask/topo/cpu_topology.h"
#include "mdtask/topo/steal_deque.h"
#include "mdtask/trace/tracer.h"

namespace mdtask {

/// Resizable work-stealing thread pool. Tasks are std::function<void()>;
/// submit() also offers a future-returning overload for result-bearing
/// jobs.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; 0 is clamped to 1) on the host
  /// topology, pinning them unless MDTASK_PIN_THREADS disables it.
  explicit ThreadPool(std::size_t threads);

  /// Test/bench hook: an explicit (possibly synthetic) topology and
  /// pinning choice.
  ThreadPool(std::size_t threads, topo::CpuTopology topology,
             bool pin_threads);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a fire-and-forget job. Safe from multiple threads. From a
  /// worker of this pool the job goes to that worker's own deque
  /// (LIFO-hot); from any other thread it goes to the shared overflow
  /// queue.
  void post(std::function<void()> job);

  /// Enqueues a job that any idle worker should pick up promptly, even
  /// when posted from a busy worker: always lands in the shared
  /// overflow queue instead of the poster's deque. I/O-bound producers
  /// (stream::PrefetchPipeline decode tasks) use this so compute
  /// workers never sit on a decode job they are too busy to run.
  void post_shared(std::function<void()> job);

  /// Locality-hinted post: jobs with the same `group` are routed to
  /// workers sharing an L2 cache domain, and distinct `member_hint`
  /// values within a group spread across that domain's workers — the
  /// two halves of a Hausdorff tile pair pass (pair_id, 0) and
  /// (pair_id, 1) to co-schedule on cache-sharing cores. A hint, not a
  /// guarantee: stealing may still move the job.
  void post_grouped(std::uint64_t group, std::uint64_t member_hint,
                    std::function<void()> job);

  /// Enqueues a result-bearing job and returns its future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    post([task] { (*task)(); });
    return fut;
  }

  /// Locality-hinted submit: see post_grouped.
  template <typename F>
  auto submit_grouped(std::uint64_t group, std::uint64_t member_hint,
                      F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    post_grouped(group, member_hint, [task] { (*task)(); });
    return fut;
  }

  /// Blocks until every queued and running job has finished.
  void wait_idle();

  /// Elastic grow: spawns `count` additional workers, which start
  /// draining the queues immediately. If tracing is enabled they get
  /// their own "<worker_prefix>-<i>" tracks.
  void add_workers(std::size_t count);

  /// Elastic shrink with drain semantics: flags `count` workers
  /// (highest indices first — deterministic) to exit after their
  /// current job; their queued jobs are flushed to the overflow queue
  /// for the survivors. Clamped so at least one active worker remains.
  /// Returns the indices of the retired workers, which engines use to
  /// find the tasks that were in flight on departed executors.
  std::vector<std::size_t> retire_workers(std::size_t count);

  /// Active (non-retired) workers. Counts a retiring worker out as soon
  /// as it is flagged, even if it is still finishing its last job.
  std::size_t size() const;

  /// Jobs enqueued (across worker deques and the overflow queue) but
  /// not yet picked up by a worker. Together with busy() this is the
  /// observation an autoscale MetricsWindow samples.
  std::size_t queued() const;

  /// Workers currently executing a job (including retiring workers
  /// still finishing their last one).
  std::size_t busy() const;

  /// Starts emitting spans to `tracer` under process track `pid`: one
  /// thread track per worker ("<worker_prefix>-<i>"), a "queue-wait"
  /// span from enqueue to pickup and a "job" span around each run.
  /// Call before submitting work (engines call it right after
  /// construction). Once a tracer is attached, every post() stamps its
  /// enqueue time unconditionally — even while the tracer is disabled —
  /// so a later set_enabled(true) sees correct queue-waits; only jobs
  /// posted before ANY tracer was attached carry no stamp (there is no
  /// time base to stamp them with), and those run without a queue-wait
  /// span. Tested in ThreadPoolTracingTest.
  void enable_tracing(trace::Tracer& tracer, std::uint32_t pid,
                      const std::string& worker_prefix = "worker");

  /// The calling worker thread's trace track, or nullptr when the
  /// caller is not a traced pool worker. Engines use this to put task
  /// spans on the executing worker's timeline.
  static const trace::Track* current_worker_track() noexcept;

  /// The calling worker thread's index in its pool, or -1 off-pool.
  static std::ptrdiff_t current_worker_index() noexcept;

  /// The topology this pool schedules against.
  const topo::CpuTopology& topology() const noexcept { return topology_; }

  /// True when workers pin themselves to their placement CPUs.
  bool pinned() const noexcept { return pin_; }

  /// Distinct L2 locality groups the grouped-post router spreads over
  /// (>= 1 while any worker is active).
  std::size_t locality_groups() const;

  /// The pin target of worker `index` under this pool's placement
  /// (exposed for tests; valid for any index ever returned by the
  /// pool).
  int placement_cpu(std::size_t index) const;

  /// Cumulative work-stealing statistics: how often idle workers found
  /// work by stealing, where the stolen job came from (the victim's
  /// hardware-distance tier, or the shared overflow queue), and how
  /// long the successful victim sweeps took. When tracing is enabled
  /// every successful steal also samples `pool:steal-*` counters on
  /// the thief's track, so trace summaries surface the same data
  /// (docs/TOPOLOGY.md, docs/OBSERVABILITY.md).
  struct StealCounters {
    std::uint64_t smt = 0;      ///< steals from an SMT-sibling worker
    std::uint64_t l2 = 0;       ///< steals from an L2-peer worker
    std::uint64_t package = 0;  ///< steals from a package-peer worker
    std::uint64_t rest = 0;     ///< steals from any other worker
    std::uint64_t overflow_grabs = 0;  ///< batched overflow-queue grabs
    std::uint64_t overflow_jobs = 0;   ///< jobs taken by those grabs
    /// Successful-sweep latency (sweep start to steal) across deque
    /// steals; total/max in microseconds.
    double steal_latency_total_us = 0.0;
    double steal_latency_max_us = 0.0;

    std::uint64_t deque_steals() const noexcept {
      return smt + l2 + package + rest;
    }
  };

  /// Snapshot of the cumulative steal statistics.
  StealCounters steal_counters() const;

 private:
  struct Job {
    std::function<void()> fn;
    double enqueue_us = -1.0;  ///< tracer timestamp; -1 = not stamped
  };

  /// One worker's scheduling state. Slots are created once and kept for
  /// the pool's lifetime (index == worker index), so thieves and the
  /// grouped-post router can hold references across membership changes.
  struct Slot {
    topo::StealQueue<Job> deque;
    std::atomic<bool> retired{false};
    std::atomic<bool> traced{false};
    trace::Track track{};  ///< written before traced is released
    int cpu = -1;          ///< pin target (-1 = none)
    int l2 = 0;            ///< L2 domain of the pin target
  };

  /// Immutable membership snapshot, swapped atomically under
  /// roster_mu_; workers refresh their copy when epoch_ changes.
  struct Roster {
    std::vector<std::shared_ptr<Slot>> slots;  ///< index = worker index
    std::vector<int> cpus;                     ///< pin target per slot
    /// Non-retired slot indices per L2 domain (the grouped-post router).
    std::vector<std::vector<std::size_t>> l2_members;
  };

  std::shared_ptr<const Roster> snapshot_roster() const;
  static void rebuild_l2_members(Roster& roster);
  std::shared_ptr<Slot> make_slot(std::size_t index);
  void enqueue(topo::StealQueue<Job>& queue, std::function<void()> fn);
  void wake_one();
  void note_deque_steal(topo::StealTier tier, double latency_us,
                        Slot* thief);
  void note_overflow_grab(std::size_t jobs, Slot* thief);
  void run_job(Job& job, Slot* slot);
  void worker_loop(std::size_t index);

  topo::CpuTopology topology_;
  bool pin_ = false;
  std::vector<int> placement_base_;  ///< cpu per index mod logical CPUs

  mutable std::mutex roster_mu_;       ///< guards roster_ swaps only
  std::shared_ptr<const Roster> roster_;
  std::atomic<std::uint64_t> epoch_{0};  ///< bumped after roster swaps

  topo::StealQueue<Job> overflow_;  ///< non-worker posts, retiree drains

  mutable std::mutex mu_;  ///< sleep/wake handshake + membership calls
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};
  std::size_t alive_ = 0;  ///< workers not flagged to retire; under mu_

  std::atomic<std::size_t> queued_{0};       ///< jobs waiting in queues
  std::atomic<std::size_t> active_{0};       ///< jobs being executed
  std::atomic<std::size_t> outstanding_{0};  ///< queued + active

  std::vector<std::thread> workers_;  ///< under mu_; joined at teardown

  /// Cumulative steal statistics (steal_counters()); latencies are
  /// kept in integer nanoseconds so the hot path stays fetch_add-only.
  std::atomic<std::uint64_t> steals_by_tier_[4] = {};  ///< index = StealTier
  std::atomic<std::uint64_t> overflow_grabs_{0};
  std::atomic<std::uint64_t> overflow_jobs_{0};
  std::atomic<std::uint64_t> steal_latency_total_ns_{0};
  std::atomic<std::uint64_t> steal_latency_max_ns_{0};

  std::atomic<trace::Tracer*> tracer_{nullptr};
  std::uint32_t trace_pid_ = 0;       ///< under mu_
  std::string worker_prefix_ = "worker";  ///< under mu_
};

}  // namespace mdtask
