// A fixed-size thread pool used as the real execution backend for the
// task-parallel engines (Spark/Dask/RP mini-runtimes run their partitions
// here when executing for correctness rather than in simulated time).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mdtask {

/// Fixed-size FIFO thread pool. Tasks are std::function<void()>; submit()
/// also offers a future-returning overload for result-bearing jobs.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a fire-and-forget job. Safe from multiple threads.
  void post(std::function<void()> job);

  /// Enqueues a result-bearing job and returns its future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    post([task] { (*task)(); });
    return fut;
  }

  /// Blocks until every queued and running job has finished.
  void wait_idle();

  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace mdtask
