// Shared deterministic hash helpers.
//
// One home for the two hash primitives the repository's seeded
// subsystems are built on, hoisted from mdtask::stream (shard
// checksums) and mdtask::fault (pure-hash fault/membership draws) so
// new layers — the mdtask::service result-cache keys in particular —
// reuse the same arithmetic instead of re-deriving it:
//
//  * FNV-1a 64: the byte-stream integrity/content hash (shard
//    checksums, trajectory fingerprints, canonicalized request params).
//  * SplitMix64: the avalanche step behind every seeded decision
//    stream (xoshiro seeding, fault injector draws, membership
//    schedules, traffic generators).
//
// Both are defined inline and bit-for-bit identical to the previous
// per-subsystem copies; the hash tests pin the reference vectors so the
// hoist can never silently change a published seed.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace mdtask {

/// FNV-1a 64 offset basis / prime (the standard Fowler-Noll-Vo
/// parameters; also the shard-checksum constants of the .mds format).
inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

/// The SplitMix64 increment (2^64 / phi), doubling as the golden-gamma
/// constant the seeded subsystems mix scope labels with.
inline constexpr std::uint64_t kGoldenGamma = 0x9e3779b97f4a7c15ULL;

/// Continues an FNV-1a 64 hash over `bytes` from `hash` (incremental
/// form: chain calls to fingerprint multi-part keys without copies).
constexpr std::uint64_t fnv1a64_append(
    std::uint64_t hash, std::span<const std::uint8_t> bytes) noexcept {
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= kFnv1aPrime;
  }
  return hash;
}

/// FNV-1a 64 over a byte span (the shard integrity hash).
constexpr std::uint64_t fnv1a64(
    std::span<const std::uint8_t> bytes) noexcept {
  return fnv1a64_append(kFnv1aOffsetBasis, bytes);
}

/// Incremental FNV-1a 64 over text (canonicalized service params).
constexpr std::uint64_t fnv1a64_append(std::uint64_t hash,
                                       std::string_view text) noexcept {
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnv1aPrime;
  }
  return hash;
}

/// FNV-1a 64 over text.
constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
  return fnv1a64_append(kFnv1aOffsetBasis, text);
}

/// Incremental FNV-1a 64 over one little-endian u64 (fingerprinting a
/// sequence of checksums or ids without serializing them).
constexpr std::uint64_t fnv1a64_append_u64(std::uint64_t hash,
                                           std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffU;
    hash *= kFnv1aPrime;
  }
  return hash;
}

/// SplitMix64 step: advances `state` by the golden gamma and returns
/// the avalanche of the new state. Used for seeding and hashing small
/// integers; the pure-hash fault/membership draws are built on it.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += kGoldenGamma);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless avalanche of one value (a SplitMix64 step over a local
/// copy): the mixing function for combining hash words into cache keys.
constexpr std::uint64_t hash_mix(std::uint64_t value) noexcept {
  return splitmix64(value);
}

/// Order-dependent combination of two hash words.
constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t value) noexcept {
  return hash_mix(seed ^ (value + kGoldenGamma + (seed << 6) + (seed >> 2)));
}

}  // namespace mdtask
