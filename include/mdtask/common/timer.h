// Wall-clock timing for calibration and benchmark measurement.
#pragma once

#include <chrono>

namespace mdtask {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mdtask
