// Byte-level serialization used by the engine substrates.
//
// The mini-frameworks measure communication volume (broadcast payloads,
// shuffle traffic, gathered edge lists) by actually serializing the data
// they move, so Table-2-style shuffle accounting comes from real bytes,
// not estimates.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "mdtask/common/error.h"

namespace mdtask {

/// Append-only binary writer (little-endian host layout; this library is
/// single-host so no byte-swapping is performed).
class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_span(std::span<const T> xs) {
    put<std::uint64_t>(xs.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(xs.data());
    buf_.insert(buf_.end(), p, p + xs.size_bytes());
  }

  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::size_t size() const noexcept { return buf_.size(); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential binary reader over a byte span. Reads past the end surface
/// as kFormatError results.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Result<T> get() {
    if (pos_ + sizeof(T) > data_.size()) {
      return Error(ErrorCode::kFormatError, "ByteReader: truncated input");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Result<std::vector<T>> get_vector() {
    auto n = get<std::uint64_t>();
    if (!n.ok()) return n.error();
    const std::size_t bytes = static_cast<std::size_t>(n.value()) * sizeof(T);
    if (pos_ + bytes > data_.size()) {
      return Error(ErrorCode::kFormatError, "ByteReader: truncated vector");
    }
    std::vector<T> out(static_cast<std::size_t>(n.value()));
    std::memcpy(out.data(), data_.data() + pos_, bytes);
    pos_ += bytes;
    return out;
  }

  Result<std::string> get_string() {
    auto n = get<std::uint64_t>();
    if (!n.ok()) return n.error();
    if (pos_ + n.value() > data_.size()) {
      return Error(ErrorCode::kFormatError, "ByteReader: truncated string");
    }
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                    static_cast<std::size_t>(n.value()));
    pos_ += static_cast<std::size_t>(n.value());
    return out;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace mdtask
