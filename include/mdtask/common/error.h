// Error handling primitives for the mdtask library.
//
// The library reports recoverable failures through Result<T> rather than
// exceptions so that hot kernels and the task engines can stay
// exception-free on the fast path (C++ Core Guidelines E.3, E.6 applied to
// a context where callers always inspect the outcome).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace mdtask {

/// Error category used across the library.
enum class ErrorCode {
  kInvalidArgument,
  kOutOfRange,
  kIoError,
  kFormatError,
  kResourceExhausted,  ///< e.g. simulated worker memory limit exceeded
  kUnavailable,        ///< e.g. simulated database unreachable
  kCancelled,
  kInternal,
};

/// Human-readable name of an ErrorCode.
const char* to_string(ErrorCode code) noexcept;

/// A recoverable error: a code plus a context message.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "kIoError: could not open file" style rendering.
  std::string to_string() const;

 private:
  ErrorCode code_;
  std::string message_;
};

/// Minimal expected-like result type. Holds either a value or an Error.
///
/// Usage:
///   Result<Trajectory> r = read_trajectory(path);
///   if (!r.ok()) return r.error();
///   use(r.value());
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(implicit)

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const Error& error() const { return std::get<Error>(data_); }

  /// Returns the value or a fallback if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;                                   // success
  Status(Error error) : error_(std::move(error)) {}     // NOLINT(implicit)

  bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }
  const Error& error() const { return *error_; }

  static Status success() { return Status(); }

 private:
  std::optional<Error> error_;
};

}  // namespace mdtask
