// Error handling primitives for the mdtask library.
//
// The library reports recoverable failures through Result<T> rather than
// exceptions so that hot kernels and the task engines can stay
// exception-free on the fast path (C++ Core Guidelines E.3, E.6 applied to
// a context where callers always inspect the outcome).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace mdtask {

/// Error category used across the library.
enum class ErrorCode {
  kInvalidArgument,
  kOutOfRange,
  kIoError,
  kFormatError,
  kResourceExhausted,  ///< e.g. simulated worker memory limit exceeded
  kUnavailable,        ///< e.g. simulated database unreachable
  kOverloaded,         ///< service admission control shed the request
  kDeadlineExceeded,   ///< the request's completion deadline passed
  kCircuitOpen,        ///< a tripped circuit breaker rejected the request
  kCancelled,
  kInternal,
};

/// Human-readable name of an ErrorCode.
const char* to_string(ErrorCode code) noexcept;

/// Structured context for a task-level failure: which engine ran the
/// task, which task and attempt failed, and which fault kind (if any)
/// caused it. Attached to Errors by the engine runtimes so callers and
/// logs can correlate a failure with the fault-injection schedule
/// without parsing message strings.
struct TaskFailureContext {
  std::string engine;         ///< "spark" | "dask" | "rp" | "mpi"
  std::uint64_t task_id = 0;  ///< engine-level deterministic task id
  int attempt = 0;            ///< 0-based attempt that failed
  std::string fault_kind;     ///< fault::to_string(kind); "" = not injected

  /// " [engine=dask task=12 attempt=2 fault=worker-oom-kill]" rendering
  /// (fault omitted when empty).
  std::string to_string() const;
};

/// A recoverable error: a code plus a context message, optionally
/// annotated with the task-level failure context.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// Attaches task-failure context (builder style, chainable).
  Error&& with_task(TaskFailureContext context) && {
    task_ = std::move(context);
    return std::move(*this);
  }
  Error& with_task(TaskFailureContext context) & {
    task_ = std::move(context);
    return *this;
  }

  /// The task-level failure context, when an engine attached one.
  const std::optional<TaskFailureContext>& task() const noexcept {
    return task_;
  }

  /// "kIoError: could not open file" style rendering; appends the task
  /// context when present.
  std::string to_string() const;

 private:
  ErrorCode code_;
  std::string message_;
  std::optional<TaskFailureContext> task_;
};

/// Minimal expected-like result type. Holds either a value or an Error.
///
/// Usage:
///   Result<Trajectory> r = read_trajectory(path);
///   if (!r.ok()) return r.error();
///   use(r.value());
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(implicit)

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const Error& error() const { return std::get<Error>(data_); }

  /// Returns the value or a fallback if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;                                   // success
  Status(Error error) : error_(std::move(error)) {}     // NOLINT(implicit)

  bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }
  const Error& error() const { return *error_; }

  static Status success() { return Status(); }

 private:
  std::optional<Error> error_;
};

}  // namespace mdtask
