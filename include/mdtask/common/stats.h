// Streaming and batch summary statistics used by the benchmark harness.
//
// The paper reports means over multiple runs with standard-deviation error
// bars; RunningStats implements Welford's online algorithm so the harness
// can accumulate repeated trials without storing samples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mdtask {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Merge another accumulator (parallel reduction of partial stats).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a sample; 0 for empty input.
double mean(std::span<const double> xs) noexcept;
/// Sample standard deviation (n-1); 0 for fewer than 2 samples.
double stddev(std::span<const double> xs) noexcept;
/// Linear-interpolated percentile, p in [0,100]. Sorts a copy.
double percentile(std::vector<double> xs, double p) noexcept;

}  // namespace mdtask
