// Deterministic fault injection.
//
// The injector answers one question — "does a fault fire for this task
// attempt?" — as a pure function of (plan seed, scope, task id,
// attempt). There is no mutable RNG stream: worker threads may evaluate
// decisions in any order, on any schedule, and the verdicts are
// identical, which is what makes same-seed runs reproduce the same
// failure/recovery sequence (the determinism test pins this).
#pragma once

#include <cstdint>
#include <string>

#include "mdtask/fault/fault.h"

namespace mdtask::fault {

/// Stateless decision point bound to one plan and one scope (the scope
/// is the engine name, so the same plan drives different-but-each-
/// deterministic schedules on different engines).
class FaultInjector {
 public:
  /// The plan is not owned and must outlive the injector (engine configs
  /// hold a pointer to a caller-owned plan the same way).
  FaultInjector(const FaultPlan& plan, EngineId engine)
      : plan_(&plan), engine_(engine) {}

  /// The fault (if any) that fires for attempt `attempt` of `task_id`.
  /// Explicit schedule entries win over probabilistic draws; the first
  /// matching schedule entry is returned.
  FaultSpec decide(std::uint64_t task_id, int attempt) const noexcept;

  const FaultPlan& plan() const noexcept { return *plan_; }
  EngineId engine() const noexcept { return engine_; }

 private:
  /// Uniform double in [0, 1) keyed by (seed, engine, task, attempt,
  /// draw index) — one independent draw per fault kind.
  double draw(std::uint64_t task_id, int attempt,
              std::uint32_t index) const noexcept;

  const FaultPlan* plan_;
  EngineId engine_;
};

}  // namespace mdtask::fault
