// Per-engine recovery policies and the shared recovery event log.
//
// Each engine answers an injected fault the way its real counterpart
// does (Sec. 3 semantics):
//  * Spark  — lineage re-execution: the lost partition is recomputed
//             from its (possibly cached) parents.
//  * Dask   — the killed worker restarts and the task is rescheduled;
//             bounded by the allowed-failures budget.
//  * RP     — pilot-level retry with exponential backoff and bounded
//             attempts.
//  * MPI    — checkpoint/abort/restart: the whole job aborts and
//             relaunches from the last checkpoint.
//
// Every fault and every recovery decision is recorded in a RecoveryLog
// and (optionally) mirrored into mdtask::trace as zero-duration spans in
// the "fault"/"recovery" categories, so Chrome traces show exactly where
// a run bled and how it healed (docs/RESILIENCE.md).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mdtask/fault/fault.h"
#include "mdtask/fault/membership.h"
#include "mdtask/trace/tracer.h"

namespace mdtask::fault {

/// What a recovery policy decided to do about one fault.
enum class RecoveryAction {
  kReexecuteLineage,   ///< Spark: recompute the lost partition
  kRestartWorker,      ///< Dask: restart the worker, reschedule the task
  kRetryWithBackoff,   ///< RP: retry the unit after exponential backoff
  kCheckpointRestart,  ///< MPI: abort the job, restart from checkpoint
  kSpeculativeCopy,    ///< straggler mitigation: launch a backup copy
  kGiveUp,             ///< retry budget exhausted: surface the failure
};
const char* to_string(RecoveryAction action) noexcept;

/// The action an engine's policy takes for `kind` on retry `attempt`
/// (0-based attempt that just failed) under `policy`. Returns kGiveUp
/// once the budget is exhausted.
RecoveryAction recovery_action(EngineId engine, FaultKind kind, int attempt,
                               const RetryPolicy& policy) noexcept;

/// One fault + the recovery decision it triggered.
struct RecoveryEvent {
  EngineId engine = EngineId::kSpark;
  std::uint64_t task_id = 0;
  int attempt = 0;
  FaultKind fault = FaultKind::kNone;
  RecoveryAction action = RecoveryAction::kGiveUp;
  double backoff_s = 0.0;
  /// Virtual timestamp for DES emitters, wall microseconds otherwise
  /// (only used for trace mirroring; the canonical order ignores it).
  double ts_us = 0.0;

  /// "spark task=12 attempt=0 fault=worker-oom-kill action=..." — the
  /// comparison key of the determinism tests.
  std::string to_string() const;
};

/// One applied membership (elasticity) event: a node join or leave as
/// the pool actually absorbed it. `seq` is the schedule index, which
/// makes the canonical rendering a total order even when several events
/// share a kind and count.
struct MembershipRecord {
  EngineId engine = EngineId::kSpark;
  MembershipKind kind = MembershipKind::kNodeJoin;
  std::size_t seq = 0;        ///< index in the MembershipPlan schedule
  std::size_t count = 1;      ///< servers joining/leaving
  std::size_t pool_size = 0;  ///< pool size after the event applied
  std::size_t preempted = 0;  ///< in-flight tasks a kill-leave displaced
  /// Virtual timestamp for DES emitters, wall microseconds otherwise
  /// (trace mirroring only; the canonical order ignores it).
  double ts_us = 0.0;

  /// "dask elastic#1 node-leave count=2 pool=4 preempted=1" — the
  /// comparison key of the membership determinism tests.
  std::string to_string() const;
};

/// What a closed-loop autoscale controller decided at one control tick
/// (mdtask::autoscale). Only actionable decisions are recorded — holds
/// (no-ops) stay out of the log so canonical sequences do not depend on
/// the tick cadence.
enum class AutoscaleAction {
  kScaleUp,    ///< grow the pool (Spark/Dask/RP resize APIs)
  kScaleDown,  ///< shrink the pool (per-engine departure policy)
  kSpeculate,  ///< backup-submit an in-flight straggler
  kRigidVeto,  ///< decision the engine cannot act on (MPI rigid pool)
};
const char* to_string(AutoscaleAction action) noexcept;

/// One applied (or vetoed) autoscale decision. `seq` is the decision
/// index assigned by the controller, which totally orders the canonical
/// rendering even when decisions repeat.
struct AutoscaleRecord {
  EngineId engine = EngineId::kSpark;
  AutoscaleAction action = AutoscaleAction::kScaleUp;
  std::size_t seq = 0;        ///< controller decision index
  std::size_t count = 0;      ///< servers requested (scale) / copies (spec)
  std::size_t pool_size = 0;  ///< pool size after the decision applied
  std::size_t queue_depth = 0;  ///< queue depth observed at decision time
  std::uint64_t task_id = 0;  ///< straggler task for kSpeculate, else 0
  /// Virtual timestamp for DES emitters, wall microseconds otherwise
  /// (trace mirroring only; the canonical order ignores it).
  double ts_us = 0.0;

  /// "dask autoscale#2 scale-up count=4 pool=12 queue=37 task=0" — the
  /// comparison key of the adaptive determinism tests.
  std::string to_string() const;
};

/// One attempted replica-exchange swap (mdtask::repex). Deliberately
/// engine-free: the exchange decision stream is a pure function of
/// (seed, round, slots, energies), so the same seed must render the
/// same canonical lines on every engine and in the DES twin — an
/// engine tag here would break the cross-engine byte-identity contract.
struct ExchangeRecord {
  std::size_t round = 0;
  std::size_t slot_lo = 0;    ///< lower ladder slot of the pair
  std::size_t slot_hi = 0;    ///< upper ladder slot of the pair
  std::size_t config_lo = 0;  ///< configuration at slot_lo pre-swap
  std::size_t config_hi = 0;  ///< configuration at slot_hi pre-swap
  bool accepted = false;
  /// Virtual timestamp for DES emitters, wall microseconds otherwise
  /// (trace mirroring only; the canonical order ignores it).
  double ts_us = 0.0;

  /// "repex round=2 pair=1/2 configs=3/0 accept=1" — the comparison
  /// key of the cross-engine and live-vs-DES determinism tests.
  std::string to_string() const;
};

/// Thread-safe ordered log of fault/recovery events. Worker threads
/// append concurrently, so the raw order is scheduling-dependent;
/// canonical() sorts by (task, attempt, fault, action) to give the
/// interleaving-independent sequence that same-seed runs must reproduce
/// exactly. Membership (elasticity) and autoscale decisions are logged
/// alongside and merged into the same canonical sequence.
class RecoveryLog {
 public:
  /// Mirrors every recorded event into `tracer` as a zero-duration span
  /// on `track` ("fault:<kind>" / "recovery:<action>" / "elastic:<kind>"
  /// / "autoscale:<action>", categories "fault"/"recovery"/"elastic"/
  /// "autoscale"). Call before the run; pass nullptr to stop.
  void attach_tracer(trace::Tracer* tracer, trace::Track track) {
    std::lock_guard lk(mu_);
    tracer_ = tracer;
    track_ = track;
  }

  void record(RecoveryEvent event);
  void record_membership(MembershipRecord event);
  void record_autoscale(AutoscaleRecord event);
  void record_exchange(ExchangeRecord event);

  std::vector<RecoveryEvent> events() const;
  std::vector<MembershipRecord> membership_events() const;
  std::vector<AutoscaleRecord> autoscale_events() const;
  std::vector<ExchangeRecord> exchange_events() const;
  /// Interleaving-independent rendering: one line per event (fault,
  /// membership, autoscale and exchange alike), sorted.
  std::vector<std::string> canonical() const;
  std::size_t size() const;  ///< fault/recovery events only
  std::size_t membership_size() const;
  std::size_t autoscale_size() const;
  std::size_t exchange_size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<RecoveryEvent> events_;
  std::vector<MembershipRecord> membership_;
  std::vector<AutoscaleRecord> autoscale_;
  std::vector<ExchangeRecord> exchange_;
  trace::Tracer* tracer_ = nullptr;
  trace::Track track_{};
};

/// Size-dependent alpha-beta cost model for checkpoint traffic against
/// the shared parallel filesystem: writing (restoring) `bytes` costs
/// latency + bytes / bandwidth modelled seconds. Bandwidth 0 keeps the
/// legacy zero-cost behaviour.
struct CheckpointCostModel {
  double write_latency_s = 0.0;
  double write_Bps = 0.0;
  double restore_latency_s = 0.0;
  double restore_Bps = 0.0;

  double write_s(std::uint64_t bytes) const noexcept {
    if (write_Bps <= 0.0) return 0.0;
    return write_latency_s + static_cast<double>(bytes) / write_Bps;
  }
  double restore_s(std::uint64_t bytes) const noexcept {
    if (restore_Bps <= 0.0) return 0.0;
    return restore_latency_s + static_cast<double>(bytes) / restore_Bps;
  }
};

/// In-memory checkpoint store for the MPI checkpoint/abort/restart
/// wrapper: survives across restart attempts of one logical job, so a
/// relaunched body can skip work it checkpointed before the abort.
/// With a cost model attached, every put/get accrues the modelled
/// shared-filesystem seconds it would have cost (accounted, not slept).
class CheckpointStore {
 public:
  void set_cost_model(CheckpointCostModel model);

  void put(const std::string& key, std::vector<std::uint8_t> data);
  bool contains(const std::string& key) const;
  std::vector<std::uint8_t> get(const std::string& key) const;
  std::size_t size() const;

  /// Total payload bytes currently stored.
  std::uint64_t bytes_stored() const;
  /// Modelled seconds spent writing checkpoints so far.
  double modeled_write_s() const;
  /// Modelled seconds spent restoring checkpoints so far.
  double modeled_restore_s() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<std::uint8_t>> store_;
  CheckpointCostModel cost_model_;
  double write_s_ = 0.0;
  mutable double restore_s_ = 0.0;
};

}  // namespace mdtask::fault
