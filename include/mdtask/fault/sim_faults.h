// Fault injection under the discrete-event simulation.
//
// Two entry points:
//  * resolve_plan() — the feasibility oracle. Given a plan's scheduled
//    faults and an engine's retry policy, decides whether the workload
//    survives: the paper's Fig. 7 failure cells (Dask broadcast at
//    >= 524k atoms, cdist OOM at 4M, Dask restart exhaustion) are
//    produced by feeding physics-derived fault injections through this
//    resolution instead of hard-coded branches.
//  * simulate_task_wave() — the virtual-time replay. Replays a task
//    wave on a simulated core pool with faults firing mid-flight:
//    stragglers stretch tasks (optionally mitigated by speculative
//    copies), OOM kills and partitions burn part of the task before a
//    backoff + retry, node crashes additionally take cores offline for
//    the repair window. Single-threaded virtual time: byte-identical
//    traces per seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mdtask/fault/fault.h"
#include "mdtask/fault/membership.h"
#include "mdtask/fault/recovery.h"
#include "mdtask/sim/simulation.h"

namespace mdtask::fault {

/// Verdict of resolve_plan: did the engine's recovery policy out-retry
/// the scheduled faults?
struct PlanResolution {
  bool survives = true;
  FaultKind fatal_fault = FaultKind::kNone;  ///< first unrecoverable kind
  std::uint64_t faults_injected = 0;
  std::uint64_t retries = 0;  ///< recovery attempts that were granted
};

/// Walks the plan's scheduled faults against `engine`'s retry policy
/// (plan.retry): each faulting task is retried per the engine's recovery
/// action until an attempt passes cleanly or the budget is exhausted.
/// Faults covering every attempt (FaultSpec::kEveryAttempt) are
/// deterministic physics — no amount of lineage re-execution or worker
/// restarting survives them. Events are recorded into `log` if given.
PlanResolution resolve_plan(const FaultPlan& plan, EngineId engine,
                            RecoveryLog* log = nullptr);

/// Outcome of a virtual-time task-wave replay under a fault plan.
struct SimFaultOutcome {
  bool completed = true;
  std::string failure;  ///< first give-up, when !completed
  double makespan_s = 0.0;
  std::uint64_t faults_injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t speculative_copies = 0;
  std::uint64_t joins = 0;      ///< membership join events applied
  std::uint64_t leaves = 0;     ///< membership leave events applied
  std::uint64_t preempted = 0;  ///< in-flight tasks displaced by kill-leaves
  std::size_t final_pool = 0;   ///< pool size when the replay drained
};

/// One pool-size observation for the pool-size-over-time bench table.
struct PoolSample {
  double at_s = 0.0;
  std::size_t servers = 0;
};

/// Replays `durations` on `cores` simulated cores with the plan's
/// faults injected and `engine`'s recovery policy applied, in virtual
/// time. `log` (optional) receives every recovery decision stamped with
/// virtual microseconds (pure slowdowns — stragglers without
/// speculation, FS stalls — trigger no decision and are only counted);
/// attach a tracer to the log to mirror events into a Chrome trace.
///
/// `membership` (optional) drives elastic pool scaling: joins add
/// servers after the plan's warm-up (MPI is rigid and logs joins
/// without growing); leaves apply the engine's departure semantics via
/// departure_for() — drain (Dask, RP) finishes in-flight holds, kill
/// (Spark lineage loss, MPI checkpoint-restart) preempts the youngest
/// holds, whose tasks restart from scratch. Every applied event is
/// recorded into `log` as a MembershipRecord (mirrored as an
/// `elastic:*` trace instant) and, when `pool_timeline` is given,
/// sampled as (virtual time, pool size). With membership events the
/// makespan is the last task completion, so a post-drain schedule
/// entry cannot inflate it. Single-threaded virtual time: same seed,
/// byte-identical logs and traces.
SimFaultOutcome simulate_task_wave(
    std::size_t cores, const std::vector<double>& durations,
    const FaultPlan& plan, EngineId engine, RecoveryLog* log = nullptr,
    const MembershipPlan* membership = nullptr,
    std::vector<PoolSample>* pool_timeline = nullptr);

/// Outcome of a rigid checkpointed-job replay (simulate_checkpointed_job).
struct CheckpointSweepPoint {
  double interval_s = 0.0;
  double total_s = 0.0;  ///< completion time including all overheads
  std::uint64_t checkpoints = 0;
  std::uint64_t failures = 0;
};

/// Walks a rigid SPMD job of `work_s` seconds through failures with
/// mean-time-between-failures `mtbf_s` (exponential arrivals drawn by
/// the same pure hash as the injector, keyed on (seed, failure index)):
/// the job checkpoints every `interval_s` at `checkpoint_s` cost, and a
/// failure rolls back to the last checkpoint after `restart_s`. The
/// Daly/Young trade-off swept by bench_future_work: short intervals pay
/// checkpoint overhead, long ones re-execute more lost work.
CheckpointSweepPoint simulate_checkpointed_job(double work_s,
                                               double interval_s,
                                               double checkpoint_s,
                                               double restart_s,
                                               double mtbf_s,
                                               std::uint64_t seed);

/// Daly's first-order optimum checkpoint interval sqrt(2 * delta * M)
/// - delta for checkpoint cost delta and MTBF M (clamped positive).
double daly_optimum_interval(double checkpoint_s, double mtbf_s) noexcept;

/// Checkpoint cost model calibrated against a machine's shared parallel
/// filesystem (size-dependent alpha-beta: ~1 ms metadata latency plus
/// bytes / machine.filesystem_Bps each way).
CheckpointCostModel checkpoint_model_for(
    const sim::MachineProfile& machine) noexcept;

}  // namespace mdtask::fault
