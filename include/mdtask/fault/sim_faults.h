// Fault injection under the discrete-event simulation.
//
// Two entry points:
//  * resolve_plan() — the feasibility oracle. Given a plan's scheduled
//    faults and an engine's retry policy, decides whether the workload
//    survives: the paper's Fig. 7 failure cells (Dask broadcast at
//    >= 524k atoms, cdist OOM at 4M, Dask restart exhaustion) are
//    produced by feeding physics-derived fault injections through this
//    resolution instead of hard-coded branches.
//  * simulate_task_wave() — the virtual-time replay. Replays a task
//    wave on a simulated core pool with faults firing mid-flight:
//    stragglers stretch tasks (optionally mitigated by speculative
//    copies), OOM kills and partitions burn part of the task before a
//    backoff + retry, node crashes additionally take cores offline for
//    the repair window. Single-threaded virtual time: byte-identical
//    traces per seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mdtask/fault/fault.h"
#include "mdtask/fault/recovery.h"
#include "mdtask/sim/simulation.h"

namespace mdtask::fault {

/// Verdict of resolve_plan: did the engine's recovery policy out-retry
/// the scheduled faults?
struct PlanResolution {
  bool survives = true;
  FaultKind fatal_fault = FaultKind::kNone;  ///< first unrecoverable kind
  std::uint64_t faults_injected = 0;
  std::uint64_t retries = 0;  ///< recovery attempts that were granted
};

/// Walks the plan's scheduled faults against `engine`'s retry policy
/// (plan.retry): each faulting task is retried per the engine's recovery
/// action until an attempt passes cleanly or the budget is exhausted.
/// Faults covering every attempt (FaultSpec::kEveryAttempt) are
/// deterministic physics — no amount of lineage re-execution or worker
/// restarting survives them. Events are recorded into `log` if given.
PlanResolution resolve_plan(const FaultPlan& plan, EngineId engine,
                            RecoveryLog* log = nullptr);

/// Outcome of a virtual-time task-wave replay under a fault plan.
struct SimFaultOutcome {
  bool completed = true;
  std::string failure;  ///< first give-up, when !completed
  double makespan_s = 0.0;
  std::uint64_t faults_injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t speculative_copies = 0;
};

/// Replays `durations` on `cores` simulated cores with the plan's
/// faults injected and `engine`'s recovery policy applied, in virtual
/// time. `log` (optional) receives every recovery decision stamped with
/// virtual microseconds (pure slowdowns — stragglers without
/// speculation, FS stalls — trigger no decision and are only counted);
/// attach a tracer to the log to mirror events into a Chrome trace.
SimFaultOutcome simulate_task_wave(std::size_t cores,
                                   const std::vector<double>& durations,
                                   const FaultPlan& plan, EngineId engine,
                                   RecoveryLog* log = nullptr);

}  // namespace mdtask::fault
