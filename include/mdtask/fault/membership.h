// Elastic resource-pool membership: seeded node join/leave schedules.
//
// The paper's Sec.-6 future-work item — "dynamically scale the resource
// pool" — is the pilot-job elasticity story that motivated RADICAL-Pilot.
// A MembershipPlan is the arrival-side twin of FaultPlan: a seeded,
// deterministic schedule of NodeJoin/NodeLeave events that the DES and
// all four engine runtimes apply to their worker pools mid-run, in the
// spirit of Dask's adaptive deployments and Spark's dynamic executor
// allocation.
//
// Determinism contract: churn_plan() draws event times through the same
// pure splitmix64 avalanche as FaultInjector — a function of (seed,
// engine scope, event stream, event index) with no shared RNG state —
// so the same seed reproduces the same membership schedule under any
// thread interleaving, and each engine scope is an independent stream.
#pragma once

#include <cstdint>
#include <vector>

#include "mdtask/fault/fault.h"

namespace mdtask::fault {

/// A membership transition of the worker pool.
enum class MembershipKind {
  kNodeJoin,   ///< capacity arrives (after an optional warm-up)
  kNodeLeave,  ///< capacity departs (drain or kill, per policy)
};
const char* to_string(MembershipKind kind) noexcept;

/// How departing nodes treat their in-flight work.
///
/// kEngineDefault resolves per engine: Spark kills (decommissioned
/// executors lose running tasks; lineage recomputes them), Dask and RP
/// drain (graceful leave: the current task finishes, then the worker
/// exits), MPI is rigid and always pays the kill + checkpoint-restart
/// path on any shrink.
enum class DeparturePolicy {
  kEngineDefault,
  kDrain,  ///< finish the current task, then leave; no work lost
  kKill,   ///< leave now; in-flight tasks are lost and rescheduled
};
const char* to_string(DeparturePolicy policy) noexcept;

/// One scheduled membership event. `at_s` is virtual seconds from run
/// start under the DES, wall seconds from run start for the live
/// engines.
struct MembershipEvent {
  MembershipKind kind = MembershipKind::kNodeJoin;
  double at_s = 0.0;
  std::size_t count = 1;  ///< servers/workers joining or leaving
};

/// A complete elasticity scenario: seed + schedule + departure policy +
/// join warm-up cost. Consumed by simulate_task_wave, the engine
/// runtimes (via workflows::ElasticDriver) and the benches.
struct MembershipPlan {
  /// Same default as FaultPlan: the seed every bench prints.
  std::uint64_t seed = 42;
  std::vector<MembershipEvent> schedule;
  DeparturePolicy departure = DeparturePolicy::kEngineDefault;
  /// Seconds between a join event firing and the new servers actually
  /// serving (node boot + agent bootstrap cost).
  double join_warmup_s = 0.0;

  bool empty() const noexcept { return schedule.empty(); }
  std::size_t joins() const noexcept;
  std::size_t leaves() const noexcept;
};

/// Resolves kEngineDefault to the engine's native departure semantics
/// (Spark/MPI kill, Dask/RP drain); explicit policies pass through,
/// except that MPI is rigid and always kills.
DeparturePolicy departure_for(EngineId engine,
                              DeparturePolicy policy) noexcept;

/// Builds a seeded churn schedule: `joins` join events and `leaves`
/// leave events of `count_per_event` servers each, with times drawn
/// uniformly in (0, horizon_s) by the injector's pure hash over
/// (seed, engine, stream, index). Sorted by (time, kind, index) — a
/// total order, so the schedule is identical across runs and platforms.
MembershipPlan churn_plan(std::uint64_t seed, EngineId engine,
                          std::size_t joins, std::size_t leaves,
                          double horizon_s, std::size_t count_per_event = 1);

}  // namespace mdtask::fault
