// The fault-model vocabulary shared by the DES and the four engines.
//
// The paper's Leaflet Finder results hinge on failure behaviour as much
// as speed: Dask's broadcast dies at >= 524k atoms, approaches 2-3 OOM
// at 4M, Dask workers restart at the 95% memory watermark (Secs.
// 4.3.1-4.3.3), and Sec. 6 proposes speculative execution against
// stragglers. mdtask::fault turns those outcomes into *injected faults*
// processed by per-engine recovery policies, instead of hard-coded
// special cases: a FaultPlan describes what breaks and when, and whether
// a workload survives depends on how its engine recovers.
//
// Determinism contract: every injection decision is a pure function of
// (plan seed, scope, task id, attempt) — see injector.h — so the same
// seed reproduces the same fault schedule under any thread interleaving.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mdtask::fault {

/// The failure modes the paper's testbeds exhibit (plus the Sec.-6
/// straggler case).
enum class FaultKind {
  kNone,
  kNodeCrash,         ///< a node dies; its in-flight tasks are lost
  kWorkerOomKill,     ///< the memory watchdog kills one worker/task
  kStraggler,         ///< the task runs several times longer than nominal
  kNetworkPartition,  ///< transient partition: a broadcast/shuffle op fails
  kFilesystemStall,   ///< the shared parallel filesystem stalls
  kTransientReadError,  ///< one staged read returns garbage; re-read heals
};
const char* to_string(FaultKind kind) noexcept;

/// The engine whose recovery policy handles an injected fault. kService
/// scopes the serving front end's chaos harness (docs/SERVICE.md): the
/// executor boundary retries with backoff like RP, and the same scope
/// salt drives byte-identical verdicts on the live and DES paths.
enum class EngineId { kSpark, kDask, kRp, kMpi, kService };
const char* to_string(EngineId engine) noexcept;

/// One scheduled injection. Explicit entries fire when task and attempt
/// match; wildcard values widen the blast radius (kEveryTask turns an
/// entry into "all tasks", kEveryAttempt into "every retry too" — the
/// unrecoverable, physics-driven faults like an oversized cdist block).
struct FaultSpec {
  static constexpr std::uint64_t kEveryTask = ~0ull;
  static constexpr int kEveryAttempt = -1;

  FaultKind kind = FaultKind::kNone;
  std::uint64_t task_id = kEveryTask;
  int attempt = 0;
  /// Virtual-time duration multiplier (DES stragglers) — 1.0 = none.
  double factor = 1.0;
  /// Real or virtual seconds of added delay (engine stragglers, FS
  /// stalls, node-repair time).
  double delay_s = 0.0;

  bool fires_for(std::uint64_t task, int try_index) const noexcept {
    return kind != FaultKind::kNone &&
           (task_id == kEveryTask || task_id == task) &&
           (attempt == kEveryAttempt || attempt == try_index);
  }
};

/// Background fault probabilities, evaluated independently per
/// (task, attempt) by the injector's hash. All default to zero.
struct FaultRates {
  double node_crash = 0.0;
  double worker_oom = 0.0;
  double straggler = 0.0;
  double network_partition = 0.0;
  double fs_stall = 0.0;
  /// Probability one shard read returns corrupt data (checksum reject)
  /// and must be re-read — the streaming substrate's fault mode.
  double transient_read = 0.0;
  /// Duration multiplier a probabilistic straggler applies.
  double straggler_factor = 4.0;
  /// Seconds a probabilistic FS stall adds.
  double fs_stall_s = 0.5;

  bool empty() const noexcept {
    return node_crash == 0.0 && worker_oom == 0.0 && straggler == 0.0 &&
           network_partition == 0.0 && fs_stall == 0.0 &&
           transient_read == 0.0;
  }
};

/// How an engine retries failed work: bounded attempts with exponential
/// backoff (RADICAL-Pilot's pilot-level retry; Dask's allowed-failures;
/// the MPI wrapper's restart budget).
struct RetryPolicy {
  int max_attempts = 3;            ///< total tries including the first
  double backoff_s = 0.0;          ///< delay before the first retry
  double backoff_multiplier = 2.0; ///< growth per further retry
  double timeout_s = 0.0;          ///< per-attempt watchdog (0 = none)
};

/// Backoff before retry number `attempt` (1-based: the delay between
/// attempt-1 failing and attempt starting). Exponential, never negative.
double backoff_for_attempt(const RetryPolicy& policy, int attempt) noexcept;

/// Sec.-6 speculative execution: once a task has run threshold_factor x
/// its nominal duration, launch a backup copy; first finisher wins.
struct SpeculationConfig {
  bool enabled = false;
  double threshold_factor = 1.5;
};

/// A complete failure scenario: seed + background rates + explicit
/// schedule + how hard the engine fights back. Consumed by all four
/// engine runtimes, the workflow runners and the DES replays.
struct FaultPlan {
  std::uint64_t seed = 42;
  FaultRates rates;
  std::vector<FaultSpec> schedule;
  RetryPolicy retry;
  SpeculationConfig speculation;

  bool empty() const noexcept {
    return schedule.empty() && rates.empty();
  }
};

/// Thrown inside an engine task when an injected fault fires and the
/// engine's recovery policy gives up (or surfaces it to the caller).
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultKind kind, std::uint64_t task_id, int attempt)
      : std::runtime_error(std::string("injected fault: ") +
                           fault::to_string(kind)),
        kind_(kind),
        task_id_(task_id),
        attempt_(attempt) {}

  FaultKind kind() const noexcept { return kind_; }
  std::uint64_t task_id() const noexcept { return task_id_; }
  int attempt() const noexcept { return attempt_; }

 private:
  FaultKind kind_;
  std::uint64_t task_id_;
  int attempt_;
};

}  // namespace mdtask::fault
