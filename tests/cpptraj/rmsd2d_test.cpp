#include "mdtask/cpptraj/rmsd2d.h"

#include <gtest/gtest.h>

#include "mdtask/analysis/hausdorff.h"
#include "mdtask/analysis/rmsd.h"
#include "mdtask/traj/generators.h"

namespace mdtask::cpptraj {
namespace {

traj::Trajectory make_traj(std::uint64_t seed, std::size_t frames = 10,
                           std::size_t atoms = 33) {
  traj::ProteinTrajectoryParams p;
  p.frames = frames;
  p.atoms = atoms;
  p.seed = seed;
  return traj::make_protein_trajectory(p);
}

TEST(Rmsd2dTest, ReferenceMatchesFrameRmsd) {
  const auto a = make_traj(1), b = make_traj(2);
  const auto m = rmsd2d_block_reference(a, b);
  ASSERT_EQ(m.size(), a.frames() * b.frames());
  for (std::size_t i = 0; i < a.frames(); ++i) {
    for (std::size_t j = 0; j < b.frames(); ++j) {
      EXPECT_NEAR(m[i * b.frames() + j],
                  analysis::frame_rmsd(a.frame(i), b.frame(j)), 1e-12);
    }
  }
}

TEST(Rmsd2dTest, OptimizedMatchesReference) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    // Odd atom count exercises the unrolled loop's scalar tail.
    const auto a = make_traj(seed, 7, 41);
    const auto b = make_traj(seed + 50, 9, 41);
    const auto ref = rmsd2d_block_reference(a, b);
    const auto opt = rmsd2d_block_optimized(a, b);
    ASSERT_EQ(ref.size(), opt.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(ref[i], opt[i], 1e-9) << "seed " << seed << " i " << i;
    }
  }
}

TEST(Rmsd2dTest, DispatchSelectsKernel) {
  const auto a = make_traj(1), b = make_traj(2);
  EXPECT_EQ(rmsd2d_block(a, b, Rmsd2dKernel::kReference),
            rmsd2d_block_reference(a, b));
}

TEST(HausdorffFromMatrixTest, MatchesDirectHausdorff) {
  const auto a = make_traj(5), b = make_traj(6);
  const auto m = rmsd2d_block_optimized(a, b);
  EXPECT_NEAR(hausdorff_from_matrix(m, a.frames(), b.frames()),
              analysis::hausdorff_naive(a, b), 1e-9);
}

TEST(HausdorffFromMatrixTest, ZeroMatrixGivesZero) {
  const std::vector<double> zeros(12, 0.0);
  EXPECT_DOUBLE_EQ(hausdorff_from_matrix(zeros, 3, 4), 0.0);
}

class CpptrajPsaTest : public ::testing::TestWithParam<int> {};

TEST_P(CpptrajPsaTest, MatchesMdanalysisStylePsaAcrossRankCounts) {
  traj::ProteinTrajectoryParams p;
  p.atoms = 12;
  p.frames = 8;
  const auto ensemble = traj::make_protein_ensemble(5, p);
  const auto result =
      cpptraj_psa(ensemble, GetParam(), Rmsd2dKernel::kOptimized);
  ASSERT_EQ(result.n, 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(result.distances[i * 5 + i], 0.0);
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_NEAR(result.distances[i * 5 + j],
                  analysis::hausdorff_naive(ensemble[i], ensemble[j]), 1e-9);
      EXPECT_DOUBLE_EQ(result.distances[i * 5 + j],
                       result.distances[j * 5 + i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, CpptrajPsaTest, ::testing::Values(1, 2, 5, 8));

class Rmsd2dParallelTest : public ::testing::TestWithParam<int> {};

TEST_P(Rmsd2dParallelTest, FrameDistributionMatchesSerial) {
  const auto a = make_traj(7, 13, 21);
  const auto b = make_traj(8, 9, 21);
  const auto serial = rmsd2d_block_optimized(a, b);
  const auto parallel =
      rmsd2d_parallel(a, b, GetParam(), Rmsd2dKernel::kOptimized);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(parallel[i], serial[i], 1e-12) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, Rmsd2dParallelTest,
                         ::testing::Values(1, 2, 3, 8, 16));

TEST(Rmsd2dParallelTest, MoreRanksThanFrames) {
  const auto a = make_traj(1, 3, 5);
  const auto b = make_traj(2, 3, 5);
  const auto parallel = rmsd2d_parallel(a, b, 12, Rmsd2dKernel::kReference);
  EXPECT_EQ(parallel, rmsd2d_block_reference(a, b));
}

TEST(Rmsd2dParallelTest, EmptyPairGivesEmptyMatrix) {
  EXPECT_TRUE(rmsd2d_parallel(traj::Trajectory(), traj::Trajectory(), 4,
                              Rmsd2dKernel::kReference)
                  .empty());
}

TEST(CpptrajPsaTest, EmptyEnsemble) {
  const auto result = cpptraj_psa({}, 4, Rmsd2dKernel::kReference);
  EXPECT_EQ(result.n, 0u);
  EXPECT_TRUE(result.distances.empty());
}

}  // namespace
}  // namespace mdtask::cpptraj
