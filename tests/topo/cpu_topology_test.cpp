#include "mdtask/topo/cpu_topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

namespace mdtask::topo {
namespace {

TEST(CpuTopologyTest, SyntheticFlatTopologyHasOneCpuPerCoreAndL2) {
  const CpuTopology t = CpuTopology::synthetic(4);
  EXPECT_EQ(t.logical_cpus(), 4u);
  EXPECT_EQ(t.physical_cores(), 4u);
  EXPECT_EQ(t.l2_domains(), 4u);
  EXPECT_FALSE(t.detected());
}

TEST(CpuTopologyTest, SyntheticSmtPairsShareCoresCoreMajor) {
  // 8 logical = 4 cores x 2 threads, core-major: cpu i and cpu i+4 are
  // siblings.
  const CpuTopology t = CpuTopology::synthetic(8, 2);
  EXPECT_EQ(t.physical_cores(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.cpu(i).core, t.cpu(i + 4).core) << "cpu " << i;
  }
}

TEST(CpuTopologyTest, SyntheticL2AndPackageGrouping) {
  // 8 cores, 2 cores per L2, 4 cores per package => 4 L2 domains, 2
  // sockets.
  const CpuTopology t = CpuTopology::synthetic(8, 1, 2, 4);
  EXPECT_EQ(t.l2_domains(), 4u);
  EXPECT_EQ(t.cpu(0).l2, t.cpu(1).l2);
  EXPECT_NE(t.cpu(1).l2, t.cpu(2).l2);
  EXPECT_EQ(t.cpu(0).package, t.cpu(3).package);
  EXPECT_NE(t.cpu(3).package, t.cpu(4).package);
}

TEST(CpuTopologyTest, ZeroLogicalClampsToOne) {
  const CpuTopology t = CpuTopology::synthetic(0);
  EXPECT_EQ(t.logical_cpus(), 1u);
}

TEST(CpuTopologyTest, DetectNeverFails) {
  const CpuTopology t = CpuTopology::detect();
  EXPECT_GE(t.logical_cpus(), 1u);
  EXPECT_GE(t.physical_cores(), 1u);
  EXPECT_GE(t.l2_domains(), 1u);
  // host() is the same topology, computed once.
  EXPECT_EQ(CpuTopology::host().logical_cpus(), t.logical_cpus());
}

TEST(WorkerPlacementTest, FillsPhysicalCoresBeforeSmtSiblings) {
  const CpuTopology t = CpuTopology::synthetic(8, 2);  // 4 cores x 2 SMT
  const std::vector<int> placement = t.worker_placement(8);
  ASSERT_EQ(placement.size(), 8u);
  // First 4 workers land on 4 distinct physical cores.
  std::set<int> first_cores;
  for (std::size_t w = 0; w < 4; ++w) {
    first_cores.insert(t.cpu(static_cast<std::size_t>(placement[w])).core);
  }
  EXPECT_EQ(first_cores.size(), 4u);
  // All 8 CPUs used exactly once overall.
  std::set<int> all(placement.begin(), placement.end());
  EXPECT_EQ(all.size(), 8u);
}

TEST(WorkerPlacementTest, WrapsRoundRobinWhenOversubscribed) {
  const CpuTopology t = CpuTopology::synthetic(4);
  const std::vector<int> placement = t.worker_placement(10);
  ASSERT_EQ(placement.size(), 10u);
  for (std::size_t w = 4; w < 10; ++w) {
    EXPECT_EQ(placement[w], placement[w - 4]);
  }
}

TEST(VictimOrderTest, SmtSiblingFirstThenL2ThenPackage) {
  // 8 cores, 2 SMT each = 16 logical; 2 cores/L2, 4 cores/package.
  const CpuTopology t = CpuTopology::synthetic(16, 2, 2, 4);
  const std::vector<int> placement = t.worker_placement(16);
  const std::vector<std::size_t> order = t.victim_order(placement, 0);
  ASSERT_EQ(order.size(), 15u);

  const CpuInfo& me = t.cpu(static_cast<std::size_t>(placement[0]));
  const CpuInfo& first = t.cpu(static_cast<std::size_t>(placement[order[0]]));
  // The first victim shares my physical core (SMT sibling).
  EXPECT_EQ(first.core, me.core);
  EXPECT_NE(first.cpu, me.cpu);

  // Victims sharing my L2 all come before any victim on another socket.
  std::size_t last_l2 = 0, first_foreign = order.size();
  for (std::size_t i = 0; i < order.size(); ++i) {
    const CpuInfo& v = t.cpu(static_cast<std::size_t>(placement[order[i]]));
    if (v.l2 == me.l2) last_l2 = i;
    if (v.package != me.package && first_foreign == order.size()) {
      first_foreign = i;
    }
  }
  EXPECT_LT(last_l2, first_foreign);
}

TEST(VictimOrderTest, RotatesBySelfAndExcludesSelf) {
  const CpuTopology t = CpuTopology::synthetic(4);
  const std::vector<int> placement = t.worker_placement(4);
  const auto o1 = t.victim_order(placement, 1);
  const auto o2 = t.victim_order(placement, 2);
  EXPECT_EQ(std::count(o1.begin(), o1.end(), std::size_t{1}), 0);
  EXPECT_EQ(std::count(o2.begin(), o2.end(), std::size_t{2}), 0);
  ASSERT_FALSE(o1.empty());
  ASSERT_FALSE(o2.empty());
  EXPECT_NE(o1.front(), o2.front());  // concurrent thieves fan out
}

TEST(VictimOrderTest, UnpinnedWorkersStillGetAFullOrder) {
  const CpuTopology t = CpuTopology::synthetic(4);
  const std::vector<int> unpinned(6, -1);
  const auto order = t.victim_order(unpinned, 0);
  std::set<std::size_t> seen(order.begin(), order.end());
  EXPECT_EQ(order.size(), 5u);
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.count(0), 0u);
}

TEST(PinTest, PinCurrentThreadToCpuZeroSucceedsOnLinux) {
#if defined(__linux__)
  std::thread worker([] { EXPECT_TRUE(pin_current_thread(0)); });
  worker.join();
#else
  GTEST_SKIP() << "pinning is Linux-only";
#endif
}

TEST(PinTest, NegativeCpuIsRejected) {
  EXPECT_FALSE(pin_current_thread(-1));
}

}  // namespace
}  // namespace mdtask::topo
