#include "mdtask/topo/steal_deque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace mdtask::topo {
namespace {

TEST(StealQueueTest, OwnerPopsLifoThiefStealsFifo) {
  StealQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  int v = 0;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 3);  // owner: newest first
  ASSERT_TRUE(q.steal(v));
  EXPECT_EQ(v, 1);  // thief: oldest first
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));
  EXPECT_FALSE(q.steal(v));
}

TEST(StealQueueTest, StealBatchTakesOldestUpToMax) {
  StealQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  std::vector<int> out;
  EXPECT_EQ(q.steal_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.size(), 6u);
}

TEST(StealQueueTest, DrainEmptiesEverythingInFifoOrder) {
  StealQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  std::vector<int> out;
  EXPECT_EQ(q.drain(out), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.drain(out), 0u);
}

TEST(StealQueueTest, ConcurrentOwnerAndThievesLoseNothing) {
  StealQueue<int> q;
  constexpr int kItems = 20000;
  std::atomic<int> taken{0};
  std::atomic<bool> done{false};
  auto thief = [&] {
    int v;
    while (!done.load() || !q.empty()) {
      if (q.steal(v)) taken.fetch_add(1);
    }
  };
  std::thread t1(thief), t2(thief);
  for (int i = 0; i < kItems; ++i) {
    q.push(i);
    int v;
    if (q.pop(v)) taken.fetch_add(1);
  }
  done.store(true);
  t1.join();
  t2.join();
  EXPECT_EQ(taken.load(), kItems);
  EXPECT_TRUE(q.empty());
}

TEST(StealQueueTest, QueuesArePaddedToDistinctCacheLines) {
  EXPECT_GE(alignof(StealQueue<int>), 64u);
}

}  // namespace
}  // namespace mdtask::topo
