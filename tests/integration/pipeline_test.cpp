// Integration tests: whole pipelines crossing module boundaries.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "mdtask/analysis/clustering.h"
#include "mdtask/analysis/rmsd_series.h"
#include "mdtask/common/rng.h"
#include "mdtask/traj/generators.h"
#include "mdtask/perf/workloads.h"
#include "mdtask/traj/mdt_file.h"
#include "mdtask/traj/universe.h"
#include "mdtask/traj/xyz_file.h"
#include "mdtask/workflows/leaflet_runner.h"
#include "mdtask/workflows/psa_runner.h"
#include "mdtask/workflows/rmsd_runner.h"

namespace mdtask {
namespace {

TEST(PipelineTest, GenerateStageReadAnalyzeClusterEndToEnd) {
  // Full PSA pipeline: synthesize families -> stage to disk as MDT ->
  // read back -> parallel PSA (all engines agree) -> cluster -> the
  // known family structure is recovered.
  const auto dir =
      std::filesystem::temp_directory_path() / "mdtask_integration";
  std::filesystem::create_directories(dir);

  traj::ProteinTrajectoryParams params;
  params.atoms = 12;
  params.frames = 10;
  Xoshiro256StarStar noise(5);
  traj::Ensemble staged;
  for (std::size_t family = 0; family < 2; ++family) {
    params.seed = 777 * (family + 1);
    const auto base = traj::make_protein_trajectory(params);
    for (std::size_t member = 0; member < 3; ++member) {
      traj::Trajectory t = base;
      for (auto& p : t.data()) {
        p.x += static_cast<float>(noise.normal(0.0, 0.05));
        p.y += static_cast<float>(noise.normal(0.0, 0.05));
      }
      std::string file_name = "t";
      file_name += std::to_string(staged.size());
      file_name += ".mdt";
      const auto path = dir / file_name;
      ASSERT_TRUE(traj::write_mdt(path.string(), t).ok());
      staged.push_back(std::move(t));
    }
  }
  // Read back from disk (the engines' input path).
  traj::Ensemble loaded;
  for (std::size_t i = 0; i < staged.size(); ++i) {
    std::string file_name = "t";
    file_name += std::to_string(i);
    file_name += ".mdt";
    auto t = traj::read_mdt((dir / file_name).string());
    ASSERT_TRUE(t.ok());
    loaded.push_back(std::move(t).value());
  }

  workflows::PsaRunConfig config;
  config.workers = 3;
  const auto mpi =
      workflows::run_psa(workflows::EngineKind::kMpi, loaded, config);
  for (auto engine : {workflows::EngineKind::kSpark,
                      workflows::EngineKind::kDask,
                      workflows::EngineKind::kRp}) {
    const auto other = workflows::run_psa(engine, loaded, config);
    EXPECT_EQ(other.matrix.max_abs_diff(mpi.matrix), 0.0);
  }

  auto dendrogram = analysis::hierarchical_cluster(
      mpi.matrix, analysis::Linkage::kAverage);
  ASSERT_TRUE(dendrogram.ok());
  const auto labels = analysis::cut_into_clusters(dendrogram.value(), 2);
  for (std::size_t i = 1; i < 3; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (std::size_t i = 4; i < 6; ++i) EXPECT_EQ(labels[i], labels[3]);
  EXPECT_NE(labels[0], labels[3]);

  std::filesystem::remove_all(dir);
}

TEST(PipelineTest, FormatsInteroperate) {
  // MDT -> memory -> XYZ -> memory: same trajectory within text
  // precision.
  const auto dir =
      std::filesystem::temp_directory_path() / "mdtask_fmt_integration";
  std::filesystem::create_directories(dir);
  traj::ProteinTrajectoryParams params;
  params.atoms = 7;
  params.frames = 5;
  const auto original = traj::make_protein_trajectory(params);

  const auto mdt = (dir / "t.mdt").string();
  const auto xyz = (dir / "t.xyz").string();
  ASSERT_TRUE(traj::write_mdt(mdt, original).ok());
  auto from_mdt = traj::read_mdt(mdt);
  ASSERT_TRUE(from_mdt.ok());
  ASSERT_TRUE(traj::write_xyz(xyz, from_mdt.value()).ok());
  auto from_xyz = traj::read_xyz(xyz);
  ASSERT_TRUE(from_xyz.ok());

  ASSERT_EQ(from_xyz.value().frames(), original.frames());
  ASSERT_EQ(from_xyz.value().atoms(), original.atoms());
  for (std::size_t f = 0; f < original.frames(); ++f) {
    for (std::size_t a = 0; a < original.atoms(); ++a) {
      EXPECT_NEAR(from_xyz.value().frame(f)[a].x, original.frame(f)[a].x,
                  2e-4 * (1.0 + std::abs(original.frame(f)[a].x)));
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(PipelineTest, UniverseSelectionFeedsLeafletWorkflow) {
  traj::LipidBilayerParams params;
  params.lipids = 300;
  const auto universe = traj::make_lipid_bilayer_universe(params);
  auto heads = universe.select("name P");
  ASSERT_TRUE(heads.ok());
  const auto positions =
      traj::subset_frame(universe.trajectory().frame(0), heads.value());
  workflows::LfRunConfig config;
  config.target_tasks = 12;
  for (int approach : {1, 2, 3, 4}) {
    auto result = workflows::run_leaflet_finder(
        workflows::EngineKind::kDask, approach, positions,
        2.1 * params.spacing, config);
    ASSERT_TRUE(result.ok()) << "approach " << approach;
    EXPECT_EQ(result.value().leaflets.component_count, 2u);
    EXPECT_EQ(result.value().leaflets.leaflet_a_size, 150u);
  }
}

TEST(SimulationDeterminismTest, IdenticalInputsIdenticalOutputs) {
  // The DES must be bit-deterministic: figure CSVs are reproducible.
  perf::KernelCosts costs;
  costs.hausdorff_unit = 3e-9;
  costs.cdist_element = 2e-9;
  costs.tree_build_point = 1e-6;
  costs.tree_query_point_log = 5e-7;
  costs.cc_edge = 1e-8;
  costs.merge_vertex = 2e-8;
  const sim::ClusterSpec cluster{sim::wrangler(), 4, 128};
  const perf::LfWorkload workload{262144, 1750000, 1024};
  for (const auto& model : {perf::spark_model(), perf::dask_model()}) {
    const auto a =
        perf::simulate_leaflet(model, cluster, 3, workload, costs);
    const auto b =
        perf::simulate_leaflet(model, cluster, 3, workload, costs);
    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.shuffle_s, b.shuffle_s);
  }
  const auto t1 = perf::simulate_throughput(perf::dask_model(), cluster,
                                            50000);
  const auto t2 = perf::simulate_throughput(perf::dask_model(), cluster,
                                            50000);
  EXPECT_EQ(t1.makespan_s, t2.makespan_s);
}

TEST(PipelineTest, RmsdSeriesOnSelectedSubsetAcrossEngines) {
  traj::ProteinTrajectoryParams params;
  params.atoms = 30;
  params.frames = 20;
  const auto trajectory = traj::make_protein_trajectory(params);
  const auto universe = traj::Universe::create(
      traj::make_protein_topology(params.atoms), trajectory);
  ASSERT_TRUE(universe.ok());
  auto ca = universe.value().select("name CA");
  ASSERT_TRUE(ca.ok());
  auto sub = traj::subset_trajectory(trajectory, ca.value());
  ASSERT_TRUE(sub.ok());
  const auto reference = analysis::rmsd_series(sub.value());
  for (auto engine : {workflows::EngineKind::kMpi,
                      workflows::EngineKind::kSpark,
                      workflows::EngineKind::kDask,
                      workflows::EngineKind::kRp}) {
    const auto result =
        workflows::run_rmsd_series(engine, sub.value(), {});
    EXPECT_EQ(result.series, reference);
  }
}

TEST(WorkflowsCommonTest, EngineNamesAreStable) {
  EXPECT_STREQ(workflows::to_string(workflows::EngineKind::kMpi), "MPI");
  EXPECT_STREQ(workflows::to_string(workflows::EngineKind::kSpark),
               "Spark");
  EXPECT_STREQ(workflows::to_string(workflows::EngineKind::kDask), "Dask");
  EXPECT_STREQ(workflows::to_string(workflows::EngineKind::kRp),
               "RADICAL-Pilot");
}

}  // namespace
}  // namespace mdtask
