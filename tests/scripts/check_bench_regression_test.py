#!/usr/bin/env python3
"""Unit tests for scripts/check_bench_regression.py.

Pins the data-driven behavioural skip list: fault-injection, elasticity
and autoscale entries must be excluded from the regression gate whether
they are marked by flag or by kernel-name prefix, and a behavioural
entry must never fail the gate no matter how slow it looks.
"""

import importlib.util
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      os.pardir, os.pardir, "scripts",
                      "check_bench_regression.py")


def load_module():
    spec = importlib.util.spec_from_file_location("check_bench_regression",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


MOD = load_module()


class BehaviouralSkipListTest(unittest.TestCase):
    def test_plain_kernel_entry_is_not_behavioural(self):
        entry = {"kernel": "hausdorff_rmsd", "policy": "vectorized",
                 "ns_per_unit": 10.0}
        self.assertIsNone(MOD.behavioural(entry))

    def test_none_entry_is_not_behavioural(self):
        self.assertIsNone(MOD.behavioural(None))

    def test_every_family_flag_is_skipped(self):
        for key, reason in MOD.BEHAVIOURAL_FAMILIES:
            entry = {"kernel": "anything", "policy": "scalar", key: True}
            self.assertEqual(MOD.behavioural(entry), reason, key)

    def test_falsy_flag_is_not_skipped(self):
        entry = {"kernel": "anything", "policy": "scalar",
                 "fault_injection": False}
        self.assertIsNone(MOD.behavioural(entry))

    def test_kernel_name_prefix_is_skipped(self):
        for key, reason in MOD.BEHAVIOURAL_FAMILIES:
            for kernel in (key, key + "_wave"):
                self.assertEqual(
                    MOD.behavioural({"kernel": kernel, "policy": "scalar"}),
                    reason, kernel)

    def test_prefix_requires_word_boundary(self):
        # "elasticity_constant" is a physics kernel, not an elasticity
        # entry: only "<key>" or "<key>_*" match.
        self.assertIsNone(MOD.behavioural({"kernel": "elasticaner"}))

    def test_autoscale_family_is_registered(self):
        self.assertIn("autoscale", [k for k, _ in MOD.BEHAVIOURAL_FAMILIES])

    def test_stream_family_is_registered(self):
        self.assertIn("stream", [k for k, _ in MOD.BEHAVIOURAL_FAMILIES])

    def test_pool_family_is_registered(self):
        self.assertIn("pool", [k for k, _ in MOD.BEHAVIOURAL_FAMILIES])

    def test_pool_scenarios_match_by_prefix(self):
        for kernel in ("pool_contended", "pool_chained", "pool_burst",
                       "pool_tile"):
            self.assertIsNotNone(
                MOD.behavioural({"kernel": kernel, "policy": "single_fifo"}),
                kernel)

    def test_service_family_is_registered(self):
        self.assertIn("service", [k for k, _ in MOD.BEHAVIOURAL_FAMILIES])

    def test_service_kernels_match_by_prefix(self):
        for kernel in ("service_diurnal", "service_bursty", "service_cache",
                       "service_autoscale"):
            self.assertIsNotNone(
                MOD.behavioural({"kernel": kernel, "policy": "interactive"}),
                kernel)

    def test_repex_family_is_registered(self):
        self.assertIn("repex", [k for k, _ in MOD.BEHAVIOURAL_FAMILIES])

    def test_repex_kernels_match_by_prefix(self):
        # bench_repex emits per-engine wall time and the Spark cache
        # pair: both machine-bound, both covered by the "repex" family.
        for kernel in ("repex", "repex_engine", "repex_spark_cache"):
            for policy in ("Spark", "MPI", "on", "off"):
                self.assertIsNotNone(
                    MOD.behavioural({"kernel": kernel, "policy": policy}),
                    f"{kernel}/{policy}")

    def test_iterative_caching_family_is_registered(self):
        self.assertIn("iterative_caching",
                      [k for k, _ in MOD.BEHAVIOURAL_FAMILIES])

    def test_service_chaos_tables_are_behavioural(self):
        # bench_service --chaos emits SLO-attainment kernels (reliability
        # on vs off) and the per-tenant table: behavioural by the
        # "service" family prefix, never gated on absolute time.
        for kernel in ("service_chaos", "service_tenants"):
            for policy in ("on-interactive", "off-interactive", "tenant-7"):
                self.assertIsNotNone(
                    MOD.behavioural({"kernel": kernel, "policy": policy}),
                    f"{kernel}/{policy}")


class EndToEndGateTest(unittest.TestCase):
    @staticmethod
    def write_doc(path, entries):
        with open(path, "w") as f:
            json.dump({"schema": "mdtask-bench-kernels-v1",
                       "entries": entries}, f)

    def run_gate(self, baseline, current, extra_args=()):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "baseline.json")
            cur_path = os.path.join(tmp, "current.json")
            self.write_doc(base_path, baseline)
            self.write_doc(cur_path, current)
            return subprocess.run(
                [sys.executable, SCRIPT, "--baseline", base_path,
                 "--current", cur_path, *extra_args],
                capture_output=True, text=True)

    def test_behavioural_slowdown_does_not_fail_the_gate(self):
        baseline = [
            {"kernel": "hausdorff_rmsd", "policy": "scalar",
             "ns_per_unit": 100.0},
            {"kernel": "autoscale_wave", "policy": "scalar",
             "ns_per_unit": 1.0},
            {"kernel": "fault_injection_wave", "policy": "scalar",
             "ns_per_unit": 1.0},
            {"kernel": "stream_wave", "policy": "scalar",
             "ns_per_unit": 1.0},
        ]
        current = [
            {"kernel": "hausdorff_rmsd", "policy": "scalar",
             "ns_per_unit": 101.0},
            # 1000x "slower": must be skipped, not a regression.
            {"kernel": "autoscale_wave", "policy": "scalar",
             "ns_per_unit": 1000.0},
            {"kernel": "fault_injection_wave", "policy": "scalar",
             "ns_per_unit": 1000.0},
            # The streamed-I/O addendum depends on the filesystem model,
            # not kernel speed: also skipped.
            {"kernel": "stream_wave", "policy": "scalar",
             "ns_per_unit": 1000.0},
        ]
        result = self.run_gate(baseline, current)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("skipped", result.stdout)

    def test_kernel_regression_still_fails_the_gate(self):
        baseline = [{"kernel": "hausdorff_rmsd", "policy": "scalar",
                     "ns_per_unit": 100.0}]
        current = [{"kernel": "hausdorff_rmsd", "policy": "scalar",
                    "ns_per_unit": 200.0}]
        result = self.run_gate(baseline, current)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("REGRESSION", result.stdout)

    POOL_DOC = [
        {"kernel": "pool_tile", "policy": "single_fifo",
         "ns_per_unit": 3000.0},
        {"kernel": "pool_tile", "policy": "work_stealing",
         "ns_per_unit": 3100.0},
    ]

    def test_explicit_policy_pair_gates_behavioural_ratio(self):
        # 3000/3100 = 0.97x: passes a 0.9 floor, fails a 1.5 floor —
        # even though "pool" is a behavioural family, the explicit pair
        # opts the same-run ratio into the gate.
        ok = self.run_gate(
            self.POOL_DOC, self.POOL_DOC,
            ["--min-speedup", "pool_tile=0.9:single_fifo/work_stealing"])
        self.assertEqual(ok.returncode, 0, ok.stderr)
        self.assertIn("work_stealing speedup", ok.stdout)
        bad = self.run_gate(
            self.POOL_DOC, self.POOL_DOC,
            ["--min-speedup", "pool_tile=1.5:single_fifo/work_stealing"])
        self.assertNotEqual(bad.returncode, 0)
        self.assertIn("TOO SLOW", bad.stdout)

    def test_pool_entries_skip_the_absolute_ns_gate(self):
        # A 1000x absolute slowdown on a different machine must NOT trip
        # the cross-machine gate for pool entries.
        slower = [dict(e, ns_per_unit=e["ns_per_unit"] * 1000)
                  for e in self.POOL_DOC]
        result = self.run_gate(self.POOL_DOC, slower)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("skipped", result.stdout)

    def test_default_pair_still_skips_behavioural_entries(self):
        doc = [
            {"kernel": "autoscale_wave", "policy": "scalar",
             "ns_per_unit": 100.0},
            {"kernel": "autoscale_wave", "policy": "vectorized",
             "ns_per_unit": 100.0},
        ]
        result = self.run_gate(doc, doc,
                               ["--min-speedup", "autoscale_wave=2.0"])
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("skipped", result.stdout)

    SERVICE_DOC = [
        {"kernel": "service_cache", "policy": "on", "ns_per_unit": 190.0},
        {"kernel": "service_cache", "policy": "off", "ns_per_unit": 850.0},
        {"kernel": "service_diurnal", "policy": "interactive",
         "ns_per_unit": 1.6e8},
    ]

    def test_service_entries_skip_the_absolute_ns_gate(self):
        # Serving-layer p95s move with the traffic schedule; a big
        # absolute shift must not trip the cross-run gate.
        slower = [dict(e, ns_per_unit=e["ns_per_unit"] * 1000)
                  for e in self.SERVICE_DOC]
        result = self.run_gate(self.SERVICE_DOC, slower)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("skipped", result.stdout)

    def test_service_cache_ratio_opts_into_the_gate(self):
        # 850/190 = 4.47x fewer engine jobs with the cache on: the
        # explicit off/on pair gates the same-run ratio even though
        # "service" is behavioural.
        ok = self.run_gate(self.SERVICE_DOC, self.SERVICE_DOC,
                           ["--min-speedup", "service_cache=2.0:off/on"])
        self.assertEqual(ok.returncode, 0, ok.stderr)
        bad = self.run_gate(self.SERVICE_DOC, self.SERVICE_DOC,
                            ["--min-speedup", "service_cache=10.0:off/on"])
        self.assertNotEqual(bad.returncode, 0)
        self.assertIn("TOO SLOW", bad.stdout)

    REPEX_DOC = [
        {"kernel": "repex_engine", "policy": "Spark", "ns_per_unit": 6.2e5},
        {"kernel": "repex_spark_cache", "policy": "on",
         "ns_per_unit": 6.1e5},
        {"kernel": "repex_spark_cache", "policy": "off",
         "ns_per_unit": 2.2e6},
    ]

    def test_repex_entries_skip_the_absolute_ns_gate(self):
        # Replica-exchange wall time is machine-bound; a big absolute
        # shift on another machine must not trip the cross-run gate.
        slower = [dict(e, ns_per_unit=e["ns_per_unit"] * 1000)
                  for e in self.REPEX_DOC]
        result = self.run_gate(self.REPEX_DOC, slower)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("skipped", result.stdout)

    def test_repex_cache_ratio_opts_into_the_gate(self):
        # 2.2e6/6.1e5 = 3.6x: cache() skips the base-observable recompute
        # every round. The explicit off/on pair gates the same-run ratio
        # (the CI step uses 1.3 as the floor); an absurd floor fails.
        ok = self.run_gate(self.REPEX_DOC, self.REPEX_DOC,
                           ["--min-speedup", "repex_spark_cache=1.3:off/on"])
        self.assertEqual(ok.returncode, 0, ok.stderr)
        bad = self.run_gate(self.REPEX_DOC, self.REPEX_DOC,
                            ["--min-speedup", "repex_spark_cache=10.0:off/on"])
        self.assertNotEqual(bad.returncode, 0)
        self.assertIn("TOO SLOW", bad.stdout)

    def test_missing_pair_cell_fails_the_gate(self):
        result = self.run_gate(
            self.POOL_DOC, self.POOL_DOC,
            ["--min-speedup", "pool_burst=0.5:single_fifo/work_stealing"])
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("cells missing", result.stderr)


if __name__ == "__main__":
    unittest.main()
