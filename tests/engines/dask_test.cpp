#include "mdtask/engines/dask/dask.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>

namespace mdtask::dask {
namespace {

TEST(DaskTest, SubmitNoDeps) {
  DaskClient client;
  auto f = client.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(DaskTest, DependencyChainExecutesInOrder) {
  DaskClient client;
  auto a = client.submit([] { return 10; });
  auto b = client.submit([](const int& x) { return x + 5; }, a);
  auto c = client.submit([](const int& x) { return x * 2; }, b);
  EXPECT_EQ(c.get(), 30);
}

TEST(DaskTest, DiamondGraph) {
  DaskClient client;
  auto root = client.submit([] { return 3; });
  auto left = client.submit([](const int& x) { return x + 1; }, root);
  auto right = client.submit([](const int& x) { return x * 10; }, root);
  auto join = client.submit(
      [](const int& l, const int& r) { return l + r; }, left, right);
  EXPECT_EQ(join.get(), 4 + 30);
}

TEST(DaskTest, ManyIndependentTasks) {
  DaskClient client(DaskConfig{.workers = 8});
  std::vector<Future<int>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(client.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(client.metrics().tasks_executed.load(), 500u);
}

TEST(DaskTest, ErrorPropagatesToFuture) {
  DaskClient client;
  auto f = client.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(DaskTest, ErrorPropagatesThroughDependents) {
  DaskClient client;
  auto bad = client.submit([]() -> int { throw std::logic_error("bad"); });
  auto downstream =
      client.submit([](const int& x) { return x + 1; }, bad);
  EXPECT_THROW(downstream.get(), std::logic_error);
}

TEST(DaskTest, DependenciesAlreadyFinishedStillWire) {
  DaskClient client;
  auto a = client.submit([] { return 1; });
  EXPECT_EQ(a.get(), 1);  // a definitely finished
  auto b = client.submit([](const int& x) { return x + 1; }, a);
  EXPECT_EQ(b.get(), 2);
}

TEST(DaskTest, WaitAllDrainsGraph) {
  DaskClient client;
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    client.submit([&done] {
      done.fetch_add(1);
      return 0;
    });
  }
  client.wait_all();
  EXPECT_EQ(done.load(), 100);
}

TEST(DaskTest, NoStageBarrier_DependentStartsBeforeSiblingFinishes) {
  // Two independent chains; a slow task in chain B must not delay the
  // downstream of chain A (contrast with Spark stage semantics).
  DaskClient client(DaskConfig{.workers = 2});
  std::atomic<bool> slow_done{false};
  auto slow = client.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    slow_done.store(true);
    return 0;
  });
  auto fast = client.submit([] { return 1; });
  auto fast_child = client.submit(
      [&](const int& x) { return std::make_pair(x, slow_done.load()); },
      fast);
  const auto [value, slow_was_done] = fast_child.get();
  EXPECT_EQ(value, 1);
  EXPECT_FALSE(slow_was_done);
  (void)slow.get();
}

TEST(DaskTest, MemoryGuardRetriesThenSucceeds) {
  DaskClient client(
      DaskConfig{.workers = 2, .task_memory_limit = 100,
                 .allowed_failures = 3});
  std::atomic<int> attempts{0};
  auto f = client.submit([&] {
    // First two attempts exceed the limit; third fits.
    if (attempts.fetch_add(1) < 2) client.reserve_memory(1000);
    return 7;
  });
  EXPECT_EQ(f.get(), 7);
  EXPECT_EQ(client.worker_restarts(), 2u);
}

TEST(DaskTest, MemoryGuardExhaustsRetriesAndFails) {
  DaskClient client(
      DaskConfig{.workers = 2, .task_memory_limit = 100,
                 .allowed_failures = 2});
  auto f = client.submit([&] {
    client.reserve_memory(1000);
    return 7;
  });
  EXPECT_THROW(f.get(), engines::TaskMemoryExceeded);
  EXPECT_EQ(client.worker_restarts(), 3u);  // initial + 2 retries
}

TEST(BagTest, FromSequenceComputeRoundTrip) {
  DaskClient client;
  std::vector<int> data(37);
  std::iota(data.begin(), data.end(), 0);
  auto bag = Bag<int>::from_sequence(client, data, 5);
  EXPECT_EQ(bag.partitions(), 5u);
  EXPECT_EQ(bag.compute(), data);
}

TEST(BagTest, MapAndFilter) {
  DaskClient client;
  std::vector<int> data(20);
  std::iota(data.begin(), data.end(), 0);
  auto out = Bag<int>::from_sequence(client, data, 4)
                 .map([](const int& x) { return x * 3; })
                 .filter([](const int& x) { return x % 2 == 0; })
                 .compute();
  for (int x : out) {
    EXPECT_EQ(x % 3, 0);
    EXPECT_EQ(x % 2, 0);
  }
  EXPECT_EQ(out.size(), 10u);
}

TEST(BagTest, FoldTreeReduction) {
  DaskClient client;
  std::vector<int> data(101);
  std::iota(data.begin(), data.end(), 0);
  auto total = Bag<int>::from_sequence(client, data, 7)
                   .fold(0, [](int acc, const int& x) { return acc + x; },
                         [](int a, int b) { return a + b; });
  EXPECT_EQ(total.get(), 100 * 101 / 2);
}

TEST(BagTest, MapPartitionsSeesWholePartition) {
  DaskClient client;
  std::vector<int> data(10);
  auto sizes =
      Bag<int>::from_sequence(client, data, 3)
          .map_partitions([](const std::vector<int>& xs) {
            return std::vector<std::size_t>{xs.size()};
          })
          .compute();
  EXPECT_EQ(sizes.size(), 3u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0u), 10u);
}

TEST(BagTest, EmptyBagFoldReturnsInit) {
  DaskClient client;
  auto total = Bag<int>::from_sequence(client, {}, 3)
                   .fold(100, [](int acc, const int& x) { return acc + x; },
                         [](int a, int b) { return a + b; });
  // Like Dask, fold applies `init` once per partition: 3 empty partition
  // folds each yield 100, and the combine tree sums them.
  EXPECT_EQ(total.get(), 300);
}

TEST(BagTest, TypeChangingMap) {
  DaskClient client;
  auto out = Bag<int>::from_sequence(client, {1, 2, 3}, 2)
                 .map([](const int& x) { return std::to_string(x); })
                 .compute();
  EXPECT_EQ(out, (std::vector<std::string>{"1", "2", "3"}));
}

TEST(BagTest, FrequenciesCountsDistinctValues) {
  DaskClient client;
  std::vector<int> data;
  for (int i = 0; i < 60; ++i) data.push_back(i % 3);
  auto counts =
      Bag<int>::from_sequence(client, data, 7).frequencies().get();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts.at(0), 20u);
  EXPECT_EQ(counts.at(1), 20u);
  EXPECT_EQ(counts.at(2), 20u);
}

TEST(BagTest, FrequenciesOfEmptyBag) {
  DaskClient client;
  auto counts = Bag<int>::from_sequence(client, {}, 3).frequencies().get();
  EXPECT_TRUE(counts.empty());
}

TEST(BagTest, FrequenciesComposesWithMap) {
  DaskClient client;
  std::vector<int> data = {1, 2, 3, 4, 5, 6};
  auto counts = Bag<int>::from_sequence(client, data, 2)
                    .map([](const int& x) { return x % 2; })
                    .frequencies()
                    .get();
  EXPECT_EQ(counts.at(0), 3u);
  EXPECT_EQ(counts.at(1), 3u);
}

}  // namespace
}  // namespace mdtask::dask
