#include "mdtask/engines/dask/array.h"

#include <gtest/gtest.h>

#include <numeric>

namespace mdtask::dask {
namespace {

std::vector<double> iota_matrix(std::size_t rows, std::size_t cols) {
  std::vector<double> m(rows * cols);
  std::iota(m.begin(), m.end(), 0.0);
  return m;
}

TEST(DaskArrayTest, FromMatrixComputeRoundTrip) {
  DaskClient client;
  const auto m = iota_matrix(7, 5);
  auto a = Array<double>::from_matrix(client, m, 7, 5, 3, 2);
  EXPECT_EQ(a.rows(), 7u);
  EXPECT_EQ(a.cols(), 5u);
  EXPECT_EQ(a.grid_rows(), 3u);  // ceil(7/3)
  EXPECT_EQ(a.grid_cols(), 3u);  // ceil(5/2)
  EXPECT_EQ(a.compute(), m);
}

TEST(DaskArrayTest, InvalidConstructionRejected) {
  DaskClient client;
  EXPECT_THROW(Array<double>::from_matrix(client, {1.0}, 1, 1, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(Array<double>::from_matrix(client, {1.0, 2.0}, 3, 3, 1, 1),
               std::invalid_argument);
}

TEST(DaskArrayTest, MapBlocksElementwise) {
  DaskClient client;
  auto a = Array<double>::from_matrix(client, iota_matrix(4, 4), 4, 4, 2, 2);
  auto doubled = a.map_blocks([](const ArrayBlock<double>& block) {
    ArrayBlock<double> out = block;
    for (auto& v : out.data) v *= 2.0;
    return out;
  });
  const auto got = doubled.compute();
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], 2.0 * static_cast<double>(i));
  }
}

TEST(DaskArrayTest, DynamicOutputShapeFailsLikeDask) {
  // Table 1: "Dask Array can not deal with dynamic output shapes".
  DaskClient client;
  auto a = Array<double>::from_matrix(client, iota_matrix(4, 4), 4, 4, 2, 2);
  auto bad = a.map_blocks([](const ArrayBlock<double>& block) {
    ArrayBlock<double> out;  // edge-list-like variable output
    out.rows = 1;
    out.cols = block.data.size() / 2;
    out.data.assign(out.cols, 1.0);
    return out;
  });
  EXPECT_THROW(bad.compute(), ShapeError);
}

TEST(DaskArrayTest, ElementwiseAddAndMultiply) {
  DaskClient client;
  auto a = Array<double>::from_matrix(client, iota_matrix(3, 3), 3, 3, 2, 2);
  auto b = Array<double>::full(client, 3, 3, 2, 2, 10.0);
  const auto sum = (a + b).compute();
  const auto prod = (a * b).compute();
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(sum[i], static_cast<double>(i) + 10.0);
    EXPECT_DOUBLE_EQ(prod[i], static_cast<double>(i) * 10.0);
  }
}

TEST(DaskArrayTest, ElementwiseChunkMismatchRejected) {
  DaskClient client;
  auto a = Array<double>::from_matrix(client, iota_matrix(4, 4), 4, 4, 2, 2);
  auto b = Array<double>::from_matrix(client, iota_matrix(4, 4), 4, 4, 4, 4);
  EXPECT_THROW(a + b, std::invalid_argument);
}

TEST(DaskArrayTest, SumReducesAllElements) {
  DaskClient client;
  auto a = Array<double>::from_matrix(client, iota_matrix(6, 7), 6, 7, 4, 3);
  EXPECT_DOUBLE_EQ(a.sum().get(), 41.0 * 42.0 / 2.0);
}

TEST(DaskArrayTest, MatmulMatchesDense) {
  DaskClient client;
  const std::size_t m = 6, k = 5, n = 4;
  const auto am = iota_matrix(m, k);
  const auto bm = iota_matrix(k, n);
  auto a = Array<double>::from_matrix(client, am, m, k, 2, 2);
  auto b = Array<double>::from_matrix(client, bm, k, n, 2, 3);
  const auto got = a.matmul(b).compute();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double want = 0.0;
      for (std::size_t x = 0; x < k; ++x) want += am[i * k + x] * bm[x * n + j];
      EXPECT_DOUBLE_EQ(got[i * n + j], want) << i << "," << j;
    }
  }
}

TEST(DaskArrayTest, MatmulChunkMisalignmentRejected) {
  DaskClient client;
  auto a = Array<double>::from_matrix(client, iota_matrix(4, 4), 4, 4, 2, 2);
  auto b = Array<double>::from_matrix(client, iota_matrix(4, 4), 4, 4, 3, 2);
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
}

TEST(DaskArrayTest, SingleBlockDegenerateCase) {
  DaskClient client;
  auto a = Array<double>::from_matrix(client, iota_matrix(2, 2), 2, 2, 10,
                                      10);
  EXPECT_EQ(a.block_count(), 1u);
  EXPECT_DOUBLE_EQ(a.sum().get(), 6.0);
}

}  // namespace
}  // namespace mdtask::dask
