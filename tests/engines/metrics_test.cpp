// EngineMetrics::reset() regression test: a reset racing with
// worker-side increments must never deadlock or tear a counter. The
// historical bug used read-modify-write zeroing, which under contention
// could publish torn intermediate values; reset() is now plain relaxed
// stores, and this test hammers the race.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mdtask/engines/core.h"

namespace mdtask::engines {
namespace {

TEST(EngineMetricsTest, ConcurrentIncrementsDuringResetDoNotTearOrDeadlock) {
  EngineMetrics metrics;
  std::atomic<bool> stop{false};

  constexpr int kIncrementers = 4;
  std::vector<std::thread> workers;
  workers.reserve(kIncrementers);
  for (int t = 0; t < kIncrementers; ++t) {
    workers.emplace_back([&metrics, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        metrics.tasks_executed.fetch_add(1, std::memory_order_relaxed);
        metrics.shuffle_bytes.fetch_add(4096, std::memory_order_relaxed);
        metrics.db_roundtrips.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Reset continuously against the increment storm. With store-based
  // zeroing this loop cannot deadlock; the counters only ever hold
  // values some interleaving of increments could legally produce (no
  // torn/garbage values), which the bound below checks.
  for (int i = 0; i < 10000; ++i) {
    metrics.reset();
    const auto tasks = metrics.tasks_executed.load(std::memory_order_relaxed);
    const auto bytes = metrics.shuffle_bytes.load(std::memory_order_relaxed);
    EXPECT_LT(tasks, 1u << 30) << "torn counter value";
    EXPECT_EQ(bytes % 4096, 0u) << "torn shuffle_bytes value";
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();

  // Once quiesced (workers joined), reset gives exact semantics again.
  metrics.reset();
  EXPECT_EQ(metrics.tasks_executed.load(), 0u);
  EXPECT_EQ(metrics.shuffle_bytes.load(), 0u);
  EXPECT_EQ(metrics.db_roundtrips.load(), 0u);
  metrics.tasks_executed.fetch_add(42);
  EXPECT_EQ(metrics.tasks_executed.load(), 42u);
}

TEST(EngineMetricsTest, ResetZeroesEveryCounter) {
  EngineMetrics metrics;
  metrics.tasks_executed = 1;
  metrics.stages_executed = 2;
  metrics.shuffle_bytes = 3;
  metrics.shuffle_records = 4;
  metrics.broadcast_bytes = 5;
  metrics.staged_bytes = 6;
  metrics.db_roundtrips = 7;
  metrics.reset();
  EXPECT_EQ(metrics.tasks_executed.load(), 0u);
  EXPECT_EQ(metrics.stages_executed.load(), 0u);
  EXPECT_EQ(metrics.shuffle_bytes.load(), 0u);
  EXPECT_EQ(metrics.shuffle_records.load(), 0u);
  EXPECT_EQ(metrics.broadcast_bytes.load(), 0u);
  EXPECT_EQ(metrics.staged_bytes.load(), 0u);
  EXPECT_EQ(metrics.db_roundtrips.load(), 0u);
}

}  // namespace
}  // namespace mdtask::engines
