#include "mdtask/engines/spark/spark.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

namespace mdtask::spark {
namespace {

std::vector<int> iota_vec(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(SparkTest, ParallelizeCollectRoundTrip) {
  SparkContext sc;
  auto rdd = sc.parallelize(iota_vec(100), 7);
  EXPECT_EQ(rdd.partitions(), 7u);
  EXPECT_EQ(rdd.collect(), iota_vec(100));
}

TEST(SparkTest, EmptyDataStillHasPartitions) {
  SparkContext sc;
  auto rdd = sc.parallelize(std::vector<int>{}, 4);
  EXPECT_TRUE(rdd.collect().empty());
  EXPECT_EQ(rdd.count(), 0u);
}

TEST(SparkTest, MapTransformsEveryElement) {
  SparkContext sc;
  auto out = sc.parallelize(iota_vec(50), 5)
                 .map([](const int& x) { return x * 2; })
                 .collect();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], 2 * i);
  }
}

TEST(SparkTest, MapChangesType) {
  SparkContext sc;
  auto out = sc.parallelize(std::vector<int>{1, 22, 333}, 2)
                 .map([](const int& x) { return std::to_string(x); })
                 .collect();
  EXPECT_EQ(out, (std::vector<std::string>{"1", "22", "333"}));
}

TEST(SparkTest, FilterKeepsMatching) {
  SparkContext sc;
  auto out = sc.parallelize(iota_vec(20), 3)
                 .filter([](const int& x) { return x % 2 == 0; })
                 .collect();
  EXPECT_EQ(out.size(), 10u);
  for (int x : out) EXPECT_EQ(x % 2, 0);
}

TEST(SparkTest, FlatMapExpands) {
  SparkContext sc;
  auto out = sc.parallelize(std::vector<int>{1, 2, 3}, 2)
                 .flat_map([](const int& x) {
                   return std::vector<int>(static_cast<std::size_t>(x), x);
                 })
                 .collect();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 2, 3, 3, 3}));
}

TEST(SparkTest, MapPartitionsSeesWholePartition) {
  SparkContext sc;
  auto sizes = sc.parallelize(iota_vec(10), 3)
                   .map_partitions([](TaskContext&, std::vector<int>& xs) {
                     return std::vector<std::size_t>{xs.size()};
                   })
                   .collect();
  EXPECT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0] + sizes[1] + sizes[2], 10u);
}

TEST(SparkTest, ReduceSumsAllElements) {
  SparkContext sc;
  const int total = sc.parallelize(iota_vec(101), 8)
                        .reduce([](int a, int b) { return a + b; });
  EXPECT_EQ(total, 100 * 101 / 2);
}

TEST(SparkTest, ChainedNarrowTransformationsFuseIntoOneStage) {
  SparkContext sc;
  auto rdd = sc.parallelize(iota_vec(100), 4)
                 .map([](const int& x) { return x + 1; })
                 .filter([](const int& x) { return x % 3 == 0; })
                 .map([](const int& x) { return x * x; });
  sc.metrics().reset();
  rdd.collect();
  EXPECT_EQ(sc.metrics().stages_executed.load(), 1u);
  EXPECT_EQ(sc.metrics().tasks_executed.load(), 4u);
}

TEST(SparkTest, ReduceByKeyAggregates) {
  SparkContext sc;
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 60; ++i) data.emplace_back(i % 3, 1);
  auto counts = reduce_by_key(
                    sc.parallelize(std::move(data), 6),
                    [](int a, int b) { return a + b; }, 4)
                    .collect();
  ASSERT_EQ(counts.size(), 3u);
  for (auto [k, v] : counts) EXPECT_EQ(v, 20) << "key " << k;
}

TEST(SparkTest, ReduceByKeyCutsStageBoundary) {
  SparkContext sc;
  std::vector<std::pair<int, int>> data = {{0, 1}, {1, 2}, {0, 3}};
  auto rdd = reduce_by_key(sc.parallelize(std::move(data), 2),
                           [](int a, int b) { return a + b; }, 2);
  sc.metrics().reset();
  rdd.collect();
  EXPECT_EQ(sc.metrics().stages_executed.load(), 2u);  // map + reduce
  EXPECT_GT(sc.metrics().shuffle_records.load(), 0u);
  EXPECT_GT(sc.metrics().shuffle_bytes.load(), 0u);
}

TEST(SparkTest, GroupByKeyCollectsAllValues) {
  SparkContext sc;
  std::vector<std::pair<int, int>> data = {{1, 10}, {2, 20}, {1, 30}};
  auto grouped = group_by_key(sc.parallelize(std::move(data), 2), 2)
                     .collect();
  ASSERT_EQ(grouped.size(), 2u);
  for (auto& [k, vs] : grouped) {
    if (k == 1) {
      std::sort(vs.begin(), vs.end());
      EXPECT_EQ(vs, (std::vector<int>{10, 30}));
    } else {
      EXPECT_EQ(vs, (std::vector<int>{20}));
    }
  }
}

TEST(SparkTest, CacheAvoidsRecomputation) {
  SparkContext sc;
  std::atomic<int> evaluations{0};
  auto rdd = sc.parallelize(iota_vec(10), 2).map([&](const int& x) {
    evaluations.fetch_add(1);
    return x;
  });
  rdd.cache();
  rdd.collect();
  const int after_first = evaluations.load();
  rdd.collect();
  EXPECT_EQ(evaluations.load(), after_first);  // second action hits cache
  EXPECT_EQ(after_first, 10);
}

TEST(SparkTest, WithoutCacheRecomputes) {
  SparkContext sc;
  std::atomic<int> evaluations{0};
  auto rdd = sc.parallelize(iota_vec(10), 2).map([&](const int& x) {
    evaluations.fetch_add(1);
    return x;
  });
  rdd.collect();
  rdd.collect();
  EXPECT_EQ(evaluations.load(), 20);
}

TEST(SparkTest, BroadcastValueVisibleInTasks) {
  SparkContext sc(SparkConfig{.executor_threads = 3});
  auto lookup = sc.broadcast(std::vector<int>{100, 200, 300},
                             3 * sizeof(int));
  auto out = sc.parallelize(std::vector<std::size_t>{0, 1, 2}, 3)
                 .map([lookup](const std::size_t& i) { return (*lookup)[i]; })
                 .collect();
  EXPECT_EQ(out, (std::vector<int>{100, 200, 300}));
  EXPECT_EQ(sc.metrics().broadcast_bytes.load(), 3u * sizeof(int) * 3u);
}

TEST(SparkTest, TaskMemoryLimitEnforced) {
  SparkContext sc(SparkConfig{.executor_threads = 2,
                              .task_memory_limit = 1024});
  auto rdd = sc.parallelize(iota_vec(4), 2)
                 .map_partitions([](TaskContext& tc, std::vector<int>& xs) {
                   tc.reserve_memory(1 << 20);  // 1 MiB > 1 KiB limit
                   return xs;
                 });
  EXPECT_THROW(rdd.collect(), engines::TaskMemoryExceeded);
}

TEST(SparkTest, TaskMemoryUnlimitedByDefault) {
  SparkContext sc;
  auto rdd = sc.parallelize(iota_vec(4), 2)
                 .map_partitions([](TaskContext& tc, std::vector<int>& xs) {
                   tc.reserve_memory(1ull << 40);
                   return xs;
                 });
  EXPECT_EQ(rdd.collect().size(), 4u);
}

TEST(SparkTest, CountMatchesCollectSize) {
  SparkContext sc;
  auto rdd = sc.parallelize(iota_vec(37), 5)
                 .filter([](const int& x) { return x > 10; });
  EXPECT_EQ(rdd.count(), 26u);
}

TEST(SparkTest, TwoChainedShufflesRunThreeStages) {
  SparkContext sc;
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 40; ++i) data.emplace_back(i % 4, i);
  auto first = reduce_by_key(sc.parallelize(std::move(data), 4),
                             [](int a, int b) { return a + b; }, 4);
  auto rekeyed = first.map([](const std::pair<int, int>& kv) {
    return std::make_pair(kv.first % 2, kv.second);
  });
  auto second =
      reduce_by_key(rekeyed, [](int a, int b) { return a + b; }, 2);
  sc.metrics().reset();
  auto out = second.collect();
  EXPECT_EQ(sc.metrics().stages_executed.load(), 3u);
  int total = 0;
  for (auto [k, v] : out) total += v;
  EXPECT_EQ(total, 39 * 40 / 2);
}

TEST(SparkTest, UnionConcatenatesLazily) {
  SparkContext sc;
  auto a = sc.parallelize(std::vector<int>{1, 2}, 2);
  auto b = sc.parallelize(std::vector<int>{3, 4, 5}, 3);
  auto u = union_rdd(a, b);
  EXPECT_EQ(u.partitions(), 5u);
  EXPECT_EQ(u.collect(), (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(SparkTest, UnionComposesWithTransformations) {
  SparkContext sc;
  auto a = sc.parallelize(std::vector<int>{1, 2}, 1);
  auto b = sc.parallelize(std::vector<int>{3}, 1);
  auto out = union_rdd(a, b)
                 .map([](const int& x) { return x * x; })
                 .collect();
  EXPECT_EQ(out, (std::vector<int>{1, 4, 9}));
}

TEST(SparkTest, DistinctRemovesDuplicates) {
  SparkContext sc;
  auto out = distinct(
                 sc.parallelize(std::vector<int>{3, 1, 3, 2, 1, 3}, 3), 2)
                 .collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(SparkTest, SampleIsDeterministicAndProportional) {
  SparkContext sc;
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = sc.parallelize(data, 8);
  const auto once = sample_rdd(rdd, 0.3, 42).collect();
  const auto again = sample_rdd(rdd, 0.3, 42).collect();
  EXPECT_EQ(once, again);  // same seed, same sample
  EXPECT_GT(once.size(), 2500u);
  EXPECT_LT(once.size(), 3500u);
  const auto other = sample_rdd(rdd, 0.3, 43).collect();
  EXPECT_NE(once, other);  // different seed, different sample
}

TEST(SparkTest, SampleExtremes) {
  SparkContext sc;
  auto rdd = sc.parallelize(std::vector<int>{1, 2, 3}, 2);
  EXPECT_TRUE(sample_rdd(rdd, 0.0, 1).collect().empty());
  EXPECT_EQ(sample_rdd(rdd, 1.1, 1).collect().size(), 3u);
}

TEST(SparkTest, RepartitionPreservesElements) {
  SparkContext sc;
  auto coarse = sc.parallelize(iota_vec(100), 2);
  auto fine = repartition(coarse, 25);
  EXPECT_EQ(fine.partitions(), 25u);
  auto out = fine.collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, iota_vec(100));
}

TEST(SparkTest, RepartitionIsAShuffle) {
  SparkContext sc;
  auto rdd = repartition(sc.parallelize(iota_vec(40), 4), 8);
  sc.metrics().reset();
  rdd.collect();
  EXPECT_EQ(sc.metrics().stages_executed.load(), 2u);
  EXPECT_EQ(sc.metrics().shuffle_records.load(), 40u);
}

TEST(SparkTest, RepartitionBalancesSkewedInput) {
  SparkContext sc;
  // All data initially in one partition; repartition spreads it evenly.
  auto skewed = sc.parallelize(iota_vec(64), 1);
  auto balanced = repartition(skewed, 8);
  auto sizes =
      balanced
          .map_partitions([](TaskContext&, std::vector<int>& xs) {
            return std::vector<std::size_t>{xs.size()};
          })
          .collect();
  for (std::size_t size : sizes) EXPECT_EQ(size, 8u);
}

TEST(SparkTest, JoinMatchesKeysAcrossSides) {
  SparkContext sc;
  std::vector<std::pair<int, std::string>> names = {
      {1, "ala"}, {2, "gly"}, {3, "ser"}};
  std::vector<std::pair<int, double>> masses = {{1, 71.0}, {3, 87.0},
                                                {4, 99.0}};
  auto out = join(sc.parallelize(std::move(names), 2),
                  sc.parallelize(std::move(masses), 2), 3)
                 .collect();
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  ASSERT_EQ(out.size(), 2u);  // keys 1 and 3 only
  EXPECT_EQ(out[0].first, 1);
  EXPECT_EQ(out[0].second.first, "ala");
  EXPECT_DOUBLE_EQ(out[0].second.second, 71.0);
  EXPECT_EQ(out[1].first, 3);
  EXPECT_EQ(out[1].second.first, "ser");
}

TEST(SparkTest, JoinProducesCrossProductPerKey) {
  SparkContext sc;
  std::vector<std::pair<int, int>> left = {{7, 1}, {7, 2}};
  std::vector<std::pair<int, int>> right = {{7, 10}, {7, 20}, {7, 30}};
  auto out = join(sc.parallelize(std::move(left), 1),
                  sc.parallelize(std::move(right), 1), 2)
                 .collect();
  EXPECT_EQ(out.size(), 6u);  // 2 x 3 combinations
}

TEST(SparkTest, JoinDisjointKeysIsEmpty) {
  SparkContext sc;
  std::vector<std::pair<int, int>> left = {{1, 1}};
  std::vector<std::pair<int, int>> right = {{2, 2}};
  EXPECT_TRUE(join(sc.parallelize(std::move(left), 1),
                   sc.parallelize(std::move(right), 1), 2)
                  .collect()
                  .empty());
}

}  // namespace
}  // namespace mdtask::spark
