#include "mdtask/engines/rp/pilot.h"

#include <gtest/gtest.h>

#include <atomic>

#include "mdtask/common/serial.h"
#include "mdtask/common/timer.h"

namespace mdtask::rp {
namespace {

TEST(SharedFilesystemTest, PutGetRoundTrip) {
  SharedFilesystem fs;
  fs.put("a.bin", {1, 2, 3});
  auto r = fs.get("a.bin");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(fs.bytes_written(), 3u);
  EXPECT_EQ(fs.bytes_read(), 3u);
}

TEST(SharedFilesystemTest, MissingFileIsIoError) {
  SharedFilesystem fs;
  auto r = fs.get("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kIoError);
  EXPECT_FALSE(fs.exists("nope"));
}

TEST(SharedFilesystemTest, OverwriteReplacesContent) {
  SharedFilesystem fs;
  fs.put("f", {1});
  fs.put("f", {2, 3});
  EXPECT_EQ(fs.get("f").value(), (std::vector<std::uint8_t>{2, 3}));
}

TEST(UnitManagerTest, UnitsRunToDone) {
  UnitManager um(PilotDescription{.cores = 4});
  std::atomic<int> ran{0};
  std::vector<ComputeUnitDescription> descriptions;
  for (int i = 0; i < 20; ++i) {
    descriptions.push_back({.name = "cu" + std::to_string(i),
                            .executable =
                                [&ran](SharedFilesystem&) { ran.fetch_add(1); },
                            .input_staging = {},
                            .output_staging = {}});
  }
  auto units = um.submit_units(std::move(descriptions));
  um.wait_units();
  EXPECT_EQ(ran.load(), 20);
  for (const auto& u : units) EXPECT_EQ(u->state(), UnitState::kDone);
}

TEST(UnitManagerTest, EveryUnitPaysDbTransitions) {
  UnitManager um(PilotDescription{.cores = 2});
  auto units = um.submit_units(
      {{.name = "one", .executable = [](SharedFilesystem&) {}}});
  um.wait_units();
  // submit + 5 state transitions (staging-in, sched, exec, staging-out,
  // done) = 6 round trips minimum.
  EXPECT_GE(um.database().roundtrips(), 6u);
  EXPECT_EQ(um.metrics().db_roundtrips.load(),
            um.database().roundtrips());
}

TEST(UnitManagerTest, MissingInputStagingFailsUnit) {
  UnitManager um(PilotDescription{.cores = 1});
  auto units = um.submit_units({{.name = "bad",
                                 .executable = [](SharedFilesystem&) {},
                                 .input_staging = {"missing.bin"}}});
  um.wait_units();
  EXPECT_EQ(units[0]->state(), UnitState::kFailed);
  EXPECT_NE(units[0]->failure_reason().find("missing.bin"),
            std::string::npos);
}

TEST(UnitManagerTest, MissingDeclaredOutputFailsUnit) {
  UnitManager um(PilotDescription{.cores = 1});
  auto units = um.submit_units({{.name = "forgetful",
                                 .executable = [](SharedFilesystem&) {},
                                 .output_staging = {"result.bin"}}});
  um.wait_units();
  EXPECT_EQ(units[0]->state(), UnitState::kFailed);
}

TEST(UnitManagerTest, ThrowingExecutableFailsUnit) {
  UnitManager um(PilotDescription{.cores = 1});
  auto units = um.submit_units(
      {{.name = "thrower", .executable = [](SharedFilesystem&) {
          throw std::runtime_error("kernel exploded");
        }}});
  um.wait_units();
  EXPECT_EQ(units[0]->state(), UnitState::kFailed);
  EXPECT_NE(units[0]->failure_reason().find("kernel exploded"),
            std::string::npos);
}

TEST(UnitManagerTest, StagingFlowsThroughFilesystem) {
  UnitManager um(PilotDescription{.cores = 2});
  um.filesystem().put("input.bin", std::vector<std::uint8_t>(100, 7));
  auto units = um.submit_units(
      {{.name = "worker",
        .executable =
            [](SharedFilesystem& fs) {
              auto in = fs.get("input.bin");
              ASSERT_TRUE(in.ok());
              fs.put("output.bin", in.value());
            },
        .input_staging = {"input.bin"},
        .output_staging = {"output.bin"}}});
  um.wait_units();
  EXPECT_EQ(units[0]->state(), UnitState::kDone);
  EXPECT_GE(um.metrics().staged_bytes.load(), 200u);  // in + out accounted
}

TEST(UnitManagerTest, DbLatencyThrottlesThroughput) {
  // With a 2 ms round trip and ~6 transitions per unit, 20 units on one
  // core must take >= 20 * 6 * 2ms = 240 ms; without latency they fly.
  const auto run_with_latency = [](double latency) {
    UnitManager um(PilotDescription{.cores = 1,
                                    .db_roundtrip_latency_s = latency});
    std::vector<ComputeUnitDescription> descriptions(20);
    for (auto& d : descriptions) {
      d.executable = [](SharedFilesystem&) {};
    }
    WallTimer timer;
    um.submit_units(std::move(descriptions));
    um.wait_units();
    return timer.seconds();
  };
  const double fast = run_with_latency(0.0);
  const double slow = run_with_latency(0.002);
  EXPECT_GT(slow, 0.2);
  EXPECT_LT(fast, slow);
}

TEST(UnitManagerTest, UnitStateNamesAreStable) {
  EXPECT_STREQ(to_string(UnitState::kNew), "NEW");
  EXPECT_STREQ(to_string(UnitState::kDone), "DONE");
  EXPECT_STREQ(to_string(UnitState::kFailed), "FAILED");
}

TEST(UnitManagerTest, ParallelUnitsUseAllCores) {
  UnitManager um(PilotDescription{.cores = 4});
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<ComputeUnitDescription> descriptions(16);
  for (auto& d : descriptions) {
    d.executable = [&](SharedFilesystem&) {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected &&
             !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      concurrent.fetch_sub(1);
    };
  }
  um.submit_units(std::move(descriptions));
  um.wait_units();
  EXPECT_GT(peak.load(), 1);
}

}  // namespace
}  // namespace mdtask::rp
