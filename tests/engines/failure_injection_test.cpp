// Failure-injection tests: the engines must degrade the way the paper's
// systems do — failed tasks surface with causes, latency spikes slow
// but do not wedge, skewed/degenerate workloads stay correct.
#include <gtest/gtest.h>

#include <numeric>

#include "mdtask/common/timer.h"
#include "mdtask/engines/dask/dask.h"
#include "mdtask/engines/mpi/runtime.h"
#include "mdtask/engines/rp/pilot.h"
#include "mdtask/engines/spark/spark.h"
#include "mdtask/trace/tracer.h"

namespace mdtask {
namespace {

TEST(SparkFailureTest, TaskExceptionPropagatesFromAction) {
  spark::SparkContext sc;
  auto rdd = sc.parallelize(std::vector<int>{1, 2, 3, 4}, 4)
                 .map([](const int& x) {
                   if (x == 3) throw std::domain_error("poisoned element");
                   return x;
                 });
  EXPECT_THROW(rdd.collect(), std::domain_error);
}

TEST(SparkFailureTest, SkewedShuffleAllKeysEqualStaysCorrect) {
  spark::SparkContext sc;
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 1000; ++i) data.emplace_back(7, 1);  // one hot key
  auto out = reduce_by_key(sc.parallelize(std::move(data), 16),
                           [](int a, int b) { return a + b; }, 8)
                 .collect();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 7);
  EXPECT_EQ(out[0].second, 1000);
}

TEST(SparkFailureTest, MorePartitionsThanElements) {
  spark::SparkContext sc;
  auto out = sc.parallelize(std::vector<int>{1, 2}, 64)
                 .map([](const int& x) { return x * 10; })
                 .collect();
  EXPECT_EQ(out, (std::vector<int>{10, 20}));
}

TEST(SparkFailureTest, ReduceOnEmptyRddReturnsDefault) {
  spark::SparkContext sc;
  auto rdd = sc.parallelize(std::vector<int>{}, 3);
  EXPECT_EQ(rdd.reduce([](int a, int b) { return a + b; }), 0);
}

TEST(DaskFailureTest, DeepChainDoesNotOverflow) {
  dask::DaskClient client(dask::DaskConfig{.workers = 2});
  auto f = client.submit([] { return 0; });
  for (int i = 0; i < 2000; ++i) {
    f = client.submit([](const int& x) { return x + 1; }, f);
  }
  EXPECT_EQ(f.get(), 2000);
}

TEST(DaskFailureTest, WideFanInAggregates) {
  dask::DaskClient client(dask::DaskConfig{.workers = 4});
  std::vector<dask::Future<int>> leaves;
  for (int i = 0; i < 256; ++i) {
    leaves.push_back(client.submit([i] { return i; }));
  }
  // Pairwise tree to one value.
  while (leaves.size() > 1) {
    std::vector<dask::Future<int>> next;
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
      next.push_back(client.submit(
          [](const int& a, const int& b) { return a + b; }, leaves[i],
          leaves[i + 1]));
    }
    if (leaves.size() % 2 == 1) next.push_back(leaves.back());
    leaves = std::move(next);
  }
  EXPECT_EQ(leaves.front().get(), 255 * 256 / 2);
}

TEST(DaskFailureTest, ErrorInOneBranchDoesNotPoisonSiblings) {
  dask::DaskClient client;
  auto bad = client.submit([]() -> int { throw std::runtime_error("x"); });
  auto good = client.submit([] { return 5; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 5);
}

TEST(RpFailureTest, LatencySpikeSlowsButCompletes) {
  // A "database brownout": high round-trip latency mid-run must not
  // wedge the unit manager; all units still reach DONE.
  rp::UnitManager um(
      rp::PilotDescription{.cores = 4, .db_roundtrip_latency_s = 0.005});
  std::vector<rp::ComputeUnitDescription> descriptions(12);
  for (auto& d : descriptions) d.executable = [](rp::SharedFilesystem&) {};
  auto units = um.submit_units(std::move(descriptions));
  um.wait_units();
  for (const auto& u : units) EXPECT_EQ(u->state(), rp::UnitState::kDone);
  // 12 units x 6 transitions x 5 ms, 4-way agent concurrency: >= 90 ms.
  EXPECT_GE(um.database().roundtrips(), 12u * 6u);
}

TEST(RpFailureTest, MixedSuccessAndFailureUnitsCoexist) {
  rp::UnitManager um(rp::PilotDescription{.cores = 2});
  um.filesystem().put("good_input.bin", {1, 2, 3});
  std::vector<rp::ComputeUnitDescription> descriptions;
  descriptions.push_back({.name = "ok",
                          .executable = [](rp::SharedFilesystem&) {},
                          .input_staging = {"good_input.bin"}});
  descriptions.push_back({.name = "bad_input",
                          .executable = [](rp::SharedFilesystem&) {},
                          .input_staging = {"missing.bin"}});
  descriptions.push_back({.name = "thrower",
                          .executable = [](rp::SharedFilesystem&) {
                            throw std::logic_error("broken kernel");
                          }});
  auto units = um.submit_units(std::move(descriptions));
  um.wait_units();
  EXPECT_EQ(units[0]->state(), rp::UnitState::kDone);
  EXPECT_EQ(units[1]->state(), rp::UnitState::kFailed);
  EXPECT_EQ(units[2]->state(), rp::UnitState::kFailed);
}

TEST(MpiFailureTest, RankExceptionPropagates) {
  // One rank throws after the collective completes, so the other ranks
  // exit cleanly (nobody is left blocked in a collective) and run_spmd
  // rethrows the rank's error after joining everyone.
  EXPECT_THROW(
      mpi::run_spmd(4,
                    [](mpi::Communicator& comm) {
                      std::vector<int> v{comm.rank()};
                      comm.allreduce(v, [](int a, int b) { return a + b; });
                      if (comm.rank() == 1) {
                        throw std::domain_error("rank 1 poisoned");
                      }
                    }),
      std::domain_error);
}

TEST(MpiFailureTest, EmptyBcastAndGatherStayCorrect) {
  auto report = mpi::run_spmd(3, [](mpi::Communicator& comm) {
    // Zero-byte broadcast: every rank ends with an empty vector.
    std::vector<double> payload;
    if (comm.rank() == 0) payload.clear();
    comm.bcast(payload, 0);
    EXPECT_TRUE(payload.empty());
    // Gather of empty contributions: root sees size() empty buffers.
    const std::vector<int> mine;
    auto gathered = comm.gather<int>(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), 3u);
      for (const auto& g : gathered) EXPECT_TRUE(g.empty());
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
  EXPECT_GT(report.total.messages_sent, 0u);
}

TEST(MpiFailureTest, SkewedAllgatherStaysCorrect) {
  // Rank r contributes r elements (maximally skewed contribution sizes,
  // including one empty buffer) — every rank must still reassemble the
  // full picture in rank order.
  mpi::run_spmd(5, [](mpi::Communicator& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()),
                          comm.rank());
    auto all = comm.allgather<int>(mine);
    ASSERT_EQ(all.size(), 5u);
    for (int r = 0; r < 5; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r));
      for (const int x : all[static_cast<std::size_t>(r)]) EXPECT_EQ(x, r);
    }
  });
}

TEST(MpiFailureTest, TracingClosesSpansWhenRankThrows) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  EXPECT_THROW(
      mpi::run_spmd(
          4,
          [](mpi::Communicator& comm) {
            std::vector<int> v{1};
            comm.bcast(v, 0);  // opens and closes a collective span
            if (comm.rank() == 2) throw std::runtime_error("mid-run");
          },
          mpi::BcastAlgorithm::kBinomialTree, &tracer),
      std::runtime_error);
  // The throwing rank's collective and whole-rank spans unwound through
  // RAII: nothing is left open and every rank span was recorded.
  EXPECT_EQ(tracer.open_spans(), 0);
  int rank_spans = 0;
  for (const auto& e : tracer.events()) {
    if (e.name == "rank") ++rank_spans;
  }
  EXPECT_EQ(rank_spans, 4);
}

TEST(SparkFailureTest, TracingClosesSpansWhenTaskThrows) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  {
    spark::SparkContext sc;
    sc.enable_tracing(tracer);
    auto rdd = sc.parallelize(std::vector<int>{1, 2, 3, 4}, 4)
                   .map([](const int& x) {
                     if (x % 2 == 0) throw std::domain_error("boom");
                     return x;
                   });
    EXPECT_THROW(rdd.collect(), std::domain_error);
  }  // context teardown joins the executor pool
  EXPECT_EQ(tracer.open_spans(), 0);
  EXPECT_GT(tracer.event_count(), 0u);
}

TEST(DaskFailureTest, TracingClosesSpansWhenTaskThrows) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  {
    dask::DaskClient client(dask::DaskConfig{.workers = 2});
    client.enable_tracing(tracer);
    auto bad = client.submit([]() -> int { throw std::logic_error("x"); });
    auto good = client.submit([] { return 3; });
    EXPECT_THROW(bad.get(), std::logic_error);
    EXPECT_EQ(good.get(), 3);
  }  // client teardown drains workers
  EXPECT_EQ(tracer.open_spans(), 0);
  int task_spans = 0;
  for (const auto& e : tracer.events()) {
    if (e.name == "task") ++task_spans;
  }
  EXPECT_EQ(task_spans, 2);  // failed task still recorded its span
}

TEST(RpFailureTest, TracingClosesSpansOnUnitFailure) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  rp::UnitManager um(rp::PilotDescription{.cores = 2});
  um.enable_tracing(tracer);
  std::vector<rp::ComputeUnitDescription> descriptions;
  descriptions.push_back({.name = "thrower",
                          .executable = [](rp::SharedFilesystem&) {
                            throw std::logic_error("broken kernel");
                          }});
  descriptions.push_back({.name = "bad_input",
                          .executable = [](rp::SharedFilesystem&) {},
                          .input_staging = {"missing.bin"}});
  descriptions.push_back({.name = "ok",
                          .executable = [](rp::SharedFilesystem&) {}});
  auto units = um.submit_units(std::move(descriptions));
  um.wait_units();
  EXPECT_EQ(units[0]->state(), rp::UnitState::kFailed);
  EXPECT_EQ(units[1]->state(), rp::UnitState::kFailed);
  EXPECT_EQ(units[2]->state(), rp::UnitState::kDone);
  // Failed units unwound through their RAII unit/phase spans, and the
  // failure reason was attached as a span arg.
  EXPECT_EQ(tracer.open_spans(), 0);
  bool saw_error_arg = false;
  for (const auto& e : tracer.events()) {
    for (const auto& [key, value] : e.args) {
      if (key == "error" && !value.empty()) saw_error_arg = true;
    }
  }
  EXPECT_TRUE(saw_error_arg);
}

TEST(RpFailureTest, WaitOnAlreadyTerminalUnitReturnsImmediately) {
  rp::UnitManager um(rp::PilotDescription{.cores = 1});
  auto units = um.submit_units(
      {{.name = "quick", .executable = [](rp::SharedFilesystem&) {}}});
  um.wait_units();
  WallTimer timer;
  EXPECT_EQ(units[0]->wait(), rp::UnitState::kDone);
  EXPECT_LT(timer.seconds(), 0.5);
}

}  // namespace
}  // namespace mdtask
