// Failure-injection tests: the engines must degrade the way the paper's
// systems do — failed tasks surface with causes, latency spikes slow
// but do not wedge, skewed/degenerate workloads stay correct.
#include <gtest/gtest.h>

#include <numeric>

#include "mdtask/common/timer.h"
#include "mdtask/engines/dask/dask.h"
#include "mdtask/engines/rp/pilot.h"
#include "mdtask/engines/spark/spark.h"

namespace mdtask {
namespace {

TEST(SparkFailureTest, TaskExceptionPropagatesFromAction) {
  spark::SparkContext sc;
  auto rdd = sc.parallelize(std::vector<int>{1, 2, 3, 4}, 4)
                 .map([](const int& x) {
                   if (x == 3) throw std::domain_error("poisoned element");
                   return x;
                 });
  EXPECT_THROW(rdd.collect(), std::domain_error);
}

TEST(SparkFailureTest, SkewedShuffleAllKeysEqualStaysCorrect) {
  spark::SparkContext sc;
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 1000; ++i) data.emplace_back(7, 1);  // one hot key
  auto out = reduce_by_key(sc.parallelize(std::move(data), 16),
                           [](int a, int b) { return a + b; }, 8)
                 .collect();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 7);
  EXPECT_EQ(out[0].second, 1000);
}

TEST(SparkFailureTest, MorePartitionsThanElements) {
  spark::SparkContext sc;
  auto out = sc.parallelize(std::vector<int>{1, 2}, 64)
                 .map([](const int& x) { return x * 10; })
                 .collect();
  EXPECT_EQ(out, (std::vector<int>{10, 20}));
}

TEST(SparkFailureTest, ReduceOnEmptyRddReturnsDefault) {
  spark::SparkContext sc;
  auto rdd = sc.parallelize(std::vector<int>{}, 3);
  EXPECT_EQ(rdd.reduce([](int a, int b) { return a + b; }), 0);
}

TEST(DaskFailureTest, DeepChainDoesNotOverflow) {
  dask::DaskClient client(dask::DaskConfig{.workers = 2});
  auto f = client.submit([] { return 0; });
  for (int i = 0; i < 2000; ++i) {
    f = client.submit([](const int& x) { return x + 1; }, f);
  }
  EXPECT_EQ(f.get(), 2000);
}

TEST(DaskFailureTest, WideFanInAggregates) {
  dask::DaskClient client(dask::DaskConfig{.workers = 4});
  std::vector<dask::Future<int>> leaves;
  for (int i = 0; i < 256; ++i) {
    leaves.push_back(client.submit([i] { return i; }));
  }
  // Pairwise tree to one value.
  while (leaves.size() > 1) {
    std::vector<dask::Future<int>> next;
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
      next.push_back(client.submit(
          [](const int& a, const int& b) { return a + b; }, leaves[i],
          leaves[i + 1]));
    }
    if (leaves.size() % 2 == 1) next.push_back(leaves.back());
    leaves = std::move(next);
  }
  EXPECT_EQ(leaves.front().get(), 255 * 256 / 2);
}

TEST(DaskFailureTest, ErrorInOneBranchDoesNotPoisonSiblings) {
  dask::DaskClient client;
  auto bad = client.submit([]() -> int { throw std::runtime_error("x"); });
  auto good = client.submit([] { return 5; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 5);
}

TEST(RpFailureTest, LatencySpikeSlowsButCompletes) {
  // A "database brownout": high round-trip latency mid-run must not
  // wedge the unit manager; all units still reach DONE.
  rp::UnitManager um(
      rp::PilotDescription{.cores = 4, .db_roundtrip_latency_s = 0.005});
  std::vector<rp::ComputeUnitDescription> descriptions(12);
  for (auto& d : descriptions) d.executable = [](rp::SharedFilesystem&) {};
  auto units = um.submit_units(std::move(descriptions));
  um.wait_units();
  for (const auto& u : units) EXPECT_EQ(u->state(), rp::UnitState::kDone);
  // 12 units x 6 transitions x 5 ms, 4-way agent concurrency: >= 90 ms.
  EXPECT_GE(um.database().roundtrips(), 12u * 6u);
}

TEST(RpFailureTest, MixedSuccessAndFailureUnitsCoexist) {
  rp::UnitManager um(rp::PilotDescription{.cores = 2});
  um.filesystem().put("good_input.bin", {1, 2, 3});
  std::vector<rp::ComputeUnitDescription> descriptions;
  descriptions.push_back({.name = "ok",
                          .executable = [](rp::SharedFilesystem&) {},
                          .input_staging = {"good_input.bin"}});
  descriptions.push_back({.name = "bad_input",
                          .executable = [](rp::SharedFilesystem&) {},
                          .input_staging = {"missing.bin"}});
  descriptions.push_back({.name = "thrower",
                          .executable = [](rp::SharedFilesystem&) {
                            throw std::logic_error("broken kernel");
                          }});
  auto units = um.submit_units(std::move(descriptions));
  um.wait_units();
  EXPECT_EQ(units[0]->state(), rp::UnitState::kDone);
  EXPECT_EQ(units[1]->state(), rp::UnitState::kFailed);
  EXPECT_EQ(units[2]->state(), rp::UnitState::kFailed);
}

TEST(RpFailureTest, WaitOnAlreadyTerminalUnitReturnsImmediately) {
  rp::UnitManager um(rp::PilotDescription{.cores = 1});
  auto units = um.submit_units(
      {{.name = "quick", .executable = [](rp::SharedFilesystem&) {}}});
  um.wait_units();
  WallTimer timer;
  EXPECT_EQ(units[0]->wait(), rp::UnitState::kDone);
  EXPECT_LT(timer.seconds(), 0.5);
}

}  // namespace
}  // namespace mdtask
