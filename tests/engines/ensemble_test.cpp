#include "mdtask/engines/rp/ensemble.h"

#include <gtest/gtest.h>

#include <atomic>

#include "mdtask/common/timer.h"

namespace mdtask::rp {
namespace {

EnsembleTask noop_task(const std::string& name) {
  return {name, [](SharedFilesystem&) {}, {}, {}};
}

TEST(EnsembleTest, SinglePipelineRunsAllStages) {
  UnitManager um(PilotDescription{.cores = 4});
  AppManager app(um);
  std::atomic<int> order{0};
  std::atomic<int> stage1_max{-1}, stage2_min{1000};
  Pipeline p;
  p.name = "p0";
  Stage s1{"prepare", {}};
  for (int i = 0; i < 4; ++i) {
    s1.tasks.push_back({"t" + std::to_string(i), [&](SharedFilesystem&) {
                          const int at = order.fetch_add(1);
                          int cur = stage1_max.load();
                          while (at > cur &&
                                 !stage1_max.compare_exchange_weak(cur, at)) {
                          }
                        }});
  }
  Stage s2{"analyze", {}};
  for (int i = 0; i < 3; ++i) {
    s2.tasks.push_back({"a" + std::to_string(i), [&](SharedFilesystem&) {
                          const int at = order.fetch_add(1);
                          int cur = stage2_min.load();
                          while (at < cur &&
                                 !stage2_min.compare_exchange_weak(cur, at)) {
                          }
                        }});
  }
  p.stages = {s1, s2};
  const auto report = app.run({p});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.tasks.size(), 7u);
  // The stage barrier: every stage-1 task finished before any stage-2
  // task started.
  EXPECT_LT(stage1_max.load(), stage2_min.load());
}

TEST(EnsembleTest, FailedStageStopsItsPipelineOnly) {
  UnitManager um(PilotDescription{.cores = 2});
  AppManager app(um);
  std::atomic<bool> p1_stage2_ran{false};
  std::atomic<bool> p2_ran{false};

  Pipeline p1{"broken",
              {Stage{"boom",
                     {{"fails", [](SharedFilesystem&) {
                         throw std::runtime_error("bad task");
                       }}}},
               Stage{"never", {{"skipped", [&](SharedFilesystem&) {
                                  p1_stage2_ran.store(true);
                                }}}}}};
  Pipeline p2{"healthy",
              {Stage{"work", {{"runs", [&](SharedFilesystem&) {
                                 p2_ran.store(true);
                               }}}}}};
  const auto report = app.run({p1, p2});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failed_count(), 1u);
  EXPECT_FALSE(p1_stage2_ran.load());  // pipeline stopped at the failure
  EXPECT_TRUE(p2_ran.load());          // other pipeline unaffected
  // Skipped stage produced no task reports.
  EXPECT_EQ(report.tasks.size(), 2u);
}

TEST(EnsembleTest, PipelinesShareTheFilesystem) {
  UnitManager um(PilotDescription{.cores = 2});
  AppManager app(um);
  Pipeline producer{"producer",
                    {Stage{"write", {{"w", [](SharedFilesystem& fs) {
                                        fs.put("handoff.bin", {42});
                                      }}}}}};
  // Consumer reads what the producer staged; run sequentially by putting
  // both stages in one pipeline to guarantee ordering.
  Pipeline chained{"chained",
                   {Stage{"write", {{"w", [](SharedFilesystem& fs) {
                                       fs.put("x.bin", {1, 2});
                                     }}}},
                    Stage{"read",
                          {EnsembleTask{"r",
                                        [](SharedFilesystem& fs) {
                                          auto data = fs.get("x.bin");
                                          ASSERT_TRUE(data.ok());
                                          ASSERT_EQ(data.value().size(), 2u);
                                        },
                                        {"x.bin"},
                                        {}}}}}};
  const auto report = app.run({producer, chained});
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(um.filesystem().exists("handoff.bin"));
}

TEST(EnsembleTest, ConcurrentPipelinesInterleave) {
  // Two pipelines with one slow task each on a 2-core pilot: pipelines
  // must overlap, i.e. both tasks are in flight at the same time at
  // least once (wall-clock assertions are flaky on loaded hosts, so we
  // detect concurrency directly).
  UnitManager um(PilotDescription{.cores = 2});
  AppManager app(um);
  std::atomic<int> inflight{0};
  std::atomic<int> peak{0};
  auto slow = [&](SharedFilesystem&) {
    const int now = inflight.fetch_add(1) + 1;
    int cur = peak.load();
    while (now > cur && !peak.compare_exchange_weak(cur, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    inflight.fetch_sub(1);
  };
  Pipeline p1{"p1", {Stage{"s", {{"t1", slow}}}}};
  Pipeline p2{"p2", {Stage{"s", {{"t2", slow}}}}};
  const auto report = app.run({p1, p2});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(peak.load(), 2);
}

TEST(EnsembleTest, EmptyRunSucceeds) {
  UnitManager um(PilotDescription{.cores = 1});
  AppManager app(um);
  EXPECT_TRUE(app.run({}).ok());
  EXPECT_TRUE(app.run({Pipeline{"empty", {}}}).ok());
}

TEST(EnsembleTest, ReportNamesAreQualified) {
  UnitManager um(PilotDescription{.cores = 1});
  AppManager app(um);
  const auto report =
      app.run({Pipeline{"pipe", {Stage{"stage", {noop_task("task")}}}}});
  ASSERT_EQ(report.tasks.size(), 1u);
  EXPECT_EQ(report.tasks[0].pipeline, "pipe");
  EXPECT_EQ(report.tasks[0].stage, "stage");
  EXPECT_EQ(report.tasks[0].task, "task");
  EXPECT_EQ(report.tasks[0].state, UnitState::kDone);
}

}  // namespace
}  // namespace mdtask::rp
