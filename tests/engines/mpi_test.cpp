#include "mdtask/engines/mpi/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace mdtask::mpi {
namespace {

TEST(SpmdTest, AllRanksRun) {
  std::atomic<int> ran{0};
  run_spmd(6, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 6);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 6);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 6);
}

TEST(SpmdTest, ZeroRanksThrows) {
  EXPECT_THROW(run_spmd(0, [](Communicator&) {}), std::invalid_argument);
}

TEST(SpmdTest, RankExceptionPropagates) {
  EXPECT_THROW(run_spmd(3,
                        [](Communicator& comm) {
                          if (comm.rank() == 1) {
                            throw std::runtime_error("rank 1 died");
                          }
                        }),
               std::runtime_error);
}

TEST(PointToPointTest, SendRecvRoundTrip) {
  run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> data = {1, 2, 3};
      comm.send<int>(1, 7, data);
    } else {
      EXPECT_EQ(comm.recv<int>(0, 7), (std::vector<int>{1, 2, 3}));
    }
  });
}

TEST(PointToPointTest, TagMatchingIsSelective) {
  run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> a = {1}, b = {2};
      comm.send<int>(1, 10, a);
      comm.send<int>(1, 20, b);
    } else {
      // Receive out of order: tag 20 first.
      EXPECT_EQ(comm.recv<int>(0, 20), (std::vector<int>{2}));
      EXPECT_EQ(comm.recv<int>(0, 10), (std::vector<int>{1}));
    }
  });
}

class BcastTest : public ::testing::TestWithParam<
                      std::tuple<int, BcastAlgorithm, int>> {};

TEST_P(BcastTest, AllRanksReceivePayload) {
  const auto [ranks, algo, root] = GetParam();
  if (root >= ranks) GTEST_SKIP();
  run_spmd(
      ranks,
      [&, root = root](Communicator& comm) {
        std::vector<double> data;
        if (comm.rank() == root) {
          data = {3.14, 2.71, 1.41, static_cast<double>(root)};
        }
        comm.bcast(data, root);
        ASSERT_EQ(data.size(), 4u);
        EXPECT_EQ(data[3], static_cast<double>(root));
      },
      algo);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BcastTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16),
                       ::testing::Values(BcastAlgorithm::kLinear,
                                         BcastAlgorithm::kBinomialTree),
                       ::testing::Values(0, 2)));

TEST(BcastTest, TreeUsesFewerRootSendsThanLinear) {
  auto root_sends = [](BcastAlgorithm algo) {
    auto report = run_spmd(
        16,
        [](Communicator& comm) {
          std::vector<int> data(100);
          comm.bcast(data, 0);
        },
        algo);
    return report.rank_stats[0].messages_sent;
  };
  // Linear: root sends to 15 peers; tree: root sends to log2(16) = 4.
  EXPECT_GT(root_sends(BcastAlgorithm::kLinear),
            2 * root_sends(BcastAlgorithm::kBinomialTree));
}

TEST(GatherTest, RootCollectsInRankOrder) {
  run_spmd(4, [](Communicator& comm) {
    std::vector<int> mine = {comm.rank() * 10, comm.rank() * 10 + 1};
    auto all = comm.gather<int>(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)],
                  (std::vector<int>{r * 10, r * 10 + 1}));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(GatherTest, VariableLengthContributions) {
  run_spmd(3, [](Communicator& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()),
                          comm.rank());
    auto all = comm.gather<int>(mine, 2);
    if (comm.rank() == 2) {
      EXPECT_TRUE(all[0].empty());
      EXPECT_EQ(all[1].size(), 1u);
      EXPECT_EQ(all[2].size(), 2u);
    }
  });
}

TEST(ScatterTest, EachRankGetsItsPart) {
  run_spmd(3, [](Communicator& comm) {
    std::vector<std::vector<int>> parts;
    if (comm.rank() == 0) {
      parts = {{0}, {1, 1}, {2, 2, 2}};
    }
    auto mine = comm.scatter<int>(parts, 0);
    EXPECT_EQ(mine.size(), static_cast<std::size_t>(comm.rank()) + 1);
    for (int x : mine) EXPECT_EQ(x, comm.rank());
  });
}

TEST(ReduceTest, ElementwiseSum) {
  run_spmd(5, [](Communicator& comm) {
    std::vector<int> mine = {comm.rank(), 1};
    auto total = comm.reduce(mine, 0, [](int a, int b) { return a + b; });
    if (comm.rank() == 0) {
      EXPECT_EQ(total, (std::vector<int>{0 + 1 + 2 + 3 + 4, 5}));
    } else {
      EXPECT_TRUE(total.empty());
    }
  });
}

TEST(AllreduceTest, EveryRankGetsTheResult) {
  run_spmd(4, [](Communicator& comm) {
    std::vector<double> mine = {static_cast<double>(comm.rank() + 1)};
    auto prod =
        comm.allreduce(mine, [](double a, double b) { return a * b; });
    ASSERT_EQ(prod.size(), 1u);
    EXPECT_DOUBLE_EQ(prod[0], 24.0);  // 1*2*3*4
  });
}

class AlltoallTest : public ::testing::TestWithParam<int> {};

TEST_P(AlltoallTest, PersonalizedExchange) {
  const int ranks = GetParam();
  run_spmd(ranks, [ranks](Communicator& comm) {
    std::vector<std::vector<int>> outgoing(
        static_cast<std::size_t>(ranks));
    for (int dest = 0; dest < ranks; ++dest) {
      outgoing[static_cast<std::size_t>(dest)] = {comm.rank() * 100 + dest};
    }
    auto incoming = comm.alltoall(outgoing);
    ASSERT_EQ(incoming.size(), static_cast<std::size_t>(ranks));
    for (int src = 0; src < ranks; ++src) {
      EXPECT_EQ(incoming[static_cast<std::size_t>(src)],
                (std::vector<int>{src * 100 + comm.rank()}));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, AlltoallTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(BarrierTest, RepeatedBarriersStayInLockstep) {
  std::atomic<int> phase_counter{0};
  run_spmd(4, [&](Communicator& comm) {
    for (int phase = 0; phase < 10; ++phase) {
      phase_counter.fetch_add(1);
      comm.barrier();
      // After the barrier, all 4 increments of this phase are visible.
      EXPECT_GE(phase_counter.load(), 4 * (phase + 1));
      comm.barrier();
    }
  });
  EXPECT_EQ(phase_counter.load(), 40);
}

TEST(StatsTest, ReportAccountsTraffic) {
  auto report = run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<std::uint8_t> payload(1000, 1);
      comm.send_bytes(1, 0, payload);
    } else {
      comm.recv_bytes(0, 0);
    }
  });
  EXPECT_EQ(report.rank_stats[0].bytes_sent, 1000u);
  EXPECT_EQ(report.rank_stats[1].bytes_received, 1000u);
  EXPECT_EQ(report.total.messages_sent, 1u);
  EXPECT_EQ(report.total.bytes_sent, report.total.bytes_received);
}

TEST(StatsTest, LinearBcastBytesGrowWithRanks) {
  auto total_bytes = [](int ranks) {
    auto report = run_spmd(
        ranks,
        [](Communicator& comm) {
          std::vector<std::uint8_t> data(10000);
          comm.bcast(data, 0);
        },
        BcastAlgorithm::kLinear);
    return report.rank_stats[0].bytes_sent;
  };
  // Root send volume scales ~linearly with P (Fig. 8's MPI behaviour).
  EXPECT_GT(total_bytes(8), 3 * total_bytes(2));
}

TEST(NonblockingTest, IrecvOverlapsWork) {
  run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.isend<int>(1, 5, std::vector<int>{9, 8, 7});
    } else {
      auto request = comm.irecv<int>(0, 5);
      // Do "work" while the message is (already or soon) in flight.
      int acc = 0;
      for (int i = 0; i < 1000; ++i) acc += i;
      EXPECT_EQ(acc, 499500);
      EXPECT_EQ(request.wait(), (std::vector<int>{9, 8, 7}));
    }
  });
}

TEST(NonblockingTest, TestPollsWithoutBlocking) {
  run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      auto request = comm.irecv<int>(0, 6);
      // Nothing sent yet on tag 6 until after the barrier.
      EXPECT_FALSE(request.test());
      comm.barrier();
      // Sender has now delivered; poll until it lands.
      while (!request.test()) {
      }
      EXPECT_EQ(request.wait(), (std::vector<int>{42}));
    } else {
      comm.barrier();
      comm.isend<int>(1, 6, std::vector<int>{42});
    }
  });
}

TEST(AllgatherTest, EveryRankSeesAllContributions) {
  run_spmd(4, [](Communicator& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1,
                          comm.rank());
    auto all = comm.allgather<int>(mine);
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r) + 1);
      for (int v : all[static_cast<std::size_t>(r)]) EXPECT_EQ(v, r);
    }
  });
}

TEST(AllgatherTest, SingleRankIdentity) {
  run_spmd(1, [](Communicator& comm) {
    const std::vector<double> mine = {1.5, 2.5};
    auto all = comm.allgather<double>(mine);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0], mine);
  });
}

}  // namespace
}  // namespace mdtask::mpi
