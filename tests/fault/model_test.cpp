// mdtask::fault vocabulary: specs, rates, retry policy, the recovery
// log and the checkpoint store.
#include <gtest/gtest.h>

#include "mdtask/fault/fault.h"
#include "mdtask/fault/recovery.h"
#include "mdtask/trace/tracer.h"

namespace mdtask::fault {
namespace {

TEST(FaultSpecTest, ExplicitEntryFiresOnlyOnItsTaskAndAttempt) {
  const FaultSpec spec{FaultKind::kNodeCrash, 7, 1};
  EXPECT_TRUE(spec.fires_for(7, 1));
  EXPECT_FALSE(spec.fires_for(7, 0));
  EXPECT_FALSE(spec.fires_for(8, 1));
}

TEST(FaultSpecTest, WildcardsWidenTheBlastRadius) {
  const FaultSpec every_task{FaultKind::kWorkerOomKill, FaultSpec::kEveryTask,
                            0};
  EXPECT_TRUE(every_task.fires_for(0, 0));
  EXPECT_TRUE(every_task.fires_for(12345, 0));
  EXPECT_FALSE(every_task.fires_for(0, 1));

  const FaultSpec every_attempt{FaultKind::kWorkerOomKill, 3,
                               FaultSpec::kEveryAttempt};
  EXPECT_TRUE(every_attempt.fires_for(3, 0));
  EXPECT_TRUE(every_attempt.fires_for(3, 99));
  EXPECT_FALSE(every_attempt.fires_for(4, 0));
}

TEST(FaultSpecTest, NoneKindNeverFires) {
  const FaultSpec none;
  EXPECT_FALSE(none.fires_for(0, 0));
}

TEST(FaultPlanTest, EmptyMeansNoScheduleAndNoRates) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.rates.straggler = 0.1;
  EXPECT_FALSE(plan.empty());
  plan.rates.straggler = 0.0;
  plan.schedule.push_back({FaultKind::kNodeCrash, 0, 0});
  EXPECT_FALSE(plan.empty());
}

TEST(RetryPolicyTest, BackoffGrowsExponentially) {
  const RetryPolicy policy{.max_attempts = 5,
                           .backoff_s = 0.5,
                           .backoff_multiplier = 2.0};
  EXPECT_DOUBLE_EQ(backoff_for_attempt(policy, 1), 0.5);
  EXPECT_DOUBLE_EQ(backoff_for_attempt(policy, 2), 1.0);
  EXPECT_DOUBLE_EQ(backoff_for_attempt(policy, 3), 2.0);
}

TEST(RetryPolicyTest, ZeroBackoffStaysZero) {
  const RetryPolicy policy;  // backoff_s = 0
  EXPECT_DOUBLE_EQ(backoff_for_attempt(policy, 1), 0.0);
  EXPECT_DOUBLE_EQ(backoff_for_attempt(policy, 4), 0.0);
}

TEST(FaultToStringTest, AllKindsAndEnginesNamed) {
  EXPECT_STREQ(to_string(FaultKind::kNone), "none");
  EXPECT_STREQ(to_string(FaultKind::kNodeCrash), "node-crash");
  EXPECT_STREQ(to_string(FaultKind::kWorkerOomKill), "worker-oom-kill");
  EXPECT_STREQ(to_string(FaultKind::kStraggler), "straggler");
  EXPECT_STREQ(to_string(FaultKind::kNetworkPartition), "network-partition");
  EXPECT_STREQ(to_string(FaultKind::kFilesystemStall), "filesystem-stall");
  EXPECT_STREQ(to_string(EngineId::kSpark), "spark");
  EXPECT_STREQ(to_string(EngineId::kDask), "dask");
  EXPECT_STREQ(to_string(EngineId::kRp), "rp");
  EXPECT_STREQ(to_string(EngineId::kMpi), "mpi");
}

TEST(InjectedFaultTest, CarriesKindTaskAndAttempt) {
  const InjectedFault f(FaultKind::kNetworkPartition, 42, 2);
  EXPECT_EQ(f.kind(), FaultKind::kNetworkPartition);
  EXPECT_EQ(f.task_id(), 42u);
  EXPECT_EQ(f.attempt(), 2);
  EXPECT_NE(std::string(f.what()).find("network-partition"),
            std::string::npos);
}

TEST(RecoveryLogTest, RecordsAndRendersEvents) {
  RecoveryLog log;
  log.record({EngineId::kSpark, 12, 0, FaultKind::kWorkerOomKill,
              RecoveryAction::kReexecuteLineage, 0.0, 0.0});
  ASSERT_EQ(log.size(), 1u);
  const auto events = log.events();
  EXPECT_EQ(events[0].task_id, 12u);
  EXPECT_EQ(
      events[0].to_string(),
      "spark task=12 attempt=0 fault=worker-oom-kill "
      "action=reexecute-lineage");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(RecoveryLogTest, CanonicalOrderIsInterleavingIndependent) {
  RecoveryLog a;
  RecoveryLog b;
  const RecoveryEvent e1{EngineId::kDask, 1, 0, FaultKind::kNodeCrash,
                         RecoveryAction::kRestartWorker, 0.0, 0.0};
  const RecoveryEvent e2{EngineId::kDask, 2, 0, FaultKind::kStraggler,
                         RecoveryAction::kSpeculativeCopy, 0.0, 5.0};
  a.record(e1);
  a.record(e2);
  b.record(e2);  // reversed arrival order (a different thread schedule)
  b.record(e1);
  EXPECT_EQ(a.canonical(), b.canonical());
}

TEST(RecoveryLogTest, MirrorsEventsIntoTracer) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  const trace::Track track =
      tracer.thread(tracer.process("fault-test"), "log");
  RecoveryLog log;
  log.attach_tracer(&tracer, track);
  log.record({EngineId::kRp, 3, 1, FaultKind::kFilesystemStall,
              RecoveryAction::kRetryWithBackoff, 0.25, 100.0});
  bool saw_fault = false;
  bool saw_recovery = false;
  for (const auto& e : tracer.events()) {
    if (e.name == "fault:filesystem-stall") saw_fault = true;
    if (e.name == "recovery:retry-with-backoff") saw_recovery = true;
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_recovery);
}

TEST(RecoveryLogTest, ExchangeRecordsRenderEngineFree) {
  RecoveryLog log;
  log.record_exchange({2, 1, 2, 3, 0, true, 125.0});
  ASSERT_EQ(log.exchange_size(), 1u);
  const auto events = log.exchange_events();
  // No engine, no timestamp in the rendering: the canonical exchange
  // stream must be byte-identical across engines and live-vs-DES.
  EXPECT_EQ(events[0].to_string(),
            "repex round=2 pair=1/2 configs=3/0 accept=1");
  log.clear();
  EXPECT_EQ(log.exchange_size(), 0u);
}

TEST(RecoveryLogTest, CanonicalInterleavesExchangeAndRecoveryLines) {
  RecoveryLog a;
  RecoveryLog b;
  const RecoveryEvent e{EngineId::kMpi, 1, 0, FaultKind::kNodeCrash,
                        RecoveryAction::kCheckpointRestart, 0.0, 0.0};
  a.record(e);
  a.record_exchange({0, 0, 1, 0, 1, false, 1.0});
  b.record_exchange({0, 0, 1, 0, 1, false, 99.0});  // ts differs: ignored
  b.record(e);
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.canonical().size(), 2u);
}

TEST(RecoveryLogTest, ExchangeRecordsMirrorIntoTracer) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  RecoveryLog log;
  log.attach_tracer(&tracer,
                    tracer.thread(tracer.process("fault-test"), "log"));
  log.record_exchange({0, 0, 1, 0, 1, true, 10.0});
  bool saw = false;
  for (const auto& e : tracer.events()) {
    if (e.name == "repex:exchange") saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(CheckpointStoreTest, PutGetContains) {
  CheckpointStore store;
  EXPECT_FALSE(store.contains("phase1"));
  EXPECT_EQ(store.size(), 0u);
  store.put("phase1", {1, 2, 3});
  EXPECT_TRUE(store.contains("phase1"));
  EXPECT_EQ(store.get("phase1"), (std::vector<std::uint8_t>{1, 2, 3}));
  store.put("phase1", {9});  // overwrite, like a newer checkpoint
  EXPECT_EQ(store.get("phase1"), (std::vector<std::uint8_t>{9}));
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace mdtask::fault
