// The injector's determinism contract: decisions are a pure function of
// (plan seed, engine scope, task id, attempt), schedule entries beat
// probabilistic draws, and rates land near their nominal frequencies.
#include <gtest/gtest.h>

#include "mdtask/fault/injector.h"
#include "mdtask/fault/recovery.h"

namespace mdtask::fault {
namespace {

TEST(FaultInjectorTest, EmptyPlanNeverFires) {
  const FaultPlan plan;
  const FaultInjector injector(plan, EngineId::kSpark);
  for (std::uint64_t t = 0; t < 100; ++t) {
    EXPECT_EQ(injector.decide(t, 0).kind, FaultKind::kNone);
  }
}

TEST(FaultInjectorTest, ScheduleEntryWinsOverRates) {
  FaultPlan plan;
  plan.rates.straggler = 1.0;  // every draw would straggle...
  plan.schedule.push_back({FaultKind::kNodeCrash, 5, 0});
  const FaultInjector injector(plan, EngineId::kDask);
  // ...but the explicit entry decides task 5.
  EXPECT_EQ(injector.decide(5, 0).kind, FaultKind::kNodeCrash);
  EXPECT_EQ(injector.decide(6, 0).kind, FaultKind::kStraggler);
}

TEST(FaultInjectorTest, FirstMatchingScheduleEntryIsReturned) {
  FaultPlan plan;
  plan.schedule.push_back({FaultKind::kFilesystemStall, 1, 0, 1.0, 0.5});
  plan.schedule.push_back({FaultKind::kNodeCrash, 1, 0});
  const FaultInjector injector(plan, EngineId::kRp);
  const FaultSpec spec = injector.decide(1, 0);
  EXPECT_EQ(spec.kind, FaultKind::kFilesystemStall);
  EXPECT_DOUBLE_EQ(spec.delay_s, 0.5);
}

TEST(FaultInjectorTest, DecisionsArePureAcrossInstancesAndCallOrder) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.rates.node_crash = 0.05;
  plan.rates.worker_oom = 0.10;
  plan.rates.straggler = 0.20;
  const FaultInjector a(plan, EngineId::kSpark);
  const FaultInjector b(plan, EngineId::kSpark);
  // Evaluate in opposite orders: verdicts must agree pairwise (no hidden
  // stream state — this is what makes thread interleavings irrelevant).
  std::vector<FaultKind> forward;
  std::vector<FaultKind> backward(1000);
  for (std::uint64_t t = 0; t < 1000; ++t) {
    forward.push_back(a.decide(t, 0).kind);
  }
  for (std::uint64_t t = 1000; t-- > 0;) {
    backward[t] = b.decide(t, 0).kind;
  }
  EXPECT_EQ(forward, backward);
}

TEST(FaultInjectorTest, DifferentSeedsGiveDifferentSchedules) {
  FaultPlan p1;
  p1.seed = 1;
  p1.rates.worker_oom = 0.2;
  FaultPlan p2 = p1;
  p2.seed = 2;
  const FaultInjector a(p1, EngineId::kDask);
  const FaultInjector b(p2, EngineId::kDask);
  int disagreements = 0;
  for (std::uint64_t t = 0; t < 500; ++t) {
    if (a.decide(t, 0).kind != b.decide(t, 0).kind) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultInjectorTest, EngineScopesAreIndependentStreams) {
  FaultPlan plan;
  plan.rates.straggler = 0.3;
  const FaultInjector spark(plan, EngineId::kSpark);
  const FaultInjector mpi(plan, EngineId::kMpi);
  int disagreements = 0;
  for (std::uint64_t t = 0; t < 500; ++t) {
    if (spark.decide(t, 0).kind != mpi.decide(t, 0).kind) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultInjectorTest, RatesLandNearNominalFrequency) {
  FaultPlan plan;
  plan.seed = 7;
  plan.rates.worker_oom = 0.10;
  const FaultInjector injector(plan, EngineId::kRp);
  int fires = 0;
  const int n = 10000;
  for (int t = 0; t < n; ++t) {
    if (injector.decide(static_cast<std::uint64_t>(t), 0).kind ==
        FaultKind::kWorkerOomKill) {
      ++fires;
    }
  }
  // 10% +- generous tolerance for 10k draws.
  EXPECT_GT(fires, n / 20);
  EXPECT_LT(fires, n / 5);
}

TEST(FaultInjectorTest, StragglerDrawCarriesConfiguredFactor) {
  FaultPlan plan;
  plan.rates.straggler = 1.0;
  plan.rates.straggler_factor = 6.0;
  const FaultInjector injector(plan, EngineId::kSpark);
  const FaultSpec spec = injector.decide(0, 0);
  ASSERT_EQ(spec.kind, FaultKind::kStraggler);
  EXPECT_DOUBLE_EQ(spec.factor, 6.0);
}

TEST(RecoveryActionTest, PerEnginePolicies) {
  const RetryPolicy policy{.max_attempts = 3};
  EXPECT_EQ(recovery_action(EngineId::kSpark, FaultKind::kNodeCrash, 0,
                            policy),
            RecoveryAction::kReexecuteLineage);
  EXPECT_EQ(recovery_action(EngineId::kDask, FaultKind::kWorkerOomKill, 0,
                            policy),
            RecoveryAction::kRestartWorker);
  EXPECT_EQ(recovery_action(EngineId::kDask, FaultKind::kFilesystemStall, 0,
                            policy),
            RecoveryAction::kRetryWithBackoff);
  EXPECT_EQ(recovery_action(EngineId::kRp, FaultKind::kNetworkPartition, 0,
                            policy),
            RecoveryAction::kRetryWithBackoff);
  EXPECT_EQ(
      recovery_action(EngineId::kMpi, FaultKind::kNodeCrash, 0, policy),
      RecoveryAction::kCheckpointRestart);
}

TEST(RecoveryActionTest, BudgetExhaustionGivesUpOnEveryEngine) {
  const RetryPolicy policy{.max_attempts = 2};
  for (auto engine : {EngineId::kSpark, EngineId::kDask, EngineId::kRp,
                      EngineId::kMpi}) {
    // Attempt 1 failing would need attempt 2 — outside a 2-try budget.
    EXPECT_EQ(recovery_action(engine, FaultKind::kNodeCrash, 1, policy),
              RecoveryAction::kGiveUp);
  }
}

}  // namespace
}  // namespace mdtask::fault
