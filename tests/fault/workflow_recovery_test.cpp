// Workflow-level fault recovery: a FaultPlan handed to the PSA and
// Leaflet runners is injected into the chosen engine and recovered by
// its native policy — with results byte-identical to a fault-free run.
#include <gtest/gtest.h>

#include "mdtask/traj/generators.h"
#include "mdtask/workflows/leaflet_runner.h"
#include "mdtask/workflows/psa_runner.h"

namespace mdtask::workflows {
namespace {

std::string engine_id(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMpi: return "MPI";
    case EngineKind::kSpark: return "Spark";
    case EngineKind::kDask: return "Dask";
    case EngineKind::kRp: return "RP";
  }
  return "Unknown";
}

traj::Ensemble tiny_ensemble(std::size_t count = 5) {
  traj::ProteinTrajectoryParams p;
  p.atoms = 8;
  p.frames = 6;
  return traj::make_protein_ensemble(count, p);
}

/// Two-leaflet membrane stand-in: well-separated parallel planes.
std::vector<traj::Vec3> two_planes(std::size_t per_plane = 64) {
  std::vector<traj::Vec3> atoms;
  for (std::size_t i = 0; i < per_plane; ++i) {
    const float x = static_cast<float>(i % 8);
    const float y = static_cast<float>(i / 8);
    atoms.push_back({x, y, 0.0f});
    atoms.push_back({x, y, 50.0f});
  }
  return atoms;
}

class WorkflowFaultTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(WorkflowFaultTest, PsaMatrixIdenticalUnderInjectedFaults) {
  const auto ensemble = tiny_ensemble();
  PsaRunConfig clean;
  clean.workers = 3;
  const auto reference = run_psa(GetParam(), ensemble, clean);

  for (fault::FaultKind kind :
       {fault::FaultKind::kNodeCrash, fault::FaultKind::kWorkerOomKill,
        fault::FaultKind::kNetworkPartition}) {
    fault::FaultPlan plan;
    // Every task faults once on its first attempt.  (Task ids are
    // engine-specific — Spark numbers stages from 1, so a literal task 0
    // would never match there.)
    plan.schedule.push_back({kind, fault::FaultSpec::kEveryTask, 0});
    fault::RecoveryLog log;
    PsaRunConfig faulted = clean;
    faulted.fault_plan = &plan;
    faulted.recovery_log = &log;
    const auto result = run_psa(GetParam(), ensemble, faulted);
    EXPECT_EQ(result.matrix.max_abs_diff(reference.matrix), 0.0)
        << engine_id(GetParam()) << " kind=" << fault::to_string(kind);
    EXPECT_GT(log.size(), 0u);
  }
}

TEST_P(WorkflowFaultTest, LeafletResultIdenticalUnderInjectedFaults) {
  const auto atoms = two_planes();
  LfRunConfig clean;
  clean.workers = 3;
  clean.target_tasks = 9;
  const auto reference =
      run_leaflet_finder(GetParam(), 3, atoms, 2.0, clean);
  ASSERT_TRUE(reference.ok());

  fault::FaultPlan plan;
  plan.schedule.push_back(
      {fault::FaultKind::kWorkerOomKill, fault::FaultSpec::kEveryTask, 0});
  fault::RecoveryLog log;
  LfRunConfig faulted = clean;
  faulted.fault_plan = &plan;
  faulted.recovery_log = &log;
  const auto result = run_leaflet_finder(GetParam(), 3, atoms, 2.0, faulted);
  ASSERT_TRUE(result.ok()) << engine_id(GetParam());
  EXPECT_EQ(result.value().leaflets.component_count,
            reference.value().leaflets.component_count);
  EXPECT_EQ(result.value().leaflets.leaflet_a_size,
            reference.value().leaflets.leaflet_a_size);
  EXPECT_EQ(result.value().leaflets.leaflet_b_size,
            reference.value().leaflets.leaflet_b_size);
  EXPECT_EQ(result.value().leaflets.unassigned,
            reference.value().leaflets.unassigned);
  EXPECT_GT(log.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Engines, WorkflowFaultTest,
                         ::testing::Values(EngineKind::kMpi,
                                           EngineKind::kSpark,
                                           EngineKind::kDask,
                                           EngineKind::kRp),
                         [](const auto& param_info) {
                           return engine_id(param_info.param);
                         });

TEST(WorkflowFaultTest, MpiGiveUpReturnsStructuredError) {
  const auto atoms = two_planes(16);
  fault::FaultPlan plan;
  plan.schedule.push_back({fault::FaultKind::kNodeCrash, 0,
                           fault::FaultSpec::kEveryAttempt});
  plan.retry.max_attempts = 2;
  LfRunConfig config;
  config.workers = 2;
  config.target_tasks = 4;
  config.fault_plan = &plan;
  const auto result =
      run_leaflet_finder(EngineKind::kMpi, 3, atoms, 2.0, config);
  ASSERT_FALSE(result.ok());
  ASSERT_TRUE(result.error().task().has_value());
  EXPECT_EQ(result.error().task()->engine, "mpi");
  EXPECT_EQ(result.error().task()->fault_kind, "node-crash");
}

}  // namespace
}  // namespace mdtask::workflows
