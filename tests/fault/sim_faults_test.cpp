// resolve_plan (the feasibility oracle behind the Fig. 7 failure cells)
// and simulate_task_wave (the virtual-time replay with recovery).
#include <gtest/gtest.h>

#include "mdtask/fault/sim_faults.h"

namespace mdtask::fault {
namespace {

TEST(ResolvePlanTest, EmptyPlanSurvivesWithNoFaults) {
  const PlanResolution res = resolve_plan(FaultPlan{}, EngineId::kSpark);
  EXPECT_TRUE(res.survives);
  EXPECT_EQ(res.faults_injected, 0u);
  EXPECT_EQ(res.retries, 0u);
}

TEST(ResolvePlanTest, FirstAttemptFaultIsOutRetried) {
  FaultPlan plan;
  plan.schedule.push_back({FaultKind::kWorkerOomKill, 0, 0});
  const PlanResolution res = resolve_plan(plan, EngineId::kSpark);
  EXPECT_TRUE(res.survives);
  EXPECT_EQ(res.faults_injected, 1u);
  EXPECT_EQ(res.retries, 1u);
}

TEST(ResolvePlanTest, EveryAttemptFaultIsFatal) {
  // Physics: an oversized cdist block is just as oversized on retry.
  FaultPlan plan;
  plan.schedule.push_back({FaultKind::kWorkerOomKill, FaultSpec::kEveryTask,
                           FaultSpec::kEveryAttempt});
  for (auto engine : {EngineId::kSpark, EngineId::kDask, EngineId::kRp,
                      EngineId::kMpi}) {
    const PlanResolution res = resolve_plan(plan, engine);
    EXPECT_FALSE(res.survives);
    EXPECT_EQ(res.fatal_fault, FaultKind::kWorkerOomKill);
  }
}

TEST(ResolvePlanTest, BudgetBoundsTheRecovery) {
  // Faults on attempts 0 and 1 survive a 3-try budget but not a 2-try.
  FaultPlan plan;
  plan.schedule.push_back({FaultKind::kNetworkPartition, 4, 0});
  plan.schedule.push_back({FaultKind::kNetworkPartition, 4, 1});
  plan.retry.max_attempts = 3;
  EXPECT_TRUE(resolve_plan(plan, EngineId::kRp).survives);
  plan.retry.max_attempts = 2;
  const PlanResolution res = resolve_plan(plan, EngineId::kRp);
  EXPECT_FALSE(res.survives);
  EXPECT_EQ(res.fatal_fault, FaultKind::kNetworkPartition);
}

TEST(ResolvePlanTest, RecordsDecisionsIntoLog) {
  FaultPlan plan;
  plan.schedule.push_back({FaultKind::kNodeCrash, 2, 0});
  RecoveryLog log;
  resolve_plan(plan, EngineId::kDask, &log);
  ASSERT_GE(log.size(), 1u);
  const auto events = log.events();
  EXPECT_EQ(events[0].task_id, 2u);
  EXPECT_EQ(events[0].fault, FaultKind::kNodeCrash);
  EXPECT_EQ(events[0].action, RecoveryAction::kRestartWorker);
}

TEST(SimulateTaskWaveTest, FaultFreeWaveMatchesIdealMakespan) {
  // 8 x 1 s tasks on 4 cores: two full waves.
  const SimFaultOutcome out = simulate_task_wave(
      4, std::vector<double>(8, 1.0), FaultPlan{}, EngineId::kSpark);
  EXPECT_TRUE(out.completed);
  EXPECT_DOUBLE_EQ(out.makespan_s, 2.0);
  EXPECT_EQ(out.faults_injected, 0u);
}

TEST(SimulateTaskWaveTest, StragglerStretchesTheTail) {
  FaultPlan plan;
  plan.schedule.push_back(
      {FaultKind::kStraggler, 0, FaultSpec::kEveryAttempt, 4.0, 0.0});
  const SimFaultOutcome out = simulate_task_wave(
      4, std::vector<double>(4, 1.0), plan, EngineId::kSpark);
  EXPECT_TRUE(out.completed);
  EXPECT_DOUBLE_EQ(out.makespan_s, 4.0);  // one task runs 4x
  EXPECT_EQ(out.faults_injected, 1u);
}

TEST(SimulateTaskWaveTest, SpeculationCapsTheStraggler) {
  FaultPlan plan;
  plan.schedule.push_back(
      {FaultKind::kStraggler, 0, FaultSpec::kEveryAttempt, 10.0, 0.0});
  plan.speculation.enabled = true;
  plan.speculation.threshold_factor = 1.5;
  const SimFaultOutcome out = simulate_task_wave(
      4, std::vector<double>(4, 1.0), plan, EngineId::kSpark);
  EXPECT_TRUE(out.completed);
  // Copy launches at 1.5 s and needs 1 s: done at 2.5 s, not 10 s.
  EXPECT_DOUBLE_EQ(out.makespan_s, 2.5);
  EXPECT_EQ(out.speculative_copies, 1u);
}

TEST(SimulateTaskWaveTest, FailStopFaultIsRetriedToCompletion) {
  FaultPlan plan;
  plan.schedule.push_back({FaultKind::kWorkerOomKill, 1, 0});
  const SimFaultOutcome out = simulate_task_wave(
      2, std::vector<double>(4, 1.0), plan, EngineId::kDask);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.faults_injected, 1u);
  EXPECT_EQ(out.retries, 1u);
  EXPECT_GT(out.makespan_s, 2.0);  // the retry costs extra virtual time
}

TEST(SimulateTaskWaveTest, UnrecoverableFaultFailsTheWave) {
  FaultPlan plan;
  plan.schedule.push_back({FaultKind::kNodeCrash, 0,
                           FaultSpec::kEveryAttempt});
  plan.retry.max_attempts = 2;
  const SimFaultOutcome out = simulate_task_wave(
      2, std::vector<double>(2, 1.0), plan, EngineId::kMpi);
  EXPECT_FALSE(out.completed);
  EXPECT_NE(out.failure.find("node-crash"), std::string::npos);
}

TEST(SimulateTaskWaveTest, DeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 99;
  plan.rates.node_crash = 0.01;
  plan.rates.worker_oom = 0.05;
  plan.rates.straggler = 0.10;
  plan.speculation.enabled = true;
  const std::vector<double> durations(256, 1.0);
  RecoveryLog log_a;
  RecoveryLog log_b;
  const SimFaultOutcome a =
      simulate_task_wave(32, durations, plan, EngineId::kRp, &log_a);
  const SimFaultOutcome b =
      simulate_task_wave(32, durations, plan, EngineId::kRp, &log_b);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(log_a.canonical(), log_b.canonical());
}

TEST(SimulateTaskWaveTest, DifferentSeedsChangeTheSchedule) {
  FaultPlan p1;
  p1.seed = 1;
  p1.rates.worker_oom = 0.2;
  FaultPlan p2 = p1;
  p2.seed = 2;
  const std::vector<double> durations(256, 1.0);
  RecoveryLog log_a;
  RecoveryLog log_b;
  simulate_task_wave(32, durations, p1, EngineId::kSpark, &log_a);
  simulate_task_wave(32, durations, p2, EngineId::kSpark, &log_b);
  // The faulted task sets differ (canonical lines carry task ids), even
  // if the fault *counts* happen to coincide.
  EXPECT_NE(log_a.canonical(), log_b.canonical());
}

}  // namespace
}  // namespace mdtask::fault
