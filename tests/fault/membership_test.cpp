// Seeded membership schedules: determinism of churn_plan draws, the
// canonical RecoveryLog merge, departure-policy resolution, and the
// DES task-wave replay under joins/leaves (per-engine semantics,
// byte-identical logs and traces per seed).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "mdtask/fault/membership.h"
#include "mdtask/fault/recovery.h"
#include "mdtask/fault/sim_faults.h"
#include "mdtask/trace/chrome_export.h"

namespace mdtask {
namespace {

using fault::DeparturePolicy;
using fault::EngineId;
using fault::FaultPlan;
using fault::MembershipKind;
using fault::MembershipPlan;
using fault::RecoveryLog;

const EngineId kEngines[] = {EngineId::kSpark, EngineId::kDask,
                             EngineId::kRp, EngineId::kMpi};

// --------------------------------------------------- plan generation --

TEST(MembershipPlanTest, ChurnPlanIsDeterministicPerSeed) {
  for (const EngineId engine : kEngines) {
    const auto a = fault::churn_plan(42, engine, 3, 2, 30.0);
    const auto b = fault::churn_plan(42, engine, 3, 2, 30.0);
    ASSERT_EQ(a.schedule.size(), b.schedule.size());
    for (std::size_t i = 0; i < a.schedule.size(); ++i) {
      EXPECT_EQ(a.schedule[i].kind, b.schedule[i].kind);
      EXPECT_DOUBLE_EQ(a.schedule[i].at_s, b.schedule[i].at_s);
      EXPECT_EQ(a.schedule[i].count, b.schedule[i].count);
    }
  }
}

TEST(MembershipPlanTest, EnginesDrawIndependentStreams) {
  const auto spark = fault::churn_plan(42, EngineId::kSpark, 4, 4, 30.0);
  const auto dask = fault::churn_plan(42, EngineId::kDask, 4, 4, 30.0);
  ASSERT_EQ(spark.schedule.size(), dask.schedule.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < spark.schedule.size(); ++i) {
    if (spark.schedule[i].at_s != dask.schedule[i].at_s) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference)
      << "spark and dask schedules share every event time";
}

TEST(MembershipPlanTest, DifferentSeedsMoveTheSchedule) {
  const auto a = fault::churn_plan(42, EngineId::kSpark, 4, 4, 30.0);
  const auto b = fault::churn_plan(43, EngineId::kSpark, 4, 4, 30.0);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    if (a.schedule[i].at_s != b.schedule[i].at_s) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(MembershipPlanTest, ScheduleIsSortedAndCountsAreHonoured) {
  const auto plan = fault::churn_plan(7, EngineId::kRp, 5, 3, 60.0, 2);
  ASSERT_EQ(plan.schedule.size(), 8u);
  EXPECT_EQ(plan.joins(), 5u);
  EXPECT_EQ(plan.leaves(), 3u);
  for (std::size_t i = 1; i < plan.schedule.size(); ++i) {
    EXPECT_LE(plan.schedule[i - 1].at_s, plan.schedule[i].at_s);
  }
  for (const auto& ev : plan.schedule) {
    EXPECT_EQ(ev.count, 2u);
    EXPECT_GE(ev.at_s, 0.0);
    EXPECT_LT(ev.at_s, 60.0);
  }
}

TEST(MembershipPlanTest, DeparturePolicyResolvesPerEngine) {
  // Engine defaults: Spark kills (lineage), Dask/RP drain, MPI is rigid.
  EXPECT_EQ(fault::departure_for(EngineId::kSpark,
                                 DeparturePolicy::kEngineDefault),
            DeparturePolicy::kKill);
  EXPECT_EQ(fault::departure_for(EngineId::kDask,
                                 DeparturePolicy::kEngineDefault),
            DeparturePolicy::kDrain);
  EXPECT_EQ(fault::departure_for(EngineId::kRp,
                                 DeparturePolicy::kEngineDefault),
            DeparturePolicy::kDrain);
  // MPI kills regardless of the requested policy — there is no graceful
  // shrink of a rigid job.
  EXPECT_EQ(fault::departure_for(EngineId::kMpi, DeparturePolicy::kDrain),
            DeparturePolicy::kKill);
  // Explicit overrides stick for elastic engines.
  EXPECT_EQ(fault::departure_for(EngineId::kDask, DeparturePolicy::kKill),
            DeparturePolicy::kKill);
  EXPECT_EQ(fault::departure_for(EngineId::kSpark, DeparturePolicy::kDrain),
            DeparturePolicy::kDrain);
}

// ------------------------------------------------------ recovery log --

TEST(MembershipRecordTest, LineFormatIsStable) {
  const fault::MembershipRecord record{
      EngineId::kDask, MembershipKind::kNodeLeave, 1, 2, 4, 1, 0.0};
  EXPECT_EQ(record.to_string(),
            "dask elastic#1 node-leave count=2 pool=4 preempted=1");
}

TEST(MembershipRecordTest, CanonicalMergesFaultAndMembershipLines) {
  RecoveryLog log;
  log.record({EngineId::kSpark, 7, 0, fault::FaultKind::kNodeCrash,
              fault::RecoveryAction::kReexecuteLineage, 0.0, 0.0});
  log.record_membership(
      {EngineId::kSpark, MembershipKind::kNodeJoin, 0, 1, 5, 0, 0.0});
  EXPECT_EQ(log.size(), 1u) << "size() stays fault-only";
  EXPECT_EQ(log.membership_size(), 1u);
  std::string canonical;
  for (const auto& line : log.canonical()) canonical += line + "\n";
  EXPECT_NE(canonical.find("elastic#0 node-join"), std::string::npos);
  EXPECT_NE(canonical.find("node-crash"), std::string::npos);
}

TEST(MembershipRecordTest, MembershipEventsMirrorAsElasticInstants) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  const std::uint32_t pid = tracer.process("test");
  RecoveryLog log;
  log.attach_tracer(&tracer, tracer.thread(pid, "driver"));
  log.record_membership(
      {EngineId::kRp, MembershipKind::kNodeJoin, 0, 2, 6, 0, 10.0});
  log.record_membership(
      {EngineId::kRp, MembershipKind::kNodeLeave, 1, 1, 5, 0, 20.0});
  trace::ChromeExportOptions options;
  options.sort_events = true;
  const std::string json = trace::to_chrome_json(tracer, options);
  EXPECT_NE(json.find("elastic:node-join"), std::string::npos);
  EXPECT_NE(json.find("elastic:node-leave"), std::string::npos);
}

// ------------------------------------------------ DES task-wave replay --

std::vector<double> uniform_tasks(std::size_t n, double s) {
  return std::vector<double>(n, s);
}

TEST(ElasticWaveTest, MidRunJoinShortensTheMakespan) {
  const auto tasks = uniform_tasks(256, 1.0);
  const FaultPlan no_faults;
  const double fixed =
      fault::simulate_task_wave(32, tasks, no_faults, EngineId::kSpark)
          .makespan_s;
  MembershipPlan membership;
  membership.schedule.push_back({MembershipKind::kNodeJoin, 2.0, 32});
  const auto grown = fault::simulate_task_wave(
      32, tasks, no_faults, EngineId::kSpark, nullptr, &membership);
  EXPECT_EQ(grown.joins, 1u);
  EXPECT_LT(grown.makespan_s, fixed);
  EXPECT_EQ(grown.final_pool, 64u);
}

TEST(ElasticWaveTest, LeaveHeavyScheduleLengthensTheMakespan) {
  const auto tasks = uniform_tasks(256, 1.0);
  const FaultPlan no_faults;
  const double fixed =
      fault::simulate_task_wave(32, tasks, no_faults, EngineId::kDask)
          .makespan_s;
  MembershipPlan membership;
  membership.schedule.push_back({MembershipKind::kNodeLeave, 2.0, 16});
  const auto shrunk = fault::simulate_task_wave(
      32, tasks, no_faults, EngineId::kDask, nullptr, &membership);
  EXPECT_EQ(shrunk.leaves, 1u);
  EXPECT_GT(shrunk.makespan_s, fixed);
  EXPECT_EQ(shrunk.final_pool, 16u);
}

TEST(ElasticWaveTest, JoinHeavyMpiStaysRigid) {
  const auto tasks = uniform_tasks(128, 1.0);
  const FaultPlan no_faults;
  const double fixed =
      fault::simulate_task_wave(32, tasks, no_faults, EngineId::kMpi)
          .makespan_s;
  MembershipPlan membership;
  membership.schedule.push_back({MembershipKind::kNodeJoin, 1.0, 32});
  membership.schedule.push_back({MembershipKind::kNodeJoin, 2.0, 32});
  RecoveryLog log;
  const auto outcome = fault::simulate_task_wave(
      32, tasks, no_faults, EngineId::kMpi, &log, &membership);
  // Joins are logged but the rigid pool never grows.
  EXPECT_EQ(outcome.joins, 2u);
  EXPECT_EQ(log.membership_size(), 2u);
  EXPECT_EQ(outcome.final_pool, 32u);
  EXPECT_DOUBLE_EQ(outcome.makespan_s, fixed);
}

TEST(ElasticWaveTest, KillLeavesPreemptButDrainLeavesDoNot) {
  const auto tasks = uniform_tasks(256, 1.0);
  const FaultPlan no_faults;
  MembershipPlan membership;
  membership.schedule.push_back({MembershipKind::kNodeLeave, 1.5, 8});
  // Spark's default departure is kill: mid-flight holds are preempted.
  const auto spark = fault::simulate_task_wave(
      32, tasks, no_faults, EngineId::kSpark, nullptr, &membership);
  EXPECT_GT(spark.preempted, 0u);
  // Dask drains: in-flight holds finish, nothing preempted.
  const auto dask = fault::simulate_task_wave(
      32, tasks, no_faults, EngineId::kDask, nullptr, &membership);
  EXPECT_EQ(dask.preempted, 0u);
  EXPECT_EQ(spark.final_pool, dask.final_pool);
}

TEST(ElasticWaveTest, JoinWarmupDelaysTheCapacity) {
  const auto tasks = uniform_tasks(128, 1.0);
  const FaultPlan no_faults;
  MembershipPlan warm;
  warm.schedule.push_back({MembershipKind::kNodeJoin, 1.0, 32});
  MembershipPlan cold = warm;
  cold.join_warmup_s = 2.0;
  const auto fast = fault::simulate_task_wave(
      32, tasks, no_faults, EngineId::kDask, nullptr, &warm);
  const auto slow = fault::simulate_task_wave(
      32, tasks, no_faults, EngineId::kDask, nullptr, &cold);
  EXPECT_LE(fast.makespan_s, slow.makespan_s);
  EXPECT_EQ(slow.final_pool, 64u);
}

TEST(ElasticWaveTest, ChurnScheduleKeepsWaveCompleting) {
  const auto tasks = uniform_tasks(200, 0.5);
  FaultPlan plan;
  plan.seed = 42;
  plan.rates.worker_oom = 0.02;
  for (const EngineId engine : kEngines) {
    const auto membership = fault::churn_plan(42, engine, 3, 3, 20.0);
    const auto outcome = fault::simulate_task_wave(
        16, tasks, plan, engine, nullptr, &membership);
    EXPECT_TRUE(outcome.completed) << fault::to_string(engine);
    EXPECT_EQ(outcome.joins + outcome.leaves, membership.schedule.size())
        << fault::to_string(engine);
  }
}

// One join + one leave: byte-identical canonical recovery logs AND
// byte-identical Chrome traces across repeated runs, on all four
// engines (the PR's acceptance scenario).
TEST(ElasticWaveTest, RepeatedRunsAreByteIdenticalPerEngine) {
  const auto tasks = uniform_tasks(96, 1.0);
  FaultPlan plan;
  plan.seed = 42;
  plan.rates.node_crash = 0.01;
  for (const EngineId engine : kEngines) {
    MembershipPlan membership;
    membership.schedule.push_back({MembershipKind::kNodeJoin, 1.0, 8});
    membership.schedule.push_back({MembershipKind::kNodeLeave, 2.0, 4});
    std::vector<std::string> canonical[2];
    std::string trace_json[2];
    double makespan[2] = {0.0, 0.0};
    for (int run = 0; run < 2; ++run) {
      trace::Tracer tracer;
      tracer.set_enabled(true);
      RecoveryLog log;
      log.attach_tracer(&tracer,
                        tracer.thread(tracer.process("wave"), "driver"));
      const auto outcome = fault::simulate_task_wave(
          16, tasks, plan, engine, &log, &membership);
      canonical[run] = log.canonical();
      makespan[run] = outcome.makespan_s;
      trace::ChromeExportOptions options;
      options.sort_events = true;
      trace_json[run] = trace::to_chrome_json(tracer, options);
    }
    EXPECT_EQ(canonical[0], canonical[1]) << fault::to_string(engine);
    EXPECT_FALSE(canonical[0].empty()) << fault::to_string(engine);
    EXPECT_EQ(trace_json[0], trace_json[1]) << fault::to_string(engine);
    EXPECT_DOUBLE_EQ(makespan[0], makespan[1]) << fault::to_string(engine);
  }
}

TEST(ElasticWaveTest, PoolTimelineTracksEveryMembershipEvent) {
  const auto tasks = uniform_tasks(128, 1.0);
  const FaultPlan no_faults;
  MembershipPlan membership;
  membership.schedule.push_back({MembershipKind::kNodeJoin, 1.0, 8});
  membership.schedule.push_back({MembershipKind::kNodeLeave, 2.0, 4});
  std::vector<fault::PoolSample> timeline;
  const auto outcome = fault::simulate_task_wave(
      32, tasks, no_faults, EngineId::kDask, nullptr, &membership,
      &timeline);
  ASSERT_EQ(timeline.size(), 3u);  // initial + join + leave
  EXPECT_DOUBLE_EQ(timeline[0].at_s, 0.0);
  EXPECT_EQ(timeline[0].servers, 32u);
  EXPECT_EQ(timeline[1].servers, 40u);
  EXPECT_EQ(timeline[2].servers, 36u);
  EXPECT_EQ(outcome.final_pool, 36u);
}

// --------------------------------------------- checkpoint cost model --

TEST(CheckpointCostTest, AlphaBetaModelScalesWithBytes) {
  const auto model = fault::checkpoint_model_for(sim::wrangler());
  EXPECT_GT(model.write_s(1 << 20), model.write_s(0));
  EXPECT_GT(model.restore_s(1 << 30), model.restore_s(1 << 20));
  // Comet's Lustre is slower than Wrangler's flash.
  const auto comet = fault::checkpoint_model_for(sim::comet());
  EXPECT_GT(comet.write_s(1 << 30), model.write_s(1 << 30));
}

TEST(CheckpointCostTest, StoreAccruesModeledSeconds) {
  fault::CheckpointStore store;
  store.set_cost_model(fault::checkpoint_model_for(sim::wrangler()));
  store.put("state", std::vector<std::uint8_t>(1 << 20, 0xab));
  EXPECT_EQ(store.bytes_stored(), std::uint64_t{1} << 20);
  EXPECT_GT(store.modeled_write_s(), 0.0);
  EXPECT_DOUBLE_EQ(store.modeled_restore_s(), 0.0);
  (void)store.get("state");
  EXPECT_GT(store.modeled_restore_s(), 0.0);
}

TEST(CheckpointCostTest, DalySweepIsConvexAroundTheOptimum) {
  const double checkpoint_s = 5.0;
  const double mtbf_s = 3600.0;
  const double daly = fault::daly_optimum_interval(checkpoint_s, mtbf_s);
  EXPECT_NEAR(daly, std::sqrt(2.0 * checkpoint_s * mtbf_s) - checkpoint_s,
              1e-9);
  const double at_daly =
      fault::simulate_checkpointed_job(7200.0, daly, checkpoint_s, 30.0,
                                       mtbf_s, 42)
          .total_s;
  const double too_short =
      fault::simulate_checkpointed_job(7200.0, daly / 8.0, checkpoint_s,
                                       30.0, mtbf_s, 42)
          .total_s;
  const double too_long =
      fault::simulate_checkpointed_job(7200.0, daly * 8.0, checkpoint_s,
                                       30.0, mtbf_s, 42)
          .total_s;
  EXPECT_LT(at_daly, too_short);
  EXPECT_LT(at_daly, too_long);
}

TEST(CheckpointCostTest, CheckpointedJobIsDeterministicPerSeed) {
  const auto a =
      fault::simulate_checkpointed_job(3600.0, 120.0, 2.0, 10.0, 900.0, 42);
  const auto b =
      fault::simulate_checkpointed_job(3600.0, 120.0, 2.0, 10.0, 900.0, 42);
  EXPECT_DOUBLE_EQ(a.total_s, b.total_s);
  EXPECT_EQ(a.failures, b.failures);
  const auto c =
      fault::simulate_checkpointed_job(3600.0, 120.0, 2.0, 10.0, 900.0, 43);
  EXPECT_NE(a.total_s, c.total_s);
}

}  // namespace
}  // namespace mdtask
