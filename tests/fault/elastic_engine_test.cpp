// Live-engine elasticity: join/leave the real engine pools mid-run and
// assert the per-engine rebalancing semantics — Spark lineage
// re-execution after a kill-decommission, Dask in-flight reschedule off
// a departed worker, RP pilot resize with unit atomicity, MPI's rigid
// checkpoint-cost accounting — always with results byte-identical to a
// static-pool run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "mdtask/engines/dask/dask.h"
#include "mdtask/engines/mpi/runtime.h"
#include "mdtask/engines/rp/pilot.h"
#include "mdtask/engines/spark/spark.h"
#include "mdtask/fault/membership.h"
#include "mdtask/fault/recovery.h"
#include "mdtask/traj/generators.h"
#include "mdtask/workflows/psa_runner.h"

namespace mdtask {
namespace {

using fault::DeparturePolicy;
using fault::MembershipKind;
using fault::RecoveryLog;

/// Spins until `running` reaches `target` (the in-flight tasks have all
/// parked on the release gate), so membership events land mid-task.
void await_running(const std::atomic<int>& running, int target) {
  while (running.load(std::memory_order_acquire) < target) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// Parks the calling task until the test opens the gate.
void park(std::atomic<int>& running, const std::atomic<bool>& release) {
  running.fetch_add(1, std::memory_order_acq_rel);
  while (!release.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ------------------------------------------------------------- Spark --

TEST(SparkElasticTest, AddExecutorsAbsorbsAWiderStageMidRun) {
  RecoveryLog log;
  spark::SparkContext sc(
      spark::SparkConfig{.executor_threads = 2, .recovery_log = &log});
  std::atomic<int> running{0};
  std::atomic<bool> release{false};

  // Four 1-element partitions on two executors: the first two park, the
  // join lands, and the two new executors drain the rest of the stage.
  auto squares = sc.parallelize(std::vector<int>{0, 1, 2, 3}, 4)
                     .map([&](const int& x) {
                       park(running, release);
                       return x * x;
                     });
  std::thread resizer([&] {
    await_running(running, 2);
    sc.add_executors(2);
    // The joined executors pick up the remaining partitions and park
    // too; only then open the gate.
    await_running(running, 4);
    release.store(true, std::memory_order_release);
  });
  const std::vector<int> out = squares.collect();
  resizer.join();

  EXPECT_EQ(out, (std::vector<int>{0, 1, 4, 9}));
  EXPECT_EQ(sc.pool().size(), 4u);
  ASSERT_EQ(log.membership_size(), 1u);
  const auto events = log.membership_events();
  EXPECT_EQ(events[0].kind, MembershipKind::kNodeJoin);
  EXPECT_EQ(events[0].count, 2u);
  EXPECT_EQ(events[0].pool_size, 4u);
  EXPECT_EQ(sc.lineage_reexecutions(), 0u);
}

TEST(SparkElasticTest, KillDecommissionReexecutesLostPartitionsIdentically) {
  const std::vector<int> expected = [] {
    spark::SparkContext sc(spark::SparkConfig{.executor_threads = 4});
    std::vector<int> input(8);
    std::iota(input.begin(), input.end(), 0);
    return sc.parallelize(std::move(input), 4)
        .map([](const int& x) { return x * x; })
        .collect();
  }();

  RecoveryLog log;
  spark::SparkContext sc(
      spark::SparkConfig{.executor_threads = 4, .recovery_log = &log});
  std::atomic<int> running{0};
  std::atomic<bool> release{false};
  std::vector<int> input(8);
  std::iota(input.begin(), input.end(), 0);
  auto squares =
      sc.parallelize(std::move(input), 4).map([&](const int& x) {
        // Re-executed partitions run this same closure after the gate
        // has opened, so they pass straight through — and recompute the
        // byte-identical value.
        park(running, release);
        return x * x;
      });
  std::thread resizer([&] {
    await_running(running, 4);
    sc.decommission_executors(2, DeparturePolicy::kKill);
    release.store(true, std::memory_order_release);
  });
  const std::vector<int> out = squares.collect();
  resizer.join();

  EXPECT_EQ(out, expected);
  EXPECT_EQ(sc.pool().size(), 2u);
  // Both partitions in flight on the two retired executors were marked
  // lost and recomputed from lineage after the stage barrier.
  EXPECT_EQ(sc.lineage_reexecutions(), 2u);
  ASSERT_EQ(log.membership_size(), 1u);
  const auto events = log.membership_events();
  EXPECT_EQ(events[0].kind, MembershipKind::kNodeLeave);
  EXPECT_EQ(events[0].count, 2u);
  EXPECT_EQ(events[0].preempted, 2u);
}

TEST(SparkElasticTest, DrainDecommissionLosesNoWork) {
  RecoveryLog log;
  spark::SparkContext sc(
      spark::SparkConfig{.executor_threads = 4, .recovery_log = &log});
  std::atomic<int> running{0};
  std::atomic<bool> release{false};
  auto doubled = sc.parallelize(std::vector<int>{1, 2, 3, 4}, 4)
                     .map([&](const int& x) {
                       park(running, release);
                       return 2 * x;
                     });
  std::thread resizer([&] {
    await_running(running, 4);
    sc.decommission_executors(2, DeparturePolicy::kDrain);
    release.store(true, std::memory_order_release);
  });
  EXPECT_EQ(doubled.collect(), (std::vector<int>{2, 4, 6, 8}));
  resizer.join();
  EXPECT_EQ(sc.lineage_reexecutions(), 0u);
  ASSERT_EQ(log.membership_size(), 1u);
  EXPECT_EQ(log.membership_events()[0].preempted, 0u);
}

// -------------------------------------------------------------- Dask --

TEST(DaskElasticTest, KillRetireReschedulesInFlightTasksIdentically) {
  RecoveryLog log;
  dask::DaskClient client(
      dask::DaskConfig{.workers = 4, .recovery_log = &log});
  std::atomic<int> running{0};
  std::atomic<bool> release{false};
  std::vector<dask::Future<int>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(client.submit([&running, &release, i] {
      park(running, release);
      return i * i;
    }));
  }
  await_running(running, 4);
  const std::size_t retired =
      client.retire_workers(2, DeparturePolicy::kKill);
  release.store(true, std::memory_order_release);

  // First completion wins: the originals (still parked on the retired
  // workers) and the rescheduled duplicates publish the identical
  // value, so results never diverge.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(futures[i].get(), i * i);
  client.wait_all();

  EXPECT_EQ(retired, 2u);
  EXPECT_EQ(client.workers(), 2u);
  EXPECT_EQ(client.rescheduled_tasks(), 2u);
  ASSERT_EQ(log.membership_size(), 1u);
  const auto events = log.membership_events();
  EXPECT_EQ(events[0].kind, MembershipKind::kNodeLeave);
  EXPECT_EQ(events[0].preempted, 2u);
}

TEST(DaskElasticTest, GracefulRetireDrainsWithoutRescheduling) {
  RecoveryLog log;
  dask::DaskClient client(
      dask::DaskConfig{.workers = 4, .recovery_log = &log});
  std::atomic<int> running{0};
  std::atomic<bool> release{false};
  std::vector<dask::Future<int>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(client.submit([&running, &release, i] {
      park(running, release);
      return i + 100;
    }));
  }
  await_running(running, 4);
  // Engine default for Dask is drain: the departing workers finish
  // their current task, nothing is preempted or re-run.
  const std::size_t retired = client.retire_workers(2);
  release.store(true, std::memory_order_release);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(futures[i].get(), i + 100);
  client.wait_all();

  EXPECT_EQ(retired, 2u);
  EXPECT_EQ(client.workers(), 2u);
  EXPECT_EQ(client.rescheduled_tasks(), 0u);
  ASSERT_EQ(log.membership_size(), 1u);
  EXPECT_EQ(log.membership_events()[0].preempted, 0u);
}

TEST(DaskElasticTest, JoinedWorkersDrainTheBacklog) {
  RecoveryLog log;
  dask::DaskClient client(
      dask::DaskConfig{.workers = 1, .recovery_log = &log});
  std::atomic<int> running{0};
  std::atomic<bool> release{false};
  std::vector<dask::Future<int>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(client.submit([&running, &release, i] {
      park(running, release);
      return 3 * i;
    }));
  }
  await_running(running, 1);  // the single worker is parked; 2 queued
  client.add_workers(2);
  await_running(running, 3);  // the joiners picked up the backlog
  release.store(true, std::memory_order_release);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(futures[i].get(), 3 * i);
  client.wait_all();

  EXPECT_EQ(client.workers(), 3u);
  ASSERT_EQ(log.membership_size(), 1u);
  EXPECT_EQ(log.membership_events()[0].kind, MembershipKind::kNodeJoin);
  EXPECT_EQ(log.membership_events()[0].pool_size, 3u);
}

// ---------------------------------------------------------------- RP --

TEST(RpElasticTest, PilotResizeKeepsUnitsAtomicAndLogsMembership) {
  RecoveryLog log;
  rp::PilotDescription pilot;
  pilot.cores = 2;
  pilot.recovery_log = &log;
  rp::UnitManager um(pilot);

  std::atomic<int> completed{0};
  std::vector<rp::ComputeUnitDescription> descriptions;
  for (int i = 0; i < 6; ++i) {
    rp::ComputeUnitDescription d;
    d.name = "unit-" + std::to_string(i);
    d.executable = [&completed](rp::SharedFilesystem&) {
      completed.fetch_add(1, std::memory_order_relaxed);
    };
    descriptions.push_back(std::move(d));
  }
  auto units = um.submit_units(std::move(descriptions));
  um.grow_pilot(2);
  EXPECT_EQ(um.cores(), 4u);
  um.wait_units();
  for (const auto& unit : units) {
    EXPECT_EQ(unit->state(), rp::UnitState::kDone) << unit->name();
  }
  EXPECT_EQ(completed.load(), 6);

  // RP shrinks gracefully regardless of the requested count, and the
  // pilot never gives up its last core.
  const std::size_t released = um.shrink_pilot(8);
  EXPECT_EQ(released, 3u);
  EXPECT_EQ(um.cores(), 1u);

  ASSERT_EQ(log.membership_size(), 2u);
  const auto events = log.membership_events();
  EXPECT_EQ(events[0].kind, MembershipKind::kNodeJoin);
  EXPECT_EQ(events[0].count, 2u);
  EXPECT_EQ(events[0].pool_size, 4u);
  EXPECT_EQ(events[1].kind, MembershipKind::kNodeLeave);
  EXPECT_EQ(events[1].count, 3u);
  EXPECT_EQ(events[1].pool_size, 1u);
  EXPECT_EQ(events[1].preempted, 0u);  // units are atomic at the pilot
}

// --------------------------------------------------------------- MPI --

TEST(MpiElasticTest, CheckpointCostsFlowIntoTheSpmdReport) {
  const fault::CheckpointCostModel model{
      .write_latency_s = 1e-3,
      .write_Bps = 1e9,
      .restore_latency_s = 1e-3,
      .restore_Bps = 2e9,
  };
  const std::uint64_t state_bytes = 1ull << 20;
  const auto report = mpi::run_spmd_with_recovery(
      2,
      [&](mpi::Communicator& comm, fault::CheckpointStore& store) {
        if (comm.rank() == 0) {
          store.put("state",
                    std::vector<std::uint8_t>(state_bytes, 0xAB));
          (void)store.get("state");
        }
        std::vector<int> token{comm.rank()};
        comm.bcast(token, 0);
      },
      fault::FaultPlan{}, nullptr, mpi::BcastAlgorithm::kBinomialTree,
      nullptr, &model);

  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(report.checkpoint_bytes, state_bytes);
  EXPECT_DOUBLE_EQ(report.checkpoint_write_s, model.write_s(state_bytes));
  EXPECT_DOUBLE_EQ(report.checkpoint_restore_s,
                   model.restore_s(state_bytes));
}

TEST(MpiElasticTest, RigidRestartStillPaysTheModeledWriteCost) {
  // A fail-stop on attempt 0 aborts the whole job (MPI has no per-task
  // recovery); the relaunch succeeds and checkpoints its state with the
  // calibrated model applied.
  fault::FaultPlan plan;
  plan.schedule.push_back(
      {fault::FaultKind::kNodeCrash, fault::FaultSpec::kEveryTask, 0});
  const fault::CheckpointCostModel model{.write_latency_s = 1e-3,
                                         .write_Bps = 1e9};
  RecoveryLog log;
  const auto report = mpi::run_spmd_with_recovery(
      2,
      [](mpi::Communicator& comm, fault::CheckpointStore& store) {
        if (comm.rank() == 0 && !store.contains("state")) {
          store.put("state", std::vector<std::uint8_t>(4096, 1));
        }
      },
      plan, &log, mpi::BcastAlgorithm::kBinomialTree, nullptr, &model);

  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.checkpoint_bytes, 4096u);
  EXPECT_DOUBLE_EQ(report.checkpoint_write_s, model.write_s(4096));
  EXPECT_GT(log.size(), 0u);
}

// ---------------------------------------------- workflow end-to-end --

class PsaElasticTest : public ::testing::TestWithParam<workflows::EngineKind> {
};

TEST_P(PsaElasticTest, MembershipPlanLeavesTheMatrixByteIdentical) {
  // Heavy enough that the run spans many milliseconds — the at_s = 0
  // membership events land long before the last task retires.
  traj::ProteinTrajectoryParams params;
  params.atoms = 32;
  params.frames = 128;
  const auto ensemble = traj::make_protein_ensemble(16, params);

  workflows::PsaRunConfig config;
  config.workers = 3;
  const auto reference = run_psa(GetParam(), ensemble, config);

  fault::MembershipPlan membership;
  membership.schedule.push_back({MembershipKind::kNodeJoin, 0.0, 2});
  membership.schedule.push_back({MembershipKind::kNodeLeave, 0.0, 1});
  fault::RecoveryLog log;
  workflows::PsaRunConfig elastic = config;
  elastic.membership_plan = &membership;
  elastic.recovery_log = &log;
  const auto result = run_psa(GetParam(), ensemble, elastic);

  ASSERT_EQ(result.matrix.size(), reference.matrix.size());
  EXPECT_EQ(result.matrix.data(), reference.matrix.data());
  EXPECT_EQ(log.membership_size(), 2u);
  const auto events = log.membership_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, MembershipKind::kNodeJoin);
  EXPECT_EQ(events[1].kind, MembershipKind::kNodeLeave);
}

INSTANTIATE_TEST_SUITE_P(Engines, PsaElasticTest,
                         ::testing::Values(workflows::EngineKind::kSpark,
                                           workflows::EngineKind::kDask,
                                           workflows::EngineKind::kRp),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case workflows::EngineKind::kSpark:
                               return "Spark";
                             case workflows::EngineKind::kDask:
                               return "Dask";
                             default:
                               return "Rp";
                           }
                         });

}  // namespace
}  // namespace mdtask
