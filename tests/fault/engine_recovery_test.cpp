// Per-engine recovery: inject each fault kind into real engine runs and
// assert the workload completes with results identical to a fault-free
// run — plus the determinism contract (same seed => same canonical
// fault/recovery sequence) and structured failure context on give-up.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mdtask/engines/dask/dask.h"
#include "mdtask/engines/mpi/runtime.h"
#include "mdtask/engines/rp/pilot.h"
#include "mdtask/engines/spark/spark.h"
#include "mdtask/fault/fault.h"
#include "mdtask/fault/recovery.h"

namespace mdtask {
namespace {

using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;
using fault::RecoveryLog;

/// A plan that faults every task exactly once (attempt 0) with `kind`.
FaultPlan once_per_task(FaultKind kind) {
  FaultPlan plan;
  plan.schedule.push_back({kind, FaultSpec::kEveryTask, 0,
                           kind == FaultKind::kStraggler ? 2.0 : 1.0,
                           kind == FaultKind::kStraggler ||
                                   kind == FaultKind::kFilesystemStall
                               ? 0.001
                               : 0.0});
  return plan;
}

const FaultKind kAllKinds[] = {
    FaultKind::kNodeCrash, FaultKind::kWorkerOomKill, FaultKind::kStraggler,
    FaultKind::kNetworkPartition, FaultKind::kFilesystemStall};

// ------------------------------------------------------------- Spark --

std::vector<int> spark_squares(const FaultPlan* plan, RecoveryLog* log) {
  spark::SparkContext sc(spark::SparkConfig{
      .executor_threads = 4, .fault_plan = plan, .recovery_log = log});
  std::vector<int> input(32);
  std::iota(input.begin(), input.end(), 0);
  return sc.parallelize(std::move(input), 8)
      .map([](const int& x) { return x * x; })
      .collect();
}

TEST(SparkRecoveryTest, EveryFaultKindRecoversWithIdenticalResults) {
  const std::vector<int> expected = spark_squares(nullptr, nullptr);
  for (FaultKind kind : kAllKinds) {
    const FaultPlan plan = once_per_task(kind);
    RecoveryLog log;
    EXPECT_EQ(spark_squares(&plan, &log), expected)
        << "kind=" << fault::to_string(kind);
    if (kind != FaultKind::kStraggler &&
        kind != FaultKind::kFilesystemStall) {
      // Fail-stop kinds must have gone through lineage re-execution.
      EXPECT_GT(log.size(), 0u) << "kind=" << fault::to_string(kind);
      for (const auto& e : log.events()) {
        EXPECT_EQ(e.action, fault::RecoveryAction::kReexecuteLineage);
      }
    }
  }
}

TEST(SparkRecoveryTest, ExhaustedBudgetSurfacesInjectedFault) {
  FaultPlan plan;
  plan.schedule.push_back(
      {FaultKind::kNodeCrash, FaultSpec::kEveryTask,
       FaultSpec::kEveryAttempt});
  plan.retry.max_attempts = 2;
  EXPECT_THROW(spark_squares(&plan, nullptr), fault::InjectedFault);
}

// -------------------------------------------------------------- Dask --

std::vector<int> dask_triples(const FaultPlan* plan, RecoveryLog* log,
                              std::uint64_t* restarts = nullptr) {
  dask::DaskClient client(dask::DaskConfig{
      .workers = 4, .fault_plan = plan, .recovery_log = log});
  std::vector<dask::Future<int>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(client.submit([i] { return 3 * i; }));
  }
  std::vector<int> out;
  for (const auto& f : futures) out.push_back(f.get());
  if (restarts != nullptr) *restarts = client.worker_restarts();
  return out;
}

TEST(DaskRecoveryTest, EveryFaultKindRecoversWithIdenticalResults) {
  const std::vector<int> expected = dask_triples(nullptr, nullptr);
  for (FaultKind kind : kAllKinds) {
    const FaultPlan plan = once_per_task(kind);
    RecoveryLog log;
    std::uint64_t restarts = 0;
    EXPECT_EQ(dask_triples(&plan, &log, &restarts), expected)
        << "kind=" << fault::to_string(kind);
    if (kind == FaultKind::kWorkerOomKill || kind == FaultKind::kNodeCrash) {
      // distributed answers memory kills and crashes by restarting the
      // worker before rescheduling the task.
      EXPECT_GT(restarts, 0u) << "kind=" << fault::to_string(kind);
    }
  }
}

TEST(DaskRecoveryTest, ExhaustedBudgetFailsTheFuture) {
  FaultPlan plan;
  plan.schedule.push_back({FaultKind::kNetworkPartition, FaultSpec::kEveryTask,
                           FaultSpec::kEveryAttempt});
  plan.retry.max_attempts = 2;
  dask::DaskClient client(
      dask::DaskConfig{.workers = 2, .fault_plan = &plan});
  auto f = client.submit([] { return 1; });
  EXPECT_THROW(f.get(), fault::InjectedFault);
}

TEST(DaskRecoveryTest, SameSeedGivesIdenticalRecoverySequence) {
  FaultPlan plan;
  plan.seed = 2024;
  plan.rates.worker_oom = 0.5;
  plan.rates.straggler = 0.0;  // pure fail-stop: every fault is logged
  plan.retry.max_attempts = 12;  // out-retry any plausible fault streak
  RecoveryLog log_a;
  RecoveryLog log_b;
  const auto a = dask_triples(&plan, &log_a);
  const auto b = dask_triples(&plan, &log_b);
  EXPECT_EQ(a, b);
  // Task ids are submission-order and decisions are a pure hash, so the
  // canonical sequences match event-for-event across runs regardless of
  // worker-thread interleaving.
  EXPECT_EQ(log_a.canonical(), log_b.canonical());
  EXPECT_GT(log_a.size(), 0u);

  FaultPlan other = plan;
  other.seed = 2025;
  RecoveryLog log_c;
  dask_triples(&other, &log_c);
  EXPECT_NE(log_a.canonical(), log_c.canonical());
}

// ---------------------------------------------------------------- RP --

TEST(RpRecoveryTest, FaultedUnitsRetryAndComplete) {
  for (FaultKind kind : kAllKinds) {
    const FaultPlan plan = once_per_task(kind);
    RecoveryLog log;
    rp::UnitManager um(rp::PilotDescription{
        .cores = 4, .fault_plan = &plan, .recovery_log = &log});
    std::vector<rp::ComputeUnitDescription> descriptions;
    for (int i = 0; i < 8; ++i) {
      const std::string path = "out_" + std::to_string(i) + ".bin";
      descriptions.push_back(
          {.name = "unit_" + std::to_string(i),
           .executable =
               [path, i](rp::SharedFilesystem& fs) {
                 fs.put(path, {static_cast<std::uint8_t>(i)});
               },
           .output_staging = {path}});
    }
    auto units = um.submit_units(std::move(descriptions));
    um.wait_units();
    for (const auto& u : units) {
      EXPECT_EQ(u->state(), rp::UnitState::kDone)
          << "kind=" << fault::to_string(kind);
    }
    for (int i = 0; i < 8; ++i) {
      auto data = um.filesystem().get("out_" + std::to_string(i) + ".bin");
      ASSERT_TRUE(data.ok());
      EXPECT_EQ(data.value(),
                (std::vector<std::uint8_t>{static_cast<std::uint8_t>(i)}));
    }
    if (kind != FaultKind::kStraggler &&
        kind != FaultKind::kFilesystemStall) {
      EXPECT_GT(log.size(), 0u);
      for (const auto& e : log.events()) {
        EXPECT_EQ(e.action, fault::RecoveryAction::kRetryWithBackoff);
      }
    }
  }
}

TEST(RpRecoveryTest, GiveUpCarriesStructuredFailureContext) {
  FaultPlan plan;
  plan.schedule.push_back({FaultKind::kNodeCrash, 0,
                           FaultSpec::kEveryAttempt});
  plan.retry.max_attempts = 2;
  rp::UnitManager um(
      rp::PilotDescription{.cores = 2, .fault_plan = &plan});
  auto units = um.submit_units(
      {{.name = "doomed", .executable = [](rp::SharedFilesystem&) {}}});
  um.wait_units();
  ASSERT_EQ(units[0]->state(), rp::UnitState::kFailed);
  const std::string& reason = units[0]->failure_reason();
  EXPECT_NE(reason.find("engine=rp"), std::string::npos) << reason;
  EXPECT_NE(reason.find("task=0"), std::string::npos);
  EXPECT_NE(reason.find("attempt=1"), std::string::npos);
  EXPECT_NE(reason.find("fault=node-crash"), std::string::npos);
}

// --------------------------------------------------------------- MPI --

TEST(MpiRecoveryTest, CheckpointRestartRecoversEveryFailStopKind) {
  for (FaultKind kind : {FaultKind::kNodeCrash, FaultKind::kWorkerOomKill,
                         FaultKind::kNetworkPartition}) {
    FaultPlan plan;
    plan.schedule.push_back({kind, 0, 0});  // rank 0 dies on attempt 0
    RecoveryLog log;
    std::atomic<int> body_runs{0};
    std::vector<int> sums(4, 0);
    auto report = mpi::run_spmd_with_recovery(
        4,
        [&](mpi::Communicator& comm, fault::CheckpointStore& checkpoints) {
          body_runs.fetch_add(1);
          if (comm.rank() == 0 && !checkpoints.contains("started")) {
            checkpoints.put("started", {1});
          }
          const auto v = comm.allreduce(std::vector<int>{comm.rank() + 1},
                                        [](int a, int b) { return a + b; });
          sums[static_cast<std::size_t>(comm.rank())] = v[0];
        },
        plan, &log);
    // The faulted attempt aborted before any rank entered the body; only
    // the clean relaunch ran it.
    EXPECT_EQ(body_runs.load(), 4) << "kind=" << fault::to_string(kind);
    for (int s : sums) EXPECT_EQ(s, 1 + 2 + 3 + 4);
    EXPECT_GT(report.total.messages_sent, 0u);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log.events()[0].action,
              fault::RecoveryAction::kCheckpointRestart);
    EXPECT_EQ(log.events()[0].fault, kind);
  }
}

TEST(MpiRecoveryTest, SlowdownFaultsDoNotAbort) {
  FaultPlan plan;
  plan.schedule.push_back(
      {FaultKind::kStraggler, FaultSpec::kEveryTask, 0, 1.0, 0.001});
  RecoveryLog log;
  std::atomic<int> body_runs{0};
  mpi::run_spmd_with_recovery(
      3,
      [&](mpi::Communicator& comm, fault::CheckpointStore&) {
        body_runs.fetch_add(1);
        comm.barrier();
      },
      plan, &log);
  EXPECT_EQ(body_runs.load(), 3);
  EXPECT_EQ(log.size(), 0u);  // no recovery decision for pure slowdowns
}

TEST(MpiRecoveryTest, ExhaustedBudgetThrowsInjectedFault) {
  FaultPlan plan;
  plan.schedule.push_back({FaultKind::kNodeCrash, 1,
                           FaultSpec::kEveryAttempt});
  plan.retry.max_attempts = 2;
  RecoveryLog log;
  EXPECT_THROW(
      mpi::run_spmd_with_recovery(
          4, [](mpi::Communicator&, fault::CheckpointStore&) {}, plan,
          &log),
      fault::InjectedFault);
  // Attempt 0 earned a restart; attempt 1 exhausted the 2-try budget.
  ASSERT_EQ(log.size(), 2u);
  const auto canonical = log.canonical();
  EXPECT_NE(canonical[0].find("checkpoint-restart"), std::string::npos);
  EXPECT_NE(canonical[1].find("give-up"), std::string::npos);
}

}  // namespace
}  // namespace mdtask
