#include "mdtask/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include <vector>

namespace mdtask {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, MatchesBatchFormulas) {
  const std::vector<double> xs = {1.0, 2.0, 3.5, -4.0, 10.0, 2.25};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
  EXPECT_EQ(s.min(), -4.0);
  EXPECT_EQ(s.max(), 10.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    (i < 20 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double m = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), m);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), m);
}

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> xs = {5.0, 1.0, 9.0, 3.0};
  EXPECT_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_EQ(percentile(xs, 100.0), 9.0);
}

TEST(PercentileTest, InterpolatesBetweenValues) {
  // sorted: 0, 10 -> p50 = 5
  EXPECT_EQ(percentile({10.0, 0.0}, 50.0), 5.0);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(BatchStatsTest, StddevOfConstantIsZero) {
  const std::vector<double> xs = {4.0, 4.0, 4.0};
  EXPECT_EQ(stddev(xs), 0.0);
}

TEST(BatchStatsTest, KnownStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample stddev of this classic set is sqrt(32/7).
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

}  // namespace
}  // namespace mdtask
