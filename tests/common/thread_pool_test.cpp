#include "mdtask/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mdtask {
namespace {

TEST(ThreadPoolTest, RunsAllPostedJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructionDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.post([&count] { count.fetch_add(1); });
    }
  }  // destructor joins workers
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace mdtask
