#include "mdtask/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mdtask/trace/tracer.h"

namespace mdtask {
namespace {

TEST(ThreadPoolTest, RunsAllPostedJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructionDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.post([&count] { count.fetch_add(1); });
    }
  }  // destructor joins workers
  EXPECT_EQ(count.load(), 50);
}

// ---- stress tests (run under TSan in CI) ----

TEST(ThreadPoolStressTest, OversubscribedManySmallJobs) {
  // Far more threads than cores and far more jobs than threads: the
  // queue/condvar handoff must neither drop nor double-run work.
  ThreadPool pool(32);
  std::atomic<std::uint64_t> sum{0};
  constexpr int kJobs = 20000;
  for (int i = 0; i < kJobs; ++i) {
    pool.post([&sum, i] {
      sum.fetch_add(static_cast<std::uint64_t>(i), std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(),
            static_cast<std::uint64_t>(kJobs) * (kJobs - 1) / 2);
}

TEST(ThreadPoolStressTest, SubmitFromWorkerDoesNotDeadlock) {
  // Jobs that post follow-up jobs from inside a worker (the dask engine
  // does this when a task's dependents become ready). wait_idle must
  // account for the transitively spawned work.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kRoots = 64;
  constexpr int kDepth = 50;
  std::function<void(int)> chain = [&](int remaining) {
    count.fetch_add(1, std::memory_order_relaxed);
    if (remaining > 0) pool.post([&chain, remaining] { chain(remaining - 1); });
  };
  for (int i = 0; i < kRoots; ++i) {
    pool.post([&chain] { chain(kDepth); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), kRoots * (kDepth + 1));
}

TEST(ThreadPoolStressTest, DestructionWithDeepQueueRunsEverything) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 5000; ++i) {
      pool.post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor races job pickup: queued work must still drain.
  }
  EXPECT_EQ(count.load(), 5000);
}

TEST(ThreadPoolStressTest, TracedRunRecordsEveryJobAndClosesAllSpans) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kJobs = 2000;
  {
    ThreadPool pool(8);
    pool.enable_tracing(tracer, tracer.process("pool"), "worker");
    std::atomic<int> count{0};
    for (int i = 0; i < kJobs; ++i) {
      pool.post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), kJobs);
    // wait_idle orders after every job span's closure (the span is
    // destroyed before the worker's active-- handshake).
    EXPECT_EQ(tracer.open_spans(), 0);
  }
  int job_spans = 0;
  int queue_waits = 0;
  for (const auto& e : tracer.events()) {
    if (e.name == "job") ++job_spans;
    if (e.name == "queue-wait") ++queue_waits;
  }
  EXPECT_EQ(job_spans, kJobs);
  EXPECT_EQ(queue_waits, kJobs);
}

TEST(ThreadPoolStressTest, TracedJobThatThrowsThroughSubmitClosesSpan) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  ThreadPool pool(2);
  pool.enable_tracing(tracer, tracer.process("pool"));
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  pool.wait_idle();
  EXPECT_EQ(tracer.open_spans(), 0);
}

TEST(ThreadPoolStressTest, CurrentWorkerTrackVisibleInsideTracedJobs) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  const std::uint32_t pid = tracer.process("pool");
  ThreadPool pool(3);
  pool.enable_tracing(tracer, pid, "executor");

  // Outside any worker thread there is no worker identity.
  EXPECT_EQ(ThreadPool::current_worker_track(), nullptr);
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);

  std::atomic<int> with_track{0};
  for (int i = 0; i < 100; ++i) {
    pool.post([&with_track, pid] {
      const trace::Track* track = ThreadPool::current_worker_track();
      const std::ptrdiff_t index = ThreadPool::current_worker_index();
      if (track != nullptr && track->pid == pid && index >= 0 && index < 3) {
        with_track.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(with_track.load(), 100);
}

}  // namespace
}  // namespace mdtask
