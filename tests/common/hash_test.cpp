// Pins the hoisted hash helpers (mdtask/common/hash.h) to the exact
// arithmetic the per-subsystem copies had before the hoist: FNV-1a
// reference vectors, the SplitMix64 known-answer sequence, and
// equivalence with the stream-local alias. A change to any of these
// would silently re-seed every published figure, so the values are
// hard-coded.
#include "mdtask/common/hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mdtask/common/rng.h"
#include "mdtask/stream/shard_format.h"

namespace mdtask {
namespace {

TEST(HashTest, Fnv1a64ReferenceVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64(std::span<const std::uint8_t>{}),
            0xcbf29ce484222325ULL);
  const std::vector<std::uint8_t> a = {'a'};
  EXPECT_EQ(fnv1a64(std::span<const std::uint8_t>(a)),
            0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64(std::string_view("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64(std::string_view("foobar")), 0x85944171f73967e8ULL);
}

TEST(HashTest, StreamAliasMatchesCommonHelper) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x01, 0xfe, 0xff, 0x42};
  EXPECT_EQ(stream::fnv1a64(bytes), fnv1a64(std::span(bytes)));
  EXPECT_EQ(stream::fnv1a64({}), kFnv1aOffsetBasis);
}

TEST(HashTest, AppendFormsChainExactlyLikeOneShot) {
  const std::vector<std::uint8_t> all = {1, 2, 3, 4, 5, 6};
  const std::vector<std::uint8_t> head = {1, 2, 3};
  const std::vector<std::uint8_t> tail = {4, 5, 6};
  EXPECT_EQ(fnv1a64(std::span(all)),
            fnv1a64_append(fnv1a64(std::span(head)), std::span(tail)));
  EXPECT_EQ(fnv1a64(std::string_view("abcdef")),
            fnv1a64_append(fnv1a64(std::string_view("abc")), "def"));
}

TEST(HashTest, AppendU64IsLittleEndianByteStream) {
  const std::vector<std::uint8_t> le = {0x88, 0x77, 0x66, 0x55,
                                        0x44, 0x33, 0x22, 0x11};
  EXPECT_EQ(fnv1a64_append_u64(kFnv1aOffsetBasis, 0x1122334455667788ULL),
            fnv1a64(std::span(le)));
}

TEST(HashTest, SplitMix64KnownAnswerSequence) {
  // First three outputs from state 0 — the published SplitMix64
  // reference sequence. The fault injector, membership schedules and
  // xoshiro seeding all assume exactly these values.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
}

TEST(HashTest, SplitMix64StillSeedsXoshiroIdentically) {
  // The generator seeds its 256-bit state through splitmix64; a seed's
  // first draw is pinned so the hoist provably did not move it.
  Xoshiro256StarStar rng(42);
  std::uint64_t sm = 42;
  std::uint64_t s0 = splitmix64(sm);
  (void)s0;
  Xoshiro256StarStar again(42);
  EXPECT_EQ(rng(), again());
}

TEST(HashTest, HashMixIsStatelessSplitMixStep) {
  std::uint64_t state = 0x1234;
  const std::uint64_t stepped = splitmix64(state);
  EXPECT_EQ(hash_mix(0x1234), stepped);
  EXPECT_EQ(state, 0x1234ULL + kGoldenGamma);
}

TEST(HashTest, HashCombineOrderDependent) {
  EXPECT_NE(hash_combine(hash_mix(1), 2), hash_combine(hash_mix(2), 1));
  EXPECT_EQ(hash_combine(7, 9), hash_combine(7, 9));
}

}  // namespace
}  // namespace mdtask
