#include "mdtask/common/serial.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace mdtask {
namespace {

TEST(SerialTest, ScalarRoundTrip) {
  ByteWriter w;
  w.put<std::uint32_t>(0xdeadbeef);
  w.put<double>(3.25);
  ByteReader r(w.bytes());
  auto a = r.get<std::uint32_t>();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), 0xdeadbeefu);
  auto b = r.get<double>();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), 3.25);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerialTest, VectorRoundTrip) {
  ByteWriter w;
  const std::vector<float> xs = {1.0f, -2.5f, 3.75f};
  w.put_span<float>(xs);
  ByteReader r(w.bytes());
  auto back = r.get_vector<float>();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), xs);
}

TEST(SerialTest, StringRoundTrip) {
  ByteWriter w;
  w.put_string("hello, world");
  w.put_string("");
  ByteReader r(w.bytes());
  auto a = r.get_string();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), "hello, world");
  auto b = r.get_string();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), "");
}

TEST(SerialTest, TruncatedScalarFails) {
  ByteWriter w;
  w.put<std::uint16_t>(1);
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.get<std::uint64_t>().ok());
}

TEST(SerialTest, TruncatedVectorFails) {
  ByteWriter w;
  w.put<std::uint64_t>(1000);  // claims 1000 elements, provides none
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.get_vector<double>().ok());
}

TEST(SerialTest, SizeTracksPayload) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.put<std::uint8_t>(1);
  EXPECT_EQ(w.size(), 1u);
  w.put_string("abc");  // 8-byte length + 3 bytes
  EXPECT_EQ(w.size(), 12u);
}

TEST(SerialTest, MixedSequenceRoundTrip) {
  ByteWriter w;
  w.put<std::int32_t>(-5);
  w.put_string("traj");
  const std::vector<std::uint64_t> ids = {1, 2, 3, 5, 8};
  w.put_span<std::uint64_t>(ids);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::int32_t>().value(), -5);
  EXPECT_EQ(r.get_string().value(), "traj");
  EXPECT_EQ(r.get_vector<std::uint64_t>().value(), ids);
}

}  // namespace
}  // namespace mdtask
