// Tests for the topology-aware work-stealing internals of ThreadPool:
// grouped/shared routing, elastic membership races, contended external
// posts (the notify-after-unlock path), and the late-enable tracing
// stamp guarantee. The drain/retire and tracing CONTRACT tests live in
// thread_pool_test.cpp; these exercise what the stealing rebuild added.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mdtask/common/thread_pool.h"
#include "mdtask/topo/cpu_topology.h"
#include "mdtask/trace/tracer.h"

namespace mdtask {
namespace {

TEST(ThreadPoolTopoTest, ExplicitTopologyDrivesPlacementAndGroups) {
  // 8 logical = 4 cores x 2 SMT, 2 cores per L2 -> 2 L2 domains.
  ThreadPool pool(4, topo::CpuTopology::synthetic(8, 2, 2), false);
  EXPECT_FALSE(pool.pinned());
  EXPECT_EQ(pool.topology().logical_cpus(), 8u);
  EXPECT_EQ(pool.locality_groups(), 2u);
  // The first 4 placements cover 4 distinct physical cores.
  std::set<int> cores;
  for (std::size_t i = 0; i < 4; ++i) {
    const int cpu = pool.placement_cpu(i);
    ASSERT_GE(cpu, 0);
    cores.insert(pool.topology().cpu(static_cast<std::size_t>(cpu)).core);
  }
  EXPECT_EQ(cores.size(), 4u);
}

TEST(ThreadPoolTopoTest, GroupedPostsRunEverythingOnce) {
  ThreadPool pool(4, topo::CpuTopology::synthetic(4, 1, 2), false);
  constexpr int kGroups = 8;
  constexpr int kMembers = 4;
  std::atomic<int> ran{0};
  for (int g = 0; g < kGroups; ++g) {
    for (int m = 0; m < kMembers; ++m) {
      pool.post_grouped(static_cast<std::uint64_t>(g),
                        static_cast<std::uint64_t>(m),
                        [&ran] { ran.fetch_add(1); });
    }
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kGroups * kMembers);
}

TEST(ThreadPoolTopoTest, SubmitGroupedReturnsResults) {
  ThreadPool pool(2, topo::CpuTopology::synthetic(2), false);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(pool.submit_grouped(
        static_cast<std::uint64_t>(i % 4), static_cast<std::uint64_t>(i),
        [i] { return i * i; }));
  }
  for (int i = 0; i < 16; ++i) EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPoolTopoTest, PostSharedFromWorkerIsPickedUpByIdleWorkers) {
  // A busy worker posting via post_shared must NOT keep the job in its
  // own deque: with the poster blocked, only another worker can run it.
  ThreadPool pool(2, topo::CpuTopology::synthetic(2), false);
  std::atomic<bool> inner_ran{false};
  std::atomic<bool> release{false};
  pool.post([&] {
    pool.post_shared([&inner_ran] { inner_ran.store(true); });
    // Block this worker until the other worker has run the shared job.
    while (!release.load()) std::this_thread::yield();
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!inner_ran.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(inner_ran.load());
  release.store(true);
  pool.wait_idle();
}

// Satellite: post() from many non-worker threads at once. The wake path
// (notify AFTER unlocking mu_) must neither lose wakeups nor deadlock.
TEST(ThreadPoolTopoTest, ContendedExternalPostsRunEverything) {
  ThreadPool pool(4, topo::CpuTopology::synthetic(4), false);
  constexpr int kPosters = 8;
  constexpr int kJobsEach = 500;
  std::atomic<int> ran{0};
  std::vector<std::thread> posters;
  posters.reserve(kPosters);
  for (int p = 0; p < kPosters; ++p) {
    posters.emplace_back([&pool, &ran] {
      for (int j = 0; j < kJobsEach; ++j) {
        pool.post([&ran] { ran.fetch_add(1); });
      }
    });
  }
  for (auto& t : posters) t.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kPosters * kJobsEach);
  EXPECT_EQ(pool.queued(), 0u);
}

// Satellite: retire_workers racing a full queue — the retiring workers'
// queued jobs must be flushed to survivors, and every job must run.
TEST(ThreadPoolTopoTest, RetireWorkersWithFullQueueRunsEverything) {
  ThreadPool pool(8, topo::CpuTopology::synthetic(8), false);
  constexpr int kJobs = 4000;
  std::atomic<int> ran{0};
  std::thread retirer;
  {
    // Seed jobs from a worker so they land in per-worker deques (the
    // path a retiree must drain), then retire concurrently.
    for (int j = 0; j < kJobs; ++j) {
      pool.post([&ran, &pool, j] {
        ran.fetch_add(1);
        if (j % 16 == 0) {
          pool.post([&ran] { ran.fetch_add(1); });
        }
      });
    }
    retirer = std::thread([&pool] {
      for (int i = 0; i < 3; ++i) {
        pool.retire_workers(2);
        std::this_thread::yield();
      }
    });
  }
  retirer.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kJobs + kJobs / 16);
  EXPECT_EQ(pool.size(), 2u);  // 8 - 3*2
}

// Satellite: concurrent add_workers while jobs flow and while another
// thread retires. Membership swaps are serialized under mu_; no job may
// be lost and the pool must end at the expected size.
TEST(ThreadPoolTopoTest, ConcurrentAddAndRetireKeepsAllJobs) {
  ThreadPool pool(2, topo::CpuTopology::synthetic(4), false);
  constexpr int kJobs = 2000;
  std::atomic<int> ran{0};
  std::thread poster([&pool, &ran] {
    for (int j = 0; j < kJobs; ++j) {
      pool.post([&ran] { ran.fetch_add(1); });
    }
  });
  std::thread grower([&pool] {
    for (int i = 0; i < 4; ++i) {
      pool.add_workers(1);
      std::this_thread::yield();
    }
  });
  std::thread shrinker([&pool] {
    for (int i = 0; i < 2; ++i) {
      pool.retire_workers(1);
      std::this_thread::yield();
    }
  });
  poster.join();
  grower.join();
  shrinker.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kJobs);
  EXPECT_EQ(pool.size(), 4u);  // 2 + 4 - 2
}

TEST(ThreadPoolTopoTest, WorkersAddedAfterEnableTracingGetTracks) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  ThreadPool pool(1, topo::CpuTopology::synthetic(4), false);
  pool.enable_tracing(tracer, 7, "w");
  pool.add_workers(2);
  std::atomic<int> ran{0};
  for (int j = 0; j < 64; ++j) {
    pool.post([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 64);
  // Track names w-0..w-2 all registered.
  std::set<std::string> names;
  for (const auto& tn : tracer.track_names()) {
    if (!tn.is_process) names.insert(tn.name);
  }
  EXPECT_TRUE(names.count("w-0"));
  EXPECT_TRUE(names.count("w-1"));
  EXPECT_TRUE(names.count("w-2"));
}

// Satellite: the late-enable gap. Once a tracer is ATTACHED, posts stamp
// their enqueue time even while the tracer is disabled, so flipping
// set_enabled(true) mid-flight yields correct queue-wait spans for jobs
// posted during the disabled window.
TEST(ThreadPoolTracingTest, JobsPostedWhileDisabledGetQueueWaitsAfterEnable) {
  trace::Tracer tracer;  // disabled at attach time
  ThreadPool pool(1, topo::CpuTopology::synthetic(1), false);
  pool.enable_tracing(tracer, 1, "w");

  // Occupy the single worker so posted jobs sit queued across the
  // enable flip; wait until it is actually running so its own (still
  // disabled) pickup cannot race the flip below.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  pool.post([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  constexpr int kJobs = 8;
  for (int j = 0; j < kJobs; ++j) {
    pool.post([] {});  // stamped: tracer attached, though disabled
  }
  tracer.set_enabled(true);
  release.store(true);
  pool.wait_idle();

  int queue_waits = 0;
  for (const auto& e : tracer.events()) {
    if (e.name == "queue-wait") ++queue_waits;
  }
  EXPECT_EQ(queue_waits, kJobs);
}

TEST(ThreadPoolTracingTest, JobsPostedBeforeAnyTracerAttachCarryNoStamp) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  ThreadPool pool(1, topo::CpuTopology::synthetic(1), false);

  std::atomic<bool> release{false};
  pool.post([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  pool.post([] {});  // no tracer attached yet: no time base, no stamp
  pool.enable_tracing(tracer, 1, "w");
  release.store(true);
  pool.wait_idle();

  for (const auto& e : tracer.events()) {
    EXPECT_NE(e.name, "queue-wait")
        << "pre-attach job must not fabricate a queue-wait";
  }
}

TEST(ThreadPoolTopoTest, PinnedPoolOnHostTopologyStillRunsJobs) {
  // Default ctor path: host topology + MDTASK_PIN_THREADS. Whatever the
  // machine shape (1-CPU CI container included), jobs must run and the
  // accessors must be coherent.
  ThreadPool pool(3);
  EXPECT_EQ(pool.topology().logical_cpus(),
            topo::CpuTopology::host().logical_cpus());
  std::atomic<int> ran{0};
  for (int j = 0; j < 128; ++j) {
    pool.post([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 128);
  EXPECT_GE(pool.locality_groups(), 1u);
}

}  // namespace
}  // namespace mdtask
