#include "mdtask/common/error.h"

#include <gtest/gtest.h>

namespace mdtask {
namespace {

TEST(ErrorTest, ToStringIncludesCodeAndMessage) {
  Error e(ErrorCode::kIoError, "disk on fire");
  EXPECT_EQ(e.to_string(), "kIoError: disk on fire");
}

TEST(ErrorTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_STRNE(to_string(static_cast<ErrorCode>(c)), "kUnknown");
  }
}

TEST(ErrorTest, ReliabilityCodesAreDistinct) {
  // The serving path reports deadline misses and breaker rejections
  // separately from admission sheds; the names are load-bearing for
  // per-class SLO accounting in bench_service.
  EXPECT_STREQ(to_string(ErrorCode::kDeadlineExceeded), "kDeadlineExceeded");
  EXPECT_STREQ(to_string(ErrorCode::kCircuitOpen), "kCircuitOpen");
  EXPECT_NE(ErrorCode::kDeadlineExceeded, ErrorCode::kOverloaded);
  EXPECT_NE(ErrorCode::kCircuitOpen, ErrorCode::kOverloaded);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Error(ErrorCode::kOutOfRange, "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string(100, 'x');
  std::string s = std::move(r).value();
  EXPECT_EQ(s.size(), 100u);
}

TEST(StatusTest, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(Status::success().ok());
}

TEST(StatusTest, ErrorStatus) {
  Status s = Error(ErrorCode::kUnavailable, "db down");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kUnavailable);
}

TEST(TaskFailureContextTest, RendersAllFields) {
  const TaskFailureContext ctx{"dask", 17, 2, "worker-oom-kill"};
  EXPECT_EQ(ctx.to_string(),
            " [engine=dask task=17 attempt=2 fault=worker-oom-kill]");
}

TEST(TaskFailureContextTest, OmitsEmptyFaultKind) {
  const TaskFailureContext ctx{"rp", 3, 0, ""};
  EXPECT_EQ(ctx.to_string(), " [engine=rp task=3 attempt=0]");
}

TEST(TaskFailureContextTest, ErrorCarriesContext) {
  const Error err = Error(ErrorCode::kUnavailable, "unit lost")
                        .with_task({"mpi", 5, 1, "node-crash"});
  ASSERT_TRUE(err.task().has_value());
  EXPECT_EQ(err.task()->engine, "mpi");
  EXPECT_EQ(err.task()->task_id, 5u);
  EXPECT_EQ(err.task()->attempt, 1);
  EXPECT_EQ(err.task()->fault_kind, "node-crash");
  const std::string rendered = err.to_string();
  EXPECT_NE(rendered.find("unit lost"), std::string::npos);
  EXPECT_NE(rendered.find("engine=mpi task=5 attempt=1 fault=node-crash"),
            std::string::npos);
}

TEST(TaskFailureContextTest, LvalueBuilderAndAbsentContext) {
  Error err(ErrorCode::kInternal, "plain");
  EXPECT_FALSE(err.task().has_value());
  EXPECT_EQ(err.to_string().find("engine="), std::string::npos);
  err.with_task({"spark", 1, 0, "straggler"});
  ASSERT_TRUE(err.task().has_value());
  EXPECT_EQ(err.task()->engine, "spark");
}

}  // namespace
}  // namespace mdtask
