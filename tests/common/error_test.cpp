#include "mdtask/common/error.h"

#include <gtest/gtest.h>

namespace mdtask {
namespace {

TEST(ErrorTest, ToStringIncludesCodeAndMessage) {
  Error e(ErrorCode::kIoError, "disk on fire");
  EXPECT_EQ(e.to_string(), "kIoError: disk on fire");
}

TEST(ErrorTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_STRNE(to_string(static_cast<ErrorCode>(c)), "kUnknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Error(ErrorCode::kOutOfRange, "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string(100, 'x');
  std::string s = std::move(r).value();
  EXPECT_EQ(s.size(), 100u);
}

TEST(StatusTest, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(Status::success().ok());
}

TEST(StatusTest, ErrorStatus) {
  Status s = Error(ErrorCode::kUnavailable, "db down");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace mdtask
