// Tests for the ThreadPool steal-origin/latency counters: forced deque
// stealing on a synthetic SMT topology buckets steals by hardware tier,
// external posts count as overflow grabs, and with tracing enabled the
// same data surfaces as `pool:steal-*` counters in trace summaries.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>

#include "mdtask/common/thread_pool.h"
#include "mdtask/topo/cpu_topology.h"
#include "mdtask/trace/summary.h"
#include "mdtask/trace/tracer.h"

namespace mdtask {
namespace {

// Runs a job on some worker that posts kChildren jobs into its OWN
// deque and then blocks until every child ran. With only one other
// worker, the children can only run by being stolen from that deque.
int force_deque_steals(ThreadPool& pool) {
  constexpr int kChildren = 64;
  std::atomic<int> ran{0};
  pool.post_shared([&pool, &ran] {
    for (int j = 0; j < kChildren; ++j) {
      pool.post([&ran] { ran.fetch_add(1); });
    }
    while (ran.load() < kChildren) std::this_thread::yield();
  });
  pool.wait_idle();
  return ran.load();
}

TEST(ThreadPoolStealCountersTest, DequeStealsBucketedBySmtTier) {
  // 2 logical CPUs = 1 core x 2 SMT: the only victim is an SMT sibling,
  // so every deque steal must land in the smt bucket.
  ThreadPool pool(2, topo::CpuTopology::synthetic(2, 2, 1), false);
  ASSERT_EQ(force_deque_steals(pool), 64);
  const ThreadPool::StealCounters c = pool.steal_counters();
  EXPECT_GT(c.deque_steals(), 0u);
  EXPECT_EQ(c.deque_steals(), c.smt);
  EXPECT_EQ(c.l2, 0u);
  EXPECT_EQ(c.package, 0u);
  EXPECT_EQ(c.rest, 0u);
  EXPECT_GE(c.steal_latency_total_us, 0.0);
  EXPECT_GE(c.steal_latency_max_us, 0.0);
  EXPECT_GE(c.steal_latency_total_us, c.steal_latency_max_us);
}

TEST(ThreadPoolStealCountersTest, DistantVictimsLandOutsideSmtBucket) {
  // 2 single-thread cores in separate L2 domains and separate packages:
  // the victim is neither an SMT sibling nor an L2/LLC peer.
  ThreadPool pool(2, topo::CpuTopology::synthetic(2, 1, 1, 1), false);
  ASSERT_EQ(force_deque_steals(pool), 64);
  const ThreadPool::StealCounters c = pool.steal_counters();
  EXPECT_GT(c.deque_steals(), 0u);
  EXPECT_EQ(c.smt, 0u);
  EXPECT_EQ(c.deque_steals(), c.rest);
}

TEST(ThreadPoolStealCountersTest, ExternalPostsCountAsOverflowGrabs) {
  ThreadPool pool(2, topo::CpuTopology::synthetic(2), false);
  std::atomic<int> ran{0};
  for (int j = 0; j < 256; ++j) {
    pool.post([&ran] { ran.fetch_add(1); });  // non-worker -> overflow
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 256);
  const ThreadPool::StealCounters c = pool.steal_counters();
  EXPECT_GT(c.overflow_grabs, 0u);
  EXPECT_GE(c.overflow_jobs, c.overflow_grabs);
}

TEST(ThreadPoolStealCountersTest, CountersStartAtZero) {
  ThreadPool pool(1, topo::CpuTopology::synthetic(1), false);
  const ThreadPool::StealCounters c = pool.steal_counters();
  EXPECT_EQ(c.deque_steals(), 0u);
  EXPECT_EQ(c.overflow_grabs, 0u);
  EXPECT_EQ(c.overflow_jobs, 0u);
  EXPECT_EQ(c.steal_latency_total_us, 0.0);
}

TEST(ThreadPoolStealCountersTest, StealsSurfaceInTraceSummary) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  ThreadPool pool(2, topo::CpuTopology::synthetic(2, 2, 1), false);
  pool.enable_tracing(tracer, 1, "w");
  ASSERT_EQ(force_deque_steals(pool), 64);
  const ThreadPool::StealCounters c = pool.steal_counters();
  ASSERT_GT(c.smt, 0u);

  const trace::TraceSummary summary = trace::summarize(tracer);
  bool saw_origin = false;
  bool saw_latency = false;
  for (const auto& counter : summary.counters) {
    if (counter.name == "pool:steal-smt") {
      saw_origin = true;
      EXPECT_GT(counter.samples, 0u);
      // Cumulative series: the max sample equals the final tally.
      EXPECT_EQ(counter.max, static_cast<double>(c.smt));
    }
    if (counter.name == "pool:steal-latency-us") {
      saw_latency = true;
      EXPECT_GT(counter.samples, 0u);
      EXPECT_GE(counter.max, 0.0);
    }
  }
  EXPECT_TRUE(saw_origin);
  EXPECT_TRUE(saw_latency);
}

TEST(ThreadPoolStealCountersTest, OverflowGrabsSurfaceInTraceSummary) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  ThreadPool pool(2, topo::CpuTopology::synthetic(2), false);
  pool.enable_tracing(tracer, 1, "w");
  std::atomic<int> ran{0};
  for (int j = 0; j < 256; ++j) {
    pool.post([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  const trace::TraceSummary summary = trace::summarize(tracer);
  bool saw = false;
  for (const auto& counter : summary.counters) {
    if (counter.name == "pool:steal-overflow") {
      saw = true;
      EXPECT_GT(counter.samples, 0u);
    }
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace mdtask
