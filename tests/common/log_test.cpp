#include "mdtask/common/log.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mdtask {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LogTest, SuppressedLevelsDoNotCrash) {
  set_log_level(LogLevel::kOff);
  log_line(LogLevel::kError, "should be swallowed");
  MDTASK_LOG_INFO << "also swallowed " << 42;
  SUCCEED();
}

TEST_F(LogTest, StreamMacroComposesMessage) {
  set_log_level(LogLevel::kOff);  // keep test output clean
  // The macro must accept mixed types without compile errors.
  MDTASK_LOG(LogLevel::kDebug) << "x=" << 1 << " y=" << 2.5 << " z=" << 'c';
  SUCCEED();
}

TEST_F(LogTest, ConcurrentLoggingIsSafe) {
  set_log_level(LogLevel::kOff);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        log_line(LogLevel::kWarn, "concurrent line");
      }
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}

}  // namespace
}  // namespace mdtask
