#include "mdtask/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mdtask {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Xoshiro256StarStar a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Xoshiro256StarStar rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Xoshiro256StarStar rng(13);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(RngTest, BoundedStaysInBound) {
  Xoshiro256StarStar rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(10), 10u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(RngTest, BoundedCoversAllValues) {
  Xoshiro256StarStar rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, JumpProducesIndependentStream) {
  Xoshiro256StarStar a(23);
  Xoshiro256StarStar b(23);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

}  // namespace
}  // namespace mdtask
