#include "mdtask/common/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mdtask {
namespace {

TEST(TableTest, RenderContainsTitleHeaderAndRows) {
  Table t("My Figure");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  const std::string s = t.render();
  EXPECT_NE(s.find("My Figure"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(TableTest, RejectsColumnMismatch) {
  Table t("x");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  Table t("x");
  t.set_header({"name", "value"});
  t.add_row({"a,b", "he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(TableTest, FmtBytesUnits) {
  EXPECT_EQ(Table::fmt_bytes(512), "512.00 B");
  EXPECT_EQ(Table::fmt_bytes(2048), "2.00 KiB");
  EXPECT_EQ(Table::fmt_bytes(3.0 * 1024 * 1024), "3.00 MiB");
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table t("x");
  t.set_header({"k", "v"});
  t.add_row({"alpha", "1"});
  const std::string path = ::testing::TempDir() + "/table_test.csv";
  ASSERT_TRUE(t.write_csv(path).ok());
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), "k,v\nalpha,1\n");
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvToBadPathFails) {
  Table t("x");
  EXPECT_FALSE(t.write_csv("/nonexistent-dir-xyz/file.csv").ok());
}

}  // namespace
}  // namespace mdtask
