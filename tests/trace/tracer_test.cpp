// Tracer/Span semantics: RAII closure (including during exception
// unwinding), cross-thread recording, the disabled fast path, and track
// registration — the contracts every instrumented engine relies on.
#include "mdtask/trace/tracer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mdtask::trace {
namespace {

TEST(TracerTest, DisabledTracerHandsOutInertSpans) {
  Tracer tracer;  // disabled by default
  {
    Span span = tracer.span(Track{1, 0}, "work", "test");
    EXPECT_FALSE(span.active());
    span.arg("key", "value");  // must be a no-op, not a crash
  }
  tracer.complete(Track{1, 0}, "explicit", "test", 0.0, 1.0);
  tracer.counter(Track{1, 0}, "count", 0.0, 1.0);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_TRUE(tracer.counters().empty());
  EXPECT_EQ(tracer.open_spans(), 0);
}

TEST(TracerTest, SpanRecordsOnDestruction) {
  Tracer tracer;
  tracer.set_enabled(true);
  const Track track{tracer.process("p"), 0};
  {
    Span span = tracer.span(track, "work", "test");
    EXPECT_TRUE(span.active());
    EXPECT_EQ(tracer.open_spans(), 1);
    EXPECT_EQ(tracer.event_count(), 0u);  // nothing recorded while open
  }
  EXPECT_EQ(tracer.open_spans(), 0);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(TracerTest, NestedSpansCloseInnerFirstAndStayContained) {
  Tracer tracer;
  tracer.set_enabled(true);
  const Track track{tracer.process("p"), 0};
  {
    Span outer = tracer.span(track, "outer", "test");
    {
      Span inner = tracer.span(track, "inner", "test");
      EXPECT_EQ(tracer.open_spans(), 2);
    }
    EXPECT_EQ(tracer.open_spans(), 1);
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Inner is recorded first (closed first), and its interval must lie
  // inside the outer interval — what a trace viewer renders as nesting.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].start_us + events[0].dur_us,
            events[1].start_us + events[1].dur_us);
}

TEST(TracerTest, SpanClosesDuringExceptionUnwinding) {
  Tracer tracer;
  tracer.set_enabled(true);
  const Track track{tracer.process("p"), 0};
  try {
    Span span = tracer.span(track, "doomed", "test");
    span.arg("stage", "before-throw");
    throw std::runtime_error("task failed");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(tracer.open_spans(), 0);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "doomed");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].second, "before-throw");
}

TEST(TracerTest, EndIsIdempotentAndMoveTransfersOwnership) {
  Tracer tracer;
  tracer.set_enabled(true);
  const Track track{tracer.process("p"), 0};

  Span a = tracer.span(track, "moved", "test");
  Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): tested
  EXPECT_TRUE(b.active());
  EXPECT_EQ(tracer.open_spans(), 1);

  b.end();
  EXPECT_EQ(tracer.open_spans(), 0);
  b.end();  // second end must not double-record
  EXPECT_EQ(tracer.event_count(), 1u);

  // Move-assigning over an open span closes the target first.
  Span c = tracer.span(track, "closed-by-assign", "test");
  Span d = tracer.span(track, "survivor", "test");
  c = std::move(d);
  EXPECT_EQ(tracer.open_spans(), 1);
  c.end();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].name, "closed-by-assign");
  EXPECT_EQ(events[2].name, "survivor");
}

TEST(TracerTest, NumericArgsRenderDeterministically) {
  EXPECT_EQ(format_number(42.0), "42");
  EXPECT_EQ(format_number(-7.0), "-7");
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(2.5), "2.5");
  EXPECT_EQ(format_number(1.0 / 3.0), "0.333333");

  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span span = tracer.span(Track{1, 0}, "args", "test");
    span.arg_num("partition", 17);
    span.arg_num("fraction", 0.25);
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].second, "17");
  EXPECT_EQ(events[0].args[1].second, "0.25");
}

TEST(TracerTest, ProcessIsIdempotentAndThreadAllocatesFreshTids) {
  Tracer tracer;
  const std::uint32_t a = tracer.process("spark");
  const std::uint32_t b = tracer.process("dask");
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.process("spark"), a);

  const Track t0 = tracer.thread(a, "worker");
  const Track t1 = tracer.thread(a, "worker");  // same name, fresh tid
  EXPECT_EQ(t0.pid, a);
  EXPECT_NE(t0.tid, t1.tid);
  // tids are per-process: the other pid restarts from its own sequence.
  EXPECT_EQ(tracer.thread(b, "worker").tid, t0.tid);
}

TEST(TracerTest, NamedThreadReusesExistingTrack) {
  Tracer tracer;
  const std::uint32_t pid = tracer.process("workflow");
  const Track first = tracer.named_thread(pid, "driver");
  const Track again = tracer.named_thread(pid, "driver");
  EXPECT_EQ(first.tid, again.tid);
  EXPECT_NE(tracer.named_thread(pid, "other").tid, first.tid);
  // Same name under a different pid is a distinct track.
  const std::uint32_t pid2 = tracer.process("engine");
  EXPECT_EQ(tracer.named_thread(pid2, "driver").pid, pid2);
}

TEST(TracerTest, CrossThreadSpansAllRecorded) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::uint32_t pid = tracer.process("pool");
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 250;

  std::vector<Track> tracks;
  tracks.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    std::string name = "w";
    name += std::to_string(t);
    tracks.push_back(tracer.thread(pid, name));
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, track = tracks[static_cast<std::size_t>(
                              t)]] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span = tracer.span(track, "op", "test");
        span.arg_num("i", i);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(tracer.open_spans(), 0);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  std::vector<int> per_tid(kThreads, 0);
  for (const auto& e : events) {
    ASSERT_LT(e.track.tid, static_cast<std::uint32_t>(kThreads));
    ++per_tid[e.track.tid];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_tid[t], kSpansPerThread);
}

TEST(TracerTest, ClearDropsEventsButKeepsTracksAndToggle) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::uint32_t pid = tracer.process("p");
  const Track track = tracer.thread(pid, "t");
  tracer.complete(track, "a", "test", 0.0, 1.0);
  tracer.counter(track, "c", 0.0, 2.0);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_TRUE(tracer.counters().empty());
  EXPECT_TRUE(tracer.enabled());
  EXPECT_EQ(tracer.track_names().size(), 2u);  // process + thread survive
  // The pid/tid sequences continue, they do not restart.
  EXPECT_EQ(tracer.process("p"), pid);
  EXPECT_EQ(tracer.thread(pid, "t2").tid, track.tid + 1);
}

TEST(TracerTest, ScopedSpanMacroRecords) {
  Tracer tracer;
  tracer.set_enabled(true);
  const Track track{tracer.process("p"), 0};
  {
    MDTASK_SCOPED_SPAN(span, tracer, track, "macro", "test");
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "macro");
}

}  // namespace
}  // namespace mdtask::trace
