// Golden-file test for the Chrome trace exporter.
//
// A fixed-duration workload replayed through the DES produces spans
// stamped with VIRTUAL time, so the exported JSON must be byte-identical
// on every run, on every machine — the determinism contract that makes
// traces diffable artifacts. The golden bytes live in
// trace/golden/des_trace.json; regenerate with
//   MDTASK_UPDATE_GOLDEN=1 ./trace_test --gtest_filter='*Golden*'
// after an intentional format change, and review the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "mdtask/sim/simulation.h"
#include "mdtask/trace/chrome_export.h"
#include "mdtask/trace/tracer.h"

namespace mdtask::trace {
namespace {

constexpr const char* kGoldenPath =
    MDTASK_TEST_SOURCE_DIR "/trace/golden/des_trace.json";

/// Replays a small fixed workload: 5 tasks with hard-coded durations
/// staggered onto a 2-server resource (forcing queueing and slot reuse),
/// a queue-depth counter, and one explicit span with args that exercise
/// string escaping. No wall-clock value can reach the tracer.
void replay_fixed_workload(Tracer& tracer) {
  tracer.set_enabled(true);
  const std::uint32_t pid = tracer.process("des");
  const Track meta = tracer.named_thread(pid, "scheduler");

  sim::Simulation simulation;
  sim::Resource cores(simulation, 2);
  cores.set_trace(&tracer, pid, "core", "task");

  const double durations[] = {0.004, 0.002, 0.003, 0.001, 0.002};
  for (int i = 0; i < 5; ++i) {
    simulation.at(0.0005 * i, [&, i] {
      cores.acquire(durations[i], [] {});
      tracer.counter(meta, "queued", simulation.now() * 1e6,
                     static_cast<double>(cores.queued()));
    });
  }
  const double makespan = simulation.run();
  tracer.complete(meta, "replay", "workflow", 0.0, makespan * 1e6,
                  {{"tasks", "5"},
                   {"note", "fixed \"golden\" workload\n(2 cores)"}});
}

std::string export_fixed_workload() {
  Tracer tracer;
  replay_fixed_workload(tracer);
  ChromeExportOptions options;
  options.sort_events = true;
  return to_chrome_json(tracer, options);
}

TEST(ChromeExportGoldenTest, DesTraceMatchesGoldenBytes) {
  const std::string actual = export_fixed_workload();

  if (std::getenv("MDTASK_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "golden file regenerated at " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << kGoldenPath
      << " — regenerate with MDTASK_UPDATE_GOLDEN=1";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(actual, golden.str());
}

TEST(ChromeExportGoldenTest, ReplayIsByteIdenticalAcrossRuns) {
  // Two independent simulations and two exports of the same tracer must
  // all agree — any wall-clock leakage into the DES path breaks this.
  const std::string first = export_fixed_workload();
  const std::string second = export_fixed_workload();
  EXPECT_EQ(first, second);

  Tracer tracer;
  replay_fixed_workload(tracer);
  ChromeExportOptions options;
  options.sort_events = true;
  EXPECT_EQ(to_chrome_json(tracer, options), to_chrome_json(tracer, options));
}

TEST(ChromeExportGoldenTest, SortNormalizesRecordingOrder) {
  // The same events recorded in different interleavings (as concurrent
  // workers would) export identically once sort_events is on.
  const auto record = [](Tracer& tracer, bool reversed) {
    tracer.set_enabled(true);
    const std::uint32_t pid = tracer.process("p");
    const Track t0 = tracer.named_thread(pid, "w0");
    const Track t1 = tracer.named_thread(pid, "w1");
    if (reversed) {
      tracer.complete(t1, "b", "test", 10.0, 5.0);
      tracer.counter(t1, "n", 20.0, 2.0);
      tracer.complete(t0, "a", "test", 0.0, 5.0);
      tracer.counter(t0, "n", 10.0, 1.0);
    } else {
      tracer.complete(t0, "a", "test", 0.0, 5.0);
      tracer.counter(t0, "n", 10.0, 1.0);
      tracer.complete(t1, "b", "test", 10.0, 5.0);
      tracer.counter(t1, "n", 20.0, 2.0);
    }
  };
  Tracer forward;
  record(forward, false);
  Tracer reversed;
  record(reversed, true);
  ChromeExportOptions options;
  options.sort_events = true;
  EXPECT_EQ(to_chrome_json(forward, options),
            to_chrome_json(reversed, options));
}

TEST(ChromeExportTest, EscapesStringsAndOmitsMetadataWhenAsked) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::uint32_t pid = tracer.process("quote\"slash\\");
  tracer.complete(Track{pid, 0}, "tab\there", "line\nbreak", 1.0, 2.0,
                  {{"k", "\x01"}});
  const std::string with = to_chrome_json(tracer);
  EXPECT_NE(with.find("quote\\\"slash\\\\"), std::string::npos);
  EXPECT_NE(with.find("tab\\there"), std::string::npos);
  EXPECT_NE(with.find("line\\nbreak"), std::string::npos);
  EXPECT_NE(with.find("\\u0001"), std::string::npos);
  EXPECT_NE(with.find("process_name"), std::string::npos);

  ChromeExportOptions bare;
  bare.metadata = false;
  const std::string without = to_chrome_json(tracer, bare);
  EXPECT_EQ(without.find("process_name"), std::string::npos);
  EXPECT_NE(without.find("tab\\there"), std::string::npos);
}

TEST(ChromeExportTest, WriteChromeTraceReportsIoError) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete(Track{1, 0}, "x", "t", 0.0, 1.0);
  const auto bad =
      write_chrome_trace(tracer, "/nonexistent-dir/trace.json");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace mdtask::trace
