// Trace summary aggregation: per-(category, name) duration percentiles
// and counter finals, plus the table rendering the benches print.
#include "mdtask/trace/summary.h"

#include <gtest/gtest.h>

#include <string>

namespace mdtask::trace {
namespace {

TEST(SummaryTest, EmptyTracerSummarizesToNothing) {
  Tracer tracer;
  const TraceSummary summary = summarize(tracer);
  EXPECT_TRUE(summary.spans.empty());
  EXPECT_TRUE(summary.counters.empty());
}

TEST(SummaryTest, NearestRankPercentilesOverUniformDurations) {
  Tracer tracer;
  tracer.set_enabled(true);
  const Track track{1, 0};
  // Durations 1..100 us, recorded out of order: percentiles must not
  // depend on recording order.
  for (int i = 100; i >= 1; --i) {
    tracer.complete(track, "op", "cat", 0.0, static_cast<double>(i));
  }
  const TraceSummary summary = summarize(tracer);
  ASSERT_EQ(summary.spans.size(), 1u);
  const SpanStats& s = summary.spans[0];
  EXPECT_EQ(s.category, "cat");
  EXPECT_EQ(s.name, "op");
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.total_us, 5050.0);
  EXPECT_DOUBLE_EQ(s.p50_us, 50.0);  // nearest-rank
  EXPECT_DOUBLE_EQ(s.p95_us, 95.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 99.0);
  EXPECT_DOUBLE_EQ(s.max_us, 100.0);
}

TEST(SummaryTest, SingleSpanHasDegeneratePercentiles) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete(Track{1, 0}, "lonely", "cat", 0.0, 7.0);
  const TraceSummary summary = summarize(tracer);
  ASSERT_EQ(summary.spans.size(), 1u);
  EXPECT_DOUBLE_EQ(summary.spans[0].p50_us, 7.0);
  EXPECT_DOUBLE_EQ(summary.spans[0].p95_us, 7.0);
  EXPECT_DOUBLE_EQ(summary.spans[0].p99_us, 7.0);
  EXPECT_DOUBLE_EQ(summary.spans[0].max_us, 7.0);
}

TEST(SummaryTest, GroupsByCategoryAndNameInSortedOrder) {
  Tracer tracer;
  tracer.set_enabled(true);
  const Track track{1, 0};
  tracer.complete(track, "task", "task", 0.0, 1.0);
  tracer.complete(track, "bcast", "collective", 0.0, 2.0);
  tracer.complete(track, "task", "task", 0.0, 3.0);  // same group
  tracer.complete(track, "gather", "collective", 0.0, 4.0);
  const TraceSummary summary = summarize(tracer);
  ASSERT_EQ(summary.spans.size(), 3u);
  EXPECT_EQ(summary.spans[0].name, "bcast");
  EXPECT_EQ(summary.spans[1].name, "gather");
  EXPECT_EQ(summary.spans[2].name, "task");
  EXPECT_EQ(summary.spans[2].count, 2u);
  EXPECT_DOUBLE_EQ(summary.spans[2].total_us, 4.0);
}

TEST(SummaryTest, CountersKeepLastAndMax) {
  Tracer tracer;
  tracer.set_enabled(true);
  const Track track{1, 0};
  tracer.counter(track, "queued", 0.0, 3.0);
  tracer.counter(track, "queued", 1.0, 9.0);
  tracer.counter(track, "queued", 2.0, 4.0);
  tracer.counter(track, "bytes", 0.0, 100.0);
  const TraceSummary summary = summarize(tracer);
  ASSERT_EQ(summary.counters.size(), 2u);
  EXPECT_EQ(summary.counters[0].name, "bytes");  // sorted by name
  EXPECT_EQ(summary.counters[1].name, "queued");
  EXPECT_EQ(summary.counters[1].samples, 3u);
  EXPECT_DOUBLE_EQ(summary.counters[1].last, 4.0);
  EXPECT_DOUBLE_EQ(summary.counters[1].max, 9.0);
}

TEST(SummaryTest, TableRendersOneRowPerGroupPlusCounters) {
  Tracer tracer;
  tracer.set_enabled(true);
  const Track track{1, 0};
  tracer.complete(track, "task", "task", 0.0, 1500.0);  // 1.5 ms
  tracer.counter(track, "tasks_executed", 0.0, 42.0);
  const std::string rendered =
      to_table(summarize(tracer), "digest").render();
  EXPECT_NE(rendered.find("digest"), std::string::npos);
  EXPECT_NE(rendered.find("task"), std::string::npos);
  EXPECT_NE(rendered.find("1.500"), std::string::npos);  // total_ms
  EXPECT_NE(rendered.find("(counter)"), std::string::npos);
  EXPECT_NE(rendered.find("tasks_executed"), std::string::npos);
  EXPECT_NE(rendered.find("42"), std::string::npos);
}

}  // namespace
}  // namespace mdtask::trace
