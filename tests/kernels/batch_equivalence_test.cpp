// Property-based equivalence of the three KernelPolicy tiers.
//
// Contract under test (mdtask/kernels/policy.h):
//  * kBlocked reproduces kScalar bit-for-bit (same accumulation order).
//  * kVectorized accumulates in single precision: values agree with
//    kScalar to ~1e-6 relative (asserted at 1e-4 with headroom).
//  * The cutoff kernel emits identical pair lists under every policy.
//  * The blocked early-break Hausdorff never evaluates more frame pairs
//    than the naive scan.
#include "mdtask/kernels/batch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "mdtask/common/rng.h"
#include "mdtask/traj/generators.h"

namespace mdtask::kernels {
namespace {

/// Relative tolerance for the single-precision kVectorized tier; the
/// periodic double drain bounds the true error near 1e-6.
constexpr double kVecRelTol = 1e-4;

FramePack make_pack(std::uint64_t seed, std::size_t frames,
                    std::size_t atoms) {
  traj::ProteinTrajectoryParams p;
  p.atoms = atoms;
  p.frames = frames;
  p.seed = seed;
  return pack_trajectory(traj::make_protein_trajectory(p));
}

std::vector<traj::Vec3> make_cloud(std::uint64_t seed, std::size_t n,
                                   double side) {
  Xoshiro256StarStar rng(seed);
  std::vector<traj::Vec3> pts(n);
  for (auto& p : pts) {
    p = {static_cast<float>(rng.uniform(0.0, side)),
         static_cast<float>(rng.uniform(0.0, side)),
         static_cast<float>(rng.uniform(0.0, side))};
  }
  return pts;
}

/// Sizes straddling the tile/padding boundaries the kernels block on.
const std::size_t kFrameSizes[] = {1, 2, kFrameTile - 1, kFrameTile,
                                   kFrameTile + 1, 37};
const std::size_t kAtomSizes[] = {1, 3, 15, 16, 17, 61};

TEST(BatchEquivalenceTest, BlockedSumsqIsBitIdenticalToScalar) {
  std::uint64_t seed = 1;
  for (const std::size_t frames : kFrameSizes) {
    for (const std::size_t atoms : kAtomSizes) {
      const auto a = make_pack(seed, frames, atoms);
      const auto b = make_pack(seed + 1000, frames, atoms);
      ++seed;
      for (std::size_t i = 0; i < frames; ++i) {
        for (std::size_t j = 0; j < frames; ++j) {
          EXPECT_DOUBLE_EQ(
              frame_sumsq_packed(a, i, b, j, KernelPolicy::kScalar),
              frame_sumsq_packed(a, i, b, j, KernelPolicy::kBlocked))
              << "frames " << frames << " atoms " << atoms;
        }
      }
    }
  }
}

TEST(BatchEquivalenceTest, VectorizedSumsqWithinRelativeTolerance) {
  std::uint64_t seed = 50;
  for (const std::size_t frames : kFrameSizes) {
    for (const std::size_t atoms : kAtomSizes) {
      const auto a = make_pack(seed, frames, atoms);
      const auto b = make_pack(seed + 1000, frames, atoms);
      ++seed;
      for (std::size_t i = 0; i < frames; ++i) {
        for (std::size_t j = 0; j < frames; ++j) {
          const double ref =
              frame_sumsq_packed(a, i, b, j, KernelPolicy::kScalar);
          const double vec =
              frame_sumsq_packed(a, i, b, j, KernelPolicy::kVectorized);
          EXPECT_NEAR(vec, ref, kVecRelTol * std::max(ref, 1.0))
              << "frames " << frames << " atoms " << atoms;
        }
      }
    }
  }
}

TEST(BatchEquivalenceTest, SumsqSelfPairIsZeroUnderEveryPolicy) {
  const auto a = make_pack(7, 4, 33);
  for (const auto policy : kAllPolicies) {
    EXPECT_EQ(frame_sumsq_packed(a, 2, a, 2, policy), 0.0);
  }
}

TEST(BatchEquivalenceTest, OneToManyMatchesPerPairCalls) {
  const auto a = make_pack(3, 9, 29);
  const auto b = make_pack(4, 21, 29);
  for (const auto policy : kAllPolicies) {
    std::vector<double> sums(b.frames());
    const std::size_t j0 = 2, j1 = 19;  // deliberately off-tile bounds
    const double min_sumsq = sumsq_one_to_many(
        a, 5, b, j0, j1, std::span(sums).subspan(0, j1 - j0), policy);
    double expect_min = std::numeric_limits<double>::infinity();
    for (std::size_t j = j0; j < j1; ++j) {
      const double s = frame_sumsq_packed(a, 5, b, j, policy);
      EXPECT_DOUBLE_EQ(sums[j - j0], s) << to_string(policy) << " j " << j;
      expect_min = std::min(expect_min, s);
    }
    EXPECT_DOUBLE_EQ(min_sumsq, expect_min) << to_string(policy);
  }
}

TEST(BatchEquivalenceTest, OneToManyEmptyRangeReturnsInfinity) {
  const auto a = make_pack(5, 2, 8);
  for (const auto policy : kAllPolicies) {
    const double m = sumsq_one_to_many(a, 0, a, 1, 1, {}, policy);
    EXPECT_TRUE(std::isinf(m)) << to_string(policy);
  }
}

TEST(BatchEquivalenceTest, HausdorffBlockedMatchesScalarExactly) {
  std::uint64_t seed = 100;
  for (const std::size_t frames : kFrameSizes) {
    const auto a = make_pack(seed, frames, 24);
    const auto b = make_pack(seed + 1, frames + 2, 24);
    ++seed;
    for (const bool early : {false, true}) {
      EXPECT_DOUBLE_EQ(
          hausdorff_packed(a, b, early, KernelPolicy::kScalar),
          hausdorff_packed(a, b, early, KernelPolicy::kBlocked))
          << "frames " << frames << " early " << early;
    }
  }
}

TEST(BatchEquivalenceTest, HausdorffVectorizedWithinTolerance) {
  std::uint64_t seed = 200;
  for (const std::size_t frames : kFrameSizes) {
    const auto a = make_pack(seed, frames, 24);
    const auto b = make_pack(seed + 1, frames + 2, 24);
    ++seed;
    for (const bool early : {false, true}) {
      const double ref = hausdorff_packed(a, b, early, KernelPolicy::kScalar);
      const double vec =
          hausdorff_packed(a, b, early, KernelPolicy::kVectorized);
      EXPECT_NEAR(vec, ref, kVecRelTol * std::max(ref, 1.0))
          << "frames " << frames << " early " << early;
    }
  }
}

TEST(BatchEquivalenceTest, HausdorffEarlyBreakValueEqualsFullScan) {
  for (const auto policy : kAllPolicies) {
    for (std::uint64_t seed = 300; seed < 306; ++seed) {
      const auto a = make_pack(seed, 33, 16);
      const auto b = make_pack(seed + 40, 31, 16);
      EXPECT_DOUBLE_EQ(hausdorff_packed(a, b, false, policy),
                       hausdorff_packed(a, b, true, policy))
          << to_string(policy) << " seed " << seed;
    }
  }
}

TEST(BatchEquivalenceTest, EarlyBreakNeverEvaluatesMoreThanNaive) {
  for (const auto policy : kAllPolicies) {
    for (std::uint64_t seed = 400; seed < 406; ++seed) {
      const auto a = make_pack(seed, 40, 12);
      const auto b = make_pack(seed + 7, 35, 12);
      std::size_t naive_evals = 0, early_evals = 0;
      hausdorff_packed(a, b, false, policy, &naive_evals);
      hausdorff_packed(a, b, true, policy, &early_evals);
      EXPECT_EQ(naive_evals, 2u * 40u * 35u) << to_string(policy);
      EXPECT_LE(early_evals, naive_evals) << to_string(policy);
    }
  }
}

TEST(BatchEquivalenceTest, DirectedEarlyBreakEvalCountsAreTileGranular) {
  const auto a = make_pack(42, 37, 20);
  const auto b = make_pack(43, 41, 20);
  std::size_t evals = 0;
  hausdorff_directed_packed(a, b, true, KernelPolicy::kBlocked, &evals);
  EXPECT_LE(evals, 37u * 41u);
  EXPECT_GT(evals, 0u);
}

TEST(BatchEquivalenceTest, Rmsd2dPoliciesAgree) {
  std::uint64_t seed = 500;
  for (const std::size_t frames : kFrameSizes) {
    for (const std::size_t atoms : {15, 16, 17}) {
      const auto a = make_pack(seed, frames, atoms);
      const auto b = make_pack(seed + 9, frames + 1, atoms);
      ++seed;
      const std::size_t n = a.frames() * b.frames();
      std::vector<double> ref(n), blk(n), vec(n);
      rmsd2d_packed(a, b, KernelPolicy::kScalar, ref);
      rmsd2d_packed(a, b, KernelPolicy::kBlocked, blk);
      rmsd2d_packed(a, b, KernelPolicy::kVectorized, vec);
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_DOUBLE_EQ(blk[k], ref[k]) << "frames " << frames;
        EXPECT_NEAR(vec[k], ref[k], kVecRelTol * std::max(ref[k], 1.0))
            << "frames " << frames;
      }
    }
  }
}

TEST(BatchEquivalenceTest, Rmsd2dParallelMatchesSerial) {
  const auto a = make_pack(77, 3 * kFrameTile + 5, 21);
  const auto b = make_pack(78, 2 * kFrameTile + 3, 21);
  ThreadPool pool(4);
  for (const auto policy : kAllPolicies) {
    const std::size_t n = a.frames() * b.frames();
    std::vector<double> serial(n), parallel(n);
    rmsd2d_packed(a, b, policy, serial);
    rmsd2d_packed_parallel(a, b, policy, pool, nullptr, parallel);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_DOUBLE_EQ(parallel[k], serial[k]) << to_string(policy);
    }
  }
}

TEST(BatchEquivalenceTest, HausdorffParallelMatchesSerialExactly) {
  // The grouped two-task split must not change the value OR the eval
  // count: each directed half is computed by the same serial kernel,
  // just on a co-scheduled worker pair.
  ThreadPool pool(4, topo::CpuTopology::synthetic(4, 1, 2), false);
  std::uint64_t seed = 1200;
  for (const std::size_t frames : {kFrameTile - 1, kFrameTile + 3}) {
    const auto a = make_pack(seed, frames, 19);
    const auto b = make_pack(seed + 5, frames + 2, 19);
    ++seed;
    for (const auto policy : kAllPolicies) {
      for (const bool early : {false, true}) {
        std::size_t serial_evals = 0, parallel_evals = 0;
        const double serial =
            hausdorff_packed(a, b, early, policy, &serial_evals);
        const double parallel = hausdorff_packed_parallel(
            a, b, early, policy, pool, /*pair_id=*/seed, &parallel_evals);
        EXPECT_DOUBLE_EQ(parallel, serial) << to_string(policy);
        EXPECT_EQ(parallel_evals, serial_evals) << to_string(policy);
      }
    }
  }
}

TEST(BatchEquivalenceTest, HausdorffParallelSingleWorkerFallsBackSerial) {
  ThreadPool pool(1, topo::CpuTopology::synthetic(1), false);
  const auto a = make_pack(31, kFrameTile, 12);
  const auto b = make_pack(32, kFrameTile, 12);
  EXPECT_DOUBLE_EQ(
      hausdorff_packed_parallel(a, b, true, KernelPolicy::kBlocked, pool, 0),
      hausdorff_packed(a, b, true, KernelPolicy::kBlocked));
}

TEST(BatchEquivalenceTest, CutoffPairListsIdenticalAcrossPolicies) {
  // Cloud sizes straddle kCutoffTile and the group width; the cutoff is
  // picked so a few percent of pairs hit.
  for (const std::size_t n : {std::size_t{1}, std::size_t{15},
                              std::size_t{255}, std::size_t{256},
                              std::size_t{257}, std::size_t{700}}) {
    const auto rows_cloud = make_cloud(600 + n, n, 20.0);
    const auto cols_cloud = make_cloud(900 + n, n + 3, 20.0);
    const auto rows = pack_points(rows_cloud);
    const auto cols = pack_points(cols_cloud);
    std::vector<IndexPair> ref, blk, vec;
    cutoff_pairs_packed(rows, cols, 3.0, KernelPolicy::kScalar, ref);
    cutoff_pairs_packed(rows, cols, 3.0, KernelPolicy::kBlocked, blk);
    cutoff_pairs_packed(rows, cols, 3.0, KernelPolicy::kVectorized, vec);
    EXPECT_EQ(ref, blk) << "n " << n;
    EXPECT_EQ(ref, vec) << "n " << n;
    EXPECT_FALSE(ref.empty() && n > 200) << "degenerate fixture, n " << n;
  }
}

TEST(BatchEquivalenceTest, CutoffHandlesEmptyOperands) {
  const auto pts = pack_points(make_cloud(1, 10, 5.0));
  const FramePack empty;
  std::vector<IndexPair> out;
  for (const auto policy : kAllPolicies) {
    out.clear();
    cutoff_pairs_packed(empty, pts, 3.0, policy, out);
    EXPECT_TRUE(out.empty());
    cutoff_pairs_packed(pts, empty, 3.0, policy, out);
    EXPECT_TRUE(out.empty());
  }
}

TEST(BatchEquivalenceTest, CutoffBoundaryPairIsInclusiveUnderEveryPolicy) {
  // Distance exactly equal to the cutoff must be a hit (<=, not <).
  const std::vector<traj::Vec3> a = {{0.0f, 0.0f, 0.0f}};
  const std::vector<traj::Vec3> b = {{3.0f, 0.0f, 0.0f},
                                     {3.0000005f, 0.0f, 0.0f}};
  const auto rows = pack_points(a);
  const auto cols = pack_points(b);
  for (const auto policy : kAllPolicies) {
    std::vector<IndexPair> out;
    cutoff_pairs_packed(rows, cols, 3.0, policy, out);
    ASSERT_EQ(out.size(), 1u) << to_string(policy);
    EXPECT_EQ(out[0], (IndexPair{0, 0})) << to_string(policy);
  }
}

TEST(BatchEquivalenceTest, CutoffDenseClusterAllPairsHit) {
  // Every point inside a tiny ball: the vectorized group pre-filter must
  // not drop any candidate when every group is full of hits.
  const auto cloud = make_cloud(5, 70, 0.5);
  const auto pack = pack_points(cloud);
  for (const auto policy : kAllPolicies) {
    std::vector<IndexPair> out;
    cutoff_pairs_packed(pack, pack, 3.0, policy, out);
    EXPECT_EQ(out.size(), 70u * 70u) << to_string(policy);
  }
}

}  // namespace
}  // namespace mdtask::kernels
