#include "mdtask/kernels/frame_pack.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mdtask/traj/generators.h"

namespace mdtask::kernels {
namespace {

traj::Trajectory make_traj(std::uint64_t seed, std::size_t frames,
                           std::size_t atoms) {
  traj::ProteinTrajectoryParams p;
  p.atoms = atoms;
  p.frames = frames;
  p.seed = seed;
  return traj::make_protein_trajectory(p);
}

TEST(FramePackTest, DefaultIsEmpty) {
  const FramePack p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.frames(), 0u);
  EXPECT_EQ(p.atoms(), 0u);
  EXPECT_EQ(p.byte_size(), 0u);
}

TEST(FramePackTest, StrideRoundsUpToPadGranularity) {
  for (const std::size_t atoms :
       {std::size_t{1}, kLanePadFloats - 1, kLanePadFloats,
        kLanePadFloats + 1, std::size_t{100}}) {
    const FramePack p(2, atoms);
    EXPECT_GE(p.stride(), atoms);
    EXPECT_EQ(p.stride() % kLanePadFloats, 0u) << "atoms " << atoms;
    EXPECT_LT(p.stride() - atoms, kLanePadFloats) << "atoms " << atoms;
  }
}

TEST(FramePackTest, LanesAreAligned) {
  const FramePack p(3, 17);
  for (std::size_t f = 0; f < p.frames(); ++f) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.x(f)) % kLaneAlignment, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.y(f)) % kLaneAlignment, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.z(f)) % kLaneAlignment, 0u);
  }
}

TEST(FramePackTest, FreshPackIsZeroIncludingPadding) {
  const FramePack p(2, 5);
  for (std::size_t f = 0; f < p.frames(); ++f) {
    for (std::size_t k = 0; k < p.stride(); ++k) {
      EXPECT_EQ(p.x(f)[k], 0.0f);
      EXPECT_EQ(p.y(f)[k], 0.0f);
      EXPECT_EQ(p.z(f)[k], 0.0f);
    }
  }
}

TEST(FramePackTest, SetFrameKeepsPaddingZero) {
  FramePack p(1, 5);
  const std::vector<traj::Vec3> pos = {
      {1.0f, 2.0f, 3.0f}, {4.0f, 5.0f, 6.0f}, {7.0f, 8.0f, 9.0f},
      {10.0f, 11.0f, 12.0f}, {13.0f, 14.0f, 15.0f}};
  p.set_frame(0, pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_EQ(p.x(0)[i], pos[i].x);
    EXPECT_EQ(p.y(0)[i], pos[i].y);
    EXPECT_EQ(p.z(0)[i], pos[i].z);
  }
  for (std::size_t k = pos.size(); k < p.stride(); ++k) {
    EXPECT_EQ(p.x(0)[k], 0.0f);
    EXPECT_EQ(p.y(0)[k], 0.0f);
    EXPECT_EQ(p.z(0)[k], 0.0f);
  }
}

TEST(FramePackTest, PackTrajectoryRoundTripsEveryCoordinate) {
  const auto t = make_traj(11, 7, 19);
  const FramePack p = pack_trajectory(t);
  ASSERT_EQ(p.frames(), t.frames());
  ASSERT_EQ(p.atoms(), t.atoms());
  for (std::size_t f = 0; f < t.frames(); ++f) {
    const auto frame = t.frame(f);
    for (std::size_t i = 0; i < t.atoms(); ++i) {
      // Positions are floats end to end, so packing is lossless.
      EXPECT_EQ(p.x(f)[i], frame[i].x);
      EXPECT_EQ(p.y(f)[i], frame[i].y);
      EXPECT_EQ(p.z(f)[i], frame[i].z);
    }
  }
}

TEST(FramePackTest, PackPointsIsSingleFrame) {
  const std::vector<traj::Vec3> pts = {{1.0f, 0.0f, -1.0f},
                                       {2.5f, 3.5f, 4.5f}};
  const FramePack p = pack_points(pts);
  ASSERT_EQ(p.frames(), 1u);
  ASSERT_EQ(p.atoms(), 2u);
  EXPECT_EQ(p.x(0)[1], 2.5f);
  EXPECT_EQ(p.z(0)[0], -1.0f);
}

TEST(FramePackTest, MoveTransfersOwnership) {
  FramePack a(2, 4);
  a.x(0)[0] = 42.0f;
  const float* lane = a.x(0);
  FramePack b(std::move(a));
  EXPECT_EQ(b.x(0), lane);
  EXPECT_EQ(b.x(0)[0], 42.0f);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): moved-from spec
}

}  // namespace
}  // namespace mdtask::kernels
