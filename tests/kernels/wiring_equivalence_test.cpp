// Policy equivalence of the analysis-layer entry points wired onto the
// batch kernels: Hausdorff overloads, PSA, the Leaflet edge kernels, the
// BallTree leaf scan and the cpptraj 2D-RMSD tiled kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "mdtask/analysis/balltree.h"
#include "mdtask/analysis/hausdorff.h"
#include "mdtask/analysis/leaflet.h"
#include "mdtask/analysis/pairwise.h"
#include "mdtask/analysis/psa.h"
#include "mdtask/analysis/rmsd.h"
#include "mdtask/cpptraj/rmsd2d.h"
#include "mdtask/traj/catalog.h"
#include "mdtask/traj/generators.h"

namespace mdtask::analysis {
namespace {

constexpr double kVecRelTol = 1e-4;

traj::Trajectory make_traj(std::uint64_t seed, std::size_t frames = 18,
                           std::size_t atoms = 24) {
  traj::ProteinTrajectoryParams p;
  p.atoms = atoms;
  p.frames = frames;
  p.seed = seed;
  return traj::make_protein_trajectory(p);
}

traj::Ensemble make_ensemble(std::size_t n, std::uint64_t seed = 1) {
  traj::Ensemble e;
  for (std::size_t i = 0; i < n; ++i) {
    e.push_back(make_traj(seed + i, 10 + (i % 3), 16));
  }
  return e;
}

TEST(HausdorffPolicyTest, BlockedMatchesScalarExactly) {
  const auto a = make_traj(1), b = make_traj(2);
  EXPECT_DOUBLE_EQ(hausdorff_naive(a, b, kernels::KernelPolicy::kScalar),
                   hausdorff_naive(a, b, kernels::KernelPolicy::kBlocked));
  EXPECT_DOUBLE_EQ(
      hausdorff_early_break(a, b, kernels::KernelPolicy::kScalar),
      hausdorff_early_break(a, b, kernels::KernelPolicy::kBlocked));
}

TEST(HausdorffPolicyTest, ScalarPolicyMatchesFrameMetricPath) {
  // The devirtualized kScalar fast path must reproduce the pluggable
  // std::function path bit-for-bit.
  const auto a = make_traj(3), b = make_traj(4);
  const FrameMetric metric = [](std::span<const traj::Vec3> x,
                                std::span<const traj::Vec3> y) {
    return frame_rmsd(x, y);
  };
  EXPECT_DOUBLE_EQ(hausdorff_naive(a, b, metric),
                   hausdorff_naive(a, b, kernels::KernelPolicy::kScalar));
  EXPECT_DOUBLE_EQ(
      hausdorff_early_break(a, b, metric),
      hausdorff_early_break(a, b, kernels::KernelPolicy::kScalar));
}

TEST(HausdorffPolicyTest, VectorizedWithinTolerance) {
  const auto a = make_traj(5), b = make_traj(6);
  const double ref = hausdorff_naive(a, b, kernels::KernelPolicy::kScalar);
  const double vec =
      hausdorff_naive(a, b, kernels::KernelPolicy::kVectorized);
  EXPECT_NEAR(vec, ref, kVecRelTol * std::max(ref, 1.0));
}

TEST(PsaPolicyTest, ReferenceMatrixIdenticalScalarVsBlocked) {
  const auto ensemble = make_ensemble(6);
  const auto scalar = psa_reference(ensemble, HausdorffKernel::kNaive,
                                    kernels::KernelPolicy::kScalar);
  const auto blocked = psa_reference(ensemble, HausdorffKernel::kNaive,
                                     kernels::KernelPolicy::kBlocked);
  EXPECT_EQ(scalar.max_abs_diff(blocked), 0.0);
}

TEST(PsaPolicyTest, VectorizedMatrixWithinTolerance) {
  const auto ensemble = make_ensemble(5);
  const auto scalar = psa_reference(ensemble, HausdorffKernel::kNaive,
                                    kernels::KernelPolicy::kScalar);
  const auto vec = psa_reference(ensemble, HausdorffKernel::kNaive,
                                 kernels::KernelPolicy::kVectorized);
  EXPECT_LE(vec.max_abs_diff(scalar), 1e-4);
}

TEST(PsaPolicyTest, ParallelMatchesReferenceUnderEveryPolicy) {
  const auto ensemble = make_ensemble(7);
  ThreadPool pool(4);
  for (const auto policy : kernels::kAllPolicies) {
    const auto serial =
        psa_reference(ensemble, HausdorffKernel::kEarlyBreak, policy);
    const auto parallel = psa_parallel(
        ensemble, HausdorffKernel::kEarlyBreak, policy, pool);
    EXPECT_EQ(serial.max_abs_diff(parallel), 0.0)
        << kernels::to_string(policy);
  }
}

struct LfFixture {
  traj::Bilayer bilayer;
  double cutoff;

  explicit LfFixture(std::size_t atoms, std::uint64_t seed = 7) {
    traj::BilayerParams p;
    p.atoms = atoms;
    p.seed = seed;
    bilayer = traj::make_bilayer(p);
    cutoff = traj::default_cutoff(p);
  }
};

TEST(LeafletPolicyTest, EdgesWithinCutoffIdenticalAcrossPolicies) {
  const LfFixture fx(300);
  const std::span<const traj::Vec3> atoms(fx.bilayer.positions);
  std::vector<std::uint32_t> ids(atoms.size());
  for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
  const auto xs = atoms.subspan(0, 120);
  const auto ys = atoms.subspan(120);
  const auto x_ids = std::span<const std::uint32_t>(ids).subspan(0, 120);
  const auto y_ids = std::span<const std::uint32_t>(ids).subspan(120);
  const auto legacy = edges_within_cutoff(xs, ys, x_ids, y_ids, fx.cutoff);
  for (const auto policy : kernels::kAllPolicies) {
    const auto got =
        edges_within_cutoff(xs, ys, x_ids, y_ids, fx.cutoff, policy);
    EXPECT_EQ(got, legacy) << kernels::to_string(policy);
  }
  EXPECT_FALSE(legacy.empty());
}

TEST(LeafletPolicyTest, MapKernelsIdenticalAcrossPolicies) {
  const LfFixture fx(240);
  const std::span<const traj::Vec3> atoms(fx.bilayer.positions);
  const auto chunks = make_1d_chunks(atoms.size(), 4);
  const auto blocks = make_2d_blocks(atoms.size(), 10);
  for (const auto policy : kernels::kAllPolicies) {
    for (const auto& chunk : chunks) {
      EXPECT_EQ(lf_edges_1d(atoms, chunk, fx.cutoff, policy),
                lf_edges_1d(atoms, chunk, fx.cutoff))
          << kernels::to_string(policy);
    }
    for (const auto& block : blocks) {
      EXPECT_EQ(lf_edges_2d(atoms, block, fx.cutoff, policy),
                lf_edges_2d(atoms, block, fx.cutoff))
          << kernels::to_string(policy);
      EXPECT_EQ(lf_edges_tree(atoms, block, fx.cutoff, policy),
                lf_edges_tree(atoms, block, fx.cutoff,
                              kernels::KernelPolicy::kScalar))
          << kernels::to_string(policy);
    }
  }
}

TEST(BallTreePolicyTest, QueriesIdenticalAcrossPolicies) {
  const LfFixture fx(500);
  const std::span<const traj::Vec3> atoms(fx.bilayer.positions);
  BallTree scalar_tree(atoms, 32, kernels::KernelPolicy::kScalar);
  for (const auto policy : kernels::kAllPolicies) {
    BallTree tree(atoms, 32, policy);
    for (std::size_t q = 0; q < atoms.size(); q += 37) {
      std::vector<std::uint32_t> expect, got;
      scalar_tree.query_radius(atoms[q], fx.cutoff, expect);
      tree.query_radius(atoms[q], fx.cutoff, got);
      std::sort(expect.begin(), expect.end());
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expect) << kernels::to_string(policy) << " q " << q;
    }
  }
}

TEST(Rmsd2dKernelTest, TiledAgreesWithReference) {
  const auto a = make_traj(30, 20, 24), b = make_traj(31, 22, 24);
  const auto ref = cpptraj::rmsd2d_block(a, b, cpptraj::Rmsd2dKernel::kReference);
  const auto tiled = cpptraj::rmsd2d_block(a, b, cpptraj::Rmsd2dKernel::kTiled);
  ASSERT_EQ(ref.size(), tiled.size());
  for (std::size_t k = 0; k < ref.size(); ++k) {
    EXPECT_NEAR(tiled[k], ref[k], kVecRelTol * std::max(ref[k], 1.0));
  }
}

}  // namespace
}  // namespace mdtask::analysis
