#include "mdtask/workflows/psa_runner.h"

#include <gtest/gtest.h>

#include "mdtask/traj/generators.h"

namespace mdtask::workflows {
namespace {

/// gtest-safe identifier for an engine (names reject '-').
std::string engine_id(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMpi: return "MPI";
    case EngineKind::kSpark: return "Spark";
    case EngineKind::kDask: return "Dask";
    case EngineKind::kRp: return "RP";
  }
  return "Unknown";
}

traj::Ensemble tiny_ensemble(std::size_t count = 6) {
  traj::ProteinTrajectoryParams p;
  p.atoms = 8;
  p.frames = 6;
  return traj::make_protein_ensemble(count, p);
}

class PsaEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(PsaEngineTest, MatchesSerialReference) {
  const auto ensemble = tiny_ensemble();
  const auto reference = analysis::psa_reference(ensemble);
  PsaRunConfig config;
  config.workers = 3;
  const auto result = run_psa(GetParam(), ensemble, config);
  EXPECT_EQ(result.matrix.max_abs_diff(reference), 0.0)
      << to_string(GetParam());
  EXPECT_GT(result.metrics.tasks, 0u);
  EXPECT_GT(result.metrics.wall_seconds, 0.0);
}

TEST_P(PsaEngineTest, WorkerCountDoesNotChangeResult) {
  const auto ensemble = tiny_ensemble(5);
  PsaRunConfig one, many;
  one.workers = 1;
  many.workers = 8;
  const auto a = run_psa(GetParam(), ensemble, one);
  const auto b = run_psa(GetParam(), ensemble, many);
  EXPECT_EQ(a.matrix.max_abs_diff(b.matrix), 0.0);
}

TEST_P(PsaEngineTest, ExplicitBlockSizeHonoured) {
  const auto ensemble = tiny_ensemble(4);
  PsaRunConfig config;
  config.workers = 2;
  config.block_size = 1;  // 16 single-pair tasks
  const auto result = run_psa(GetParam(), ensemble, config);
  EXPECT_EQ(result.metrics.tasks, 16u);
  EXPECT_EQ(result.matrix.max_abs_diff(analysis::psa_reference(ensemble)),
            0.0);
}

INSTANTIATE_TEST_SUITE_P(Engines, PsaEngineTest,
                         ::testing::Values(EngineKind::kMpi,
                                           EngineKind::kSpark,
                                           EngineKind::kDask,
                                           EngineKind::kRp),
                         [](const auto& param_info) {
                           return engine_id(param_info.param);
                         });

TEST(PsaBlockSizeTest, AutoBlockSizeScalesWithWorkers) {
  PsaRunConfig few, many;
  few.workers = 1;
  many.workers = 64;
  EXPECT_GE(psa_effective_block_size(128, few),
            psa_effective_block_size(128, many));
  EXPECT_GE(psa_effective_block_size(128, many), 1u);
}

TEST(PsaBlockSizeTest, ExplicitOverrideWins) {
  PsaRunConfig config;
  config.block_size = 13;
  EXPECT_EQ(psa_effective_block_size(1000, config), 13u);
}

TEST(PsaRunTest, EarlyBreakKernelGivesSameMatrix) {
  const auto ensemble = tiny_ensemble(4);
  PsaRunConfig naive_cfg, early_cfg;
  naive_cfg.metric = PsaMetric::kHausdorff;
  early_cfg.metric = PsaMetric::kHausdorffEarlyBreak;
  const auto a = run_psa(EngineKind::kDask, ensemble, naive_cfg);
  const auto b = run_psa(EngineKind::kDask, ensemble, early_cfg);
  EXPECT_EQ(a.matrix.max_abs_diff(b.matrix), 0.0);
}

class PsaFrechetEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(PsaFrechetEngineTest, FrechetMetricMatchesSerialReference) {
  const auto ensemble = tiny_ensemble(5);
  PsaRunConfig config;
  config.workers = 3;
  config.metric = PsaMetric::kFrechet;
  const auto result = run_psa(GetParam(), ensemble, config);
  const auto reference = analysis::psa_reference_frechet(ensemble);
  EXPECT_EQ(result.matrix.max_abs_diff(reference), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Engines, PsaFrechetEngineTest,
                         ::testing::Values(EngineKind::kMpi,
                                           EngineKind::kSpark,
                                           EngineKind::kDask,
                                           EngineKind::kRp),
                         [](const auto& param_info) {
                           return engine_id(param_info.param);
                         });

TEST(PsaRunTest, SparkAccountsBroadcast) {
  const auto ensemble = tiny_ensemble(4);
  const auto result = run_psa(EngineKind::kSpark, ensemble, {});
  EXPECT_GT(result.metrics.broadcast_bytes, 0u);
}

TEST(PsaRunTest, RpPaysDbAndStaging) {
  const auto ensemble = tiny_ensemble(4);
  const auto result = run_psa(EngineKind::kRp, ensemble, {});
  EXPECT_GT(result.metrics.db_roundtrips, 0u);
  EXPECT_GT(result.metrics.staged_bytes, 0u);
}

}  // namespace
}  // namespace mdtask::workflows
