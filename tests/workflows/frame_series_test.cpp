#include "mdtask/workflows/frame_series.h"

#include <gtest/gtest.h>

#include "mdtask/analysis/observables.h"
#include "mdtask/traj/generators.h"

namespace mdtask::workflows {
namespace {

std::string engine_id(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMpi: return "MPI";
    case EngineKind::kSpark: return "Spark";
    case EngineKind::kDask: return "Dask";
    case EngineKind::kRp: return "RP";
  }
  return "Unknown";
}

traj::Trajectory make_traj(std::size_t frames = 25) {
  traj::ProteinTrajectoryParams p;
  p.frames = frames;
  p.atoms = 18;
  return traj::make_protein_trajectory(p);
}

class FrameSeriesEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(FrameSeriesEngineTest, RadiusOfGyrationSeriesMatchesSerial) {
  const auto t = make_traj();
  const FrameObservable rog = [](std::span<const traj::Vec3> frame) {
    return analysis::radius_of_gyration(frame);
  };
  FrameSeriesConfig config;
  config.workers = 3;
  const auto result = run_frame_series(GetParam(), t, rog, config);
  ASSERT_EQ(result.series.size(), t.frames());
  for (std::size_t f = 0; f < t.frames(); ++f) {
    EXPECT_DOUBLE_EQ(result.series[f],
                     analysis::radius_of_gyration(t.frame(f)));
  }
  EXPECT_GT(result.metrics.tasks, 1u);
}

TEST_P(FrameSeriesEngineTest, BlockSizeDoesNotChangeValues) {
  const auto t = make_traj(17);
  const FrameObservable extent = [](std::span<const traj::Vec3> frame) {
    return analysis::bounding_radius(frame);
  };
  FrameSeriesConfig coarse, fine;
  coarse.frame_block = 17;
  fine.frame_block = 1;
  const auto a = run_frame_series(GetParam(), t, extent, coarse);
  const auto b = run_frame_series(GetParam(), t, extent, fine);
  EXPECT_EQ(a.series, b.series);
  EXPECT_EQ(b.metrics.tasks, 17u);
}

INSTANTIATE_TEST_SUITE_P(Engines, FrameSeriesEngineTest,
                         ::testing::Values(EngineKind::kMpi,
                                           EngineKind::kSpark,
                                           EngineKind::kDask,
                                           EngineKind::kRp),
                         [](const auto& param_info) {
                           return engine_id(param_info.param);
                         });

TEST(FrameSeriesTest, EmptyTrajectory) {
  const auto result = run_frame_series(
      EngineKind::kDask, traj::Trajectory(),
      [](std::span<const traj::Vec3>) { return 1.0; });
  EXPECT_TRUE(result.series.empty());
}

TEST(FrameSeriesTest, CrossFrameReduceOnTopOfParallelMap) {
  // The HiMach pattern: parallel per-frame map, then a cheap cross-frame
  // reduce at the driver (here: the frame index of the maximum Rg).
  const auto t = make_traj(30);
  const auto result = run_frame_series(
      EngineKind::kSpark, t, [](std::span<const traj::Vec3> frame) {
        return analysis::radius_of_gyration(frame);
      });
  std::size_t argmax = 0;
  for (std::size_t f = 1; f < result.series.size(); ++f) {
    if (result.series[f] > result.series[argmax]) argmax = f;
  }
  EXPECT_LT(argmax, t.frames());
  EXPECT_GT(result.series[argmax], 0.0);
}

}  // namespace
}  // namespace mdtask::workflows
