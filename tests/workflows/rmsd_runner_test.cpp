#include "mdtask/workflows/rmsd_runner.h"

#include <gtest/gtest.h>

#include "mdtask/traj/generators.h"

namespace mdtask::workflows {
namespace {

std::string engine_id(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMpi: return "MPI";
    case EngineKind::kSpark: return "Spark";
    case EngineKind::kDask: return "Dask";
    case EngineKind::kRp: return "RP";
  }
  return "Unknown";
}

traj::Trajectory make_traj(std::size_t frames = 30) {
  traj::ProteinTrajectoryParams p;
  p.frames = frames;
  p.atoms = 20;
  return traj::make_protein_trajectory(p);
}

class RmsdEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(RmsdEngineTest, MatchesSerialReference) {
  const auto t = make_traj();
  const auto want = analysis::rmsd_series(t);
  RmsdRunConfig config;
  config.workers = 3;
  const auto result = run_rmsd_series(GetParam(), t, config);
  EXPECT_EQ(result.series, want);
  EXPECT_GT(result.metrics.tasks, 1u);
}

TEST_P(RmsdEngineTest, SuperposedVariantMatches) {
  const auto t = make_traj(20);
  analysis::RmsdSeriesOptions options;
  options.superpose = true;
  options.reference_frame = 3;
  const auto want = analysis::rmsd_series(t, options);
  RmsdRunConfig config;
  config.options = options;
  const auto result = run_rmsd_series(GetParam(), t, config);
  EXPECT_EQ(result.series, want);
}

TEST_P(RmsdEngineTest, ExplicitBlockSizeControlsTaskCount) {
  const auto t = make_traj(30);
  RmsdRunConfig config;
  config.frame_block = 7;  // ceil(30/7) = 5 tasks
  const auto result = run_rmsd_series(GetParam(), t, config);
  EXPECT_EQ(result.metrics.tasks, 5u);
  EXPECT_EQ(result.series, analysis::rmsd_series(t));
}

INSTANTIATE_TEST_SUITE_P(Engines, RmsdEngineTest,
                         ::testing::Values(EngineKind::kMpi,
                                           EngineKind::kSpark,
                                           EngineKind::kDask,
                                           EngineKind::kRp),
                         [](const auto& param_info) {
                           return engine_id(param_info.param);
                         });

TEST(RmsdRunnerTest, EmptyTrajectoryYieldsEmptySeries) {
  const traj::Trajectory empty;
  const auto result = run_rmsd_series(EngineKind::kDask, empty, {});
  EXPECT_TRUE(result.series.empty());
}

}  // namespace
}  // namespace mdtask::workflows
