#include "mdtask/workflows/leaflet_runner.h"

#include <gtest/gtest.h>

#include "mdtask/traj/generators.h"

namespace mdtask::workflows {
namespace {

/// gtest-safe identifier for an engine (names reject '-').
std::string engine_id(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMpi: return "MPI";
    case EngineKind::kSpark: return "Spark";
    case EngineKind::kDask: return "Dask";
    case EngineKind::kRp: return "RP";
  }
  return "Unknown";
}

struct Fixture {
  traj::Bilayer bilayer;
  double cutoff;
  analysis::LeafletResult reference;

  explicit Fixture(std::size_t atoms = 500) {
    traj::BilayerParams p;
    p.atoms = atoms;
    bilayer = traj::make_bilayer(p);
    cutoff = traj::default_cutoff(p);
    reference = analysis::leaflet_finder_reference(bilayer.positions, cutoff);
  }
};

const Fixture& fixture() {
  static const Fixture fx;
  return fx;
}

class LfMatrixTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, int>> {};

TEST_P(LfMatrixTest, EveryEngineAndApproachMatchesReference) {
  const auto [engine, approach] = GetParam();
  const auto& fx = fixture();
  LfRunConfig config;
  config.workers = 4;
  config.target_tasks = 10;
  auto result = run_leaflet_finder(engine, approach, fx.bilayer.positions,
                                   fx.cutoff, config);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().leaflets.labels, fx.reference.labels)
      << to_string(engine) << " approach " << approach;
  EXPECT_EQ(result.value().leaflets.component_count, 2u);
  EXPECT_GT(result.value().metrics.tasks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, LfMatrixTest,
    ::testing::Combine(::testing::Values(EngineKind::kMpi, EngineKind::kSpark,
                                         EngineKind::kDask, EngineKind::kRp),
                       ::testing::Values(1, 2, 3, 4)),
    [](const auto& param_info) {
      return engine_id(std::get<0>(param_info.param)) + "_A" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(LfRunnerTest, InvalidApproachRejected) {
  const auto& fx = fixture();
  EXPECT_FALSE(run_leaflet_finder(EngineKind::kSpark, 0,
                                  fx.bilayer.positions, fx.cutoff, {})
                   .ok());
  EXPECT_FALSE(run_leaflet_finder(EngineKind::kSpark, 5,
                                  fx.bilayer.positions, fx.cutoff, {})
                   .ok());
}

TEST(LfRunnerTest, DriverMergeEqualsTreeReduce) {
  const auto& fx = fixture();
  LfRunConfig tree, driver;
  tree.tree_reduce = true;
  driver.tree_reduce = false;
  tree.target_tasks = driver.target_tasks = 8;
  for (EngineKind engine : {EngineKind::kSpark, EngineKind::kDask}) {
    auto a = run_leaflet_finder(engine, 3, fx.bilayer.positions, fx.cutoff,
                                tree);
    auto b = run_leaflet_finder(engine, 3, fx.bilayer.positions, fx.cutoff,
                                driver);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().leaflets.labels, b.value().leaflets.labels);
  }
}

class LfMemoryWallTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(LfMemoryWallTest, CdistApproachesHitMemoryLimit) {
  const auto& fx = fixture();
  LfRunConfig config;
  config.target_tasks = 4;          // big blocks
  config.task_memory_limit = 1024;  // tiny limit: cdist cannot fit
  for (int approach : {1, 2, 3}) {
    auto result = run_leaflet_finder(GetParam(), approach,
                                     fx.bilayer.positions, fx.cutoff, config);
    ASSERT_FALSE(result.ok()) << "approach " << approach;
    EXPECT_EQ(result.error().code(), ErrorCode::kResourceExhausted);
  }
}

TEST_P(LfMemoryWallTest, TreeSearchSurvivesTheSameLimit) {
  // The paper's Sec. 4.3.4: the tree has a much smaller footprint, which
  // let approach 4 scale to 4M atoms without changing the task count.
  const auto& fx = fixture();
  LfRunConfig config;
  config.target_tasks = 4;
  config.task_memory_limit = 64 * 1024;
  auto result = run_leaflet_finder(GetParam(), 4, fx.bilayer.positions,
                                   fx.cutoff, config);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().leaflets.labels, fx.reference.labels);
}

INSTANTIATE_TEST_SUITE_P(Engines, LfMemoryWallTest,
                         ::testing::Values(EngineKind::kMpi,
                                           EngineKind::kSpark,
                                           EngineKind::kDask,
                                           EngineKind::kRp),
                         [](const auto& param_info) {
                           return engine_id(param_info.param);
                         });

TEST(LfRunnerTest, DaskRecordsWorkerRestarts) {
  const auto& fx = fixture();
  LfRunConfig config;
  config.target_tasks = 4;
  config.task_memory_limit = 1024;
  auto result = run_leaflet_finder(EngineKind::kDask, 2,
                                   fx.bilayer.positions, fx.cutoff, config);
  ASSERT_FALSE(result.ok());
  // The failure message documents the restart loop behaviour.
  EXPECT_NE(result.error().message().find("restart"), std::string::npos);
}

TEST(LfRunnerTest, Approach3ShufflesLessThanApproach2OnSpark) {
  // Table 2's point: partial components (O(n)) vs edge lists (O(E)).
  const auto& fx = fixture();
  LfRunConfig config;
  config.target_tasks = 12;
  auto a2 = run_leaflet_finder(EngineKind::kSpark, 2, fx.bilayer.positions,
                               fx.cutoff, config);
  auto a3 = run_leaflet_finder(EngineKind::kSpark, 3, fx.bilayer.positions,
                               fx.cutoff, config);
  ASSERT_TRUE(a2.ok() && a3.ok());
  // A2 gathers edges at the driver (collect, not via shuffle counters);
  // compare data volume: edges found x sizeof(Edge) vs shuffle_bytes.
  EXPECT_GT(a2.value().edges_found * sizeof(analysis::Edge),
            a3.value().metrics.shuffle_bytes);
}

TEST(LfRunnerTest, MpiBroadcastMeasuredForApproach1) {
  const auto& fx = fixture();
  LfRunConfig config;
  config.workers = 4;
  config.target_tasks = 8;
  auto result = run_leaflet_finder(EngineKind::kMpi, 1,
                                   fx.bilayer.positions, fx.cutoff, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().distribute_seconds, 0.0);
  EXPECT_GT(result.value().metrics.shuffle_bytes, 0u);
}

TEST(LfRunnerTest, EdgeCountsAgreeAcrossApproaches12) {
  const auto& fx = fixture();
  LfRunConfig config;
  config.target_tasks = 9;
  auto a1 = run_leaflet_finder(EngineKind::kDask, 1, fx.bilayer.positions,
                               fx.cutoff, config);
  auto a2 = run_leaflet_finder(EngineKind::kDask, 2, fx.bilayer.positions,
                               fx.cutoff, config);
  ASSERT_TRUE(a1.ok() && a2.ok());
  EXPECT_EQ(a1.value().edges_found, a2.value().edges_found);
}

}  // namespace
}  // namespace mdtask::workflows
