// The live four-engine RepEx runner against the pure-model reference:
// every engine must reproduce the reference decision stream exactly
// (byte-identical canonical RecoveryLogs — the subsystem's core
// acceptance criterion), honour convergence semantics, survive fault /
// elastic / autoscale composition, and surface its exchange counters
// through the trace summary.
#include "mdtask/repex/runner.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "mdtask/trace/summary.h"
#include "mdtask/workflows/repex_runner.h"

namespace mdtask::repex {
namespace {

using workflows::EngineKind;

std::string engine_id(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMpi: return "MPI";
    case EngineKind::kSpark: return "Spark";
    case EngineKind::kDask: return "Dask";
    case EngineKind::kRp: return "RP";
  }
  return "Unknown";
}

RepexConfig tiny_config() {
  RepexConfig config;
  config.params.replicas = 5;
  config.params.max_rounds = 4;
  config.params.min_rounds = 1;
  config.params.acceptance_window = 0;  // fixed round count by default
  config.params.atoms = 5;
  config.params.frames = 4;
  config.params.window_frames = 2;
  config.params.seed = 42;
  config.workers = 3;
  return config;
}

/// The exchange lines of a canonical log (the engine-free decision
/// stream; other record kinds — task faults, membership — are engine
/// bookkeeping and excluded from the cross-engine contract).
std::vector<std::string> exchange_lines(const fault::RecoveryLog& log) {
  std::vector<std::string> lines;
  for (const auto& line : log.canonical()) {
    if (line.rfind("repex ", 0) == 0) lines.push_back(line);
  }
  return lines;
}

/// Pure-model replay: the reference every engine must reproduce.
std::vector<std::string> reference_lines(const RepexParams& p) {
  fault::RecoveryLog log;
  std::vector<std::size_t> configs(p.replicas);
  std::iota(configs.begin(), configs.end(), std::size_t{0});
  std::vector<double> acceptance;
  for (std::size_t round = 0; round < p.max_rounds; ++round) {
    std::vector<double> energies(p.replicas);
    for (std::size_t s = 0; s < p.replicas; ++s) {
      energies[s] = replica_energy(p, configs[s], round);
    }
    const auto decisions = decide_exchanges(p, round, configs, energies);
    std::uint64_t accepted = 0;
    for (const auto& d : decisions) {
      log.record_exchange({round, d.slot_lo, d.slot_hi, d.config_lo,
                           d.config_hi, d.accepted, 0.0});
      if (d.accepted) ++accepted;
    }
    acceptance.push_back(decisions.empty()
                             ? 0.0
                             : static_cast<double>(accepted) /
                                   static_cast<double>(decisions.size()));
    apply_exchanges(configs, decisions);
    if (acceptance_converged(p, acceptance)) break;
  }
  return exchange_lines(log);
}

class RepexEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(RepexEngineTest, MatchesPureModelReference) {
  RepexConfig config = tiny_config();
  fault::RecoveryLog log;
  config.recovery_log = &log;
  const auto result = run_repex(GetParam(), config);
  EXPECT_EQ(result.rounds, config.params.max_rounds);
  EXPECT_GT(result.attempted, 0u);
  EXPECT_EQ(exchange_lines(log), reference_lines(config.params))
      << engine_id(GetParam());
}

TEST_P(RepexEngineTest, AllPairsTopologyMatchesReference) {
  RepexConfig config = tiny_config();
  config.params.topology = ExchangeTopology::kAllPairs;
  config.params.max_rounds = 3;
  fault::RecoveryLog log;
  config.recovery_log = &log;
  run_repex(GetParam(), config);
  EXPECT_EQ(exchange_lines(log), reference_lines(config.params))
      << engine_id(GetParam());
}

TEST_P(RepexEngineTest, WorkerCountDoesNotChangeDecisions) {
  RepexConfig one = tiny_config();
  one.workers = 1;
  RepexConfig many = tiny_config();
  many.workers = 8;
  fault::RecoveryLog log_one, log_many;
  one.recovery_log = &log_one;
  many.recovery_log = &log_many;
  const auto a = run_repex(GetParam(), one);
  const auto b = run_repex(GetParam(), many);
  EXPECT_EQ(exchange_lines(log_one), exchange_lines(log_many));
  EXPECT_EQ(a.final_configs, b.final_configs);
  EXPECT_EQ(a.acceptance_trajectory, b.acceptance_trajectory);
}

TEST_P(RepexEngineTest, ConvergenceStopsBeforeRoundBudget) {
  RepexConfig config = tiny_config();
  // A generous tolerance converges as soon as two windows exist.
  config.params.acceptance_window = 1;
  config.params.acceptance_tolerance = 1.0;
  config.params.min_rounds = 2;
  config.params.max_rounds = 8;
  const auto result = run_repex(GetParam(), config);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 2u);
  EXPECT_EQ(result.acceptance_trajectory.size(), result.rounds);
}

TEST_P(RepexEngineTest, TraceCountersSurfaceInSummary) {
  RepexConfig config = tiny_config();
  config.params.max_rounds = 2;
  trace::Tracer tracer;
  tracer.set_enabled(true);
  fault::RecoveryLog log;
  config.tracer = &tracer;
  config.recovery_log = &log;
  run_repex(GetParam(), config);
  const auto summary = trace::summarize(tracer);
  bool acceptance = false, barrier = false, round_span = false;
  for (const auto& c : summary.counters) {
    if (c.name == "repex:acceptance") acceptance = true;
    if (c.name == "repex:barrier_wait_us") barrier = true;
  }
  for (const auto& s : summary.spans) {
    if (s.name == "repex:round") round_span = true;
  }
  EXPECT_TRUE(acceptance) << engine_id(GetParam());
  EXPECT_TRUE(barrier) << engine_id(GetParam());
  EXPECT_TRUE(round_span) << engine_id(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Engines, RepexEngineTest,
                         ::testing::Values(EngineKind::kMpi,
                                           EngineKind::kSpark,
                                           EngineKind::kDask,
                                           EngineKind::kRp),
                         [](const auto& param_info) {
                           return engine_id(param_info.param);
                         });

TEST(RepexCrossEngineTest, CanonicalLogsAreByteIdenticalAcrossEngines) {
  const RepexConfig config = tiny_config();
  std::vector<std::vector<std::string>> streams;
  for (const EngineKind engine :
       {EngineKind::kMpi, EngineKind::kSpark, EngineKind::kDask,
        EngineKind::kRp}) {
    RepexConfig c = config;
    fault::RecoveryLog log;
    c.recovery_log = &log;
    run_repex(engine, c);
    streams.push_back(exchange_lines(log));
  }
  EXPECT_FALSE(streams[0].empty());
  for (std::size_t i = 1; i < streams.size(); ++i) {
    EXPECT_EQ(streams[0], streams[i]);
  }
}

TEST(RepexSparkCacheTest, CacheTogglePreservesDecisions) {
  RepexConfig cached = tiny_config();
  RepexConfig uncached = tiny_config();
  uncached.cache_static = false;
  std::atomic<std::uint64_t> cached_evals{0}, uncached_evals{0};
  cached.params.base_evaluations = &cached_evals;
  uncached.params.base_evaluations = &uncached_evals;
  fault::RecoveryLog log_cached, log_uncached;
  cached.recovery_log = &log_cached;
  uncached.recovery_log = &log_uncached;
  const auto a = run_repex(EngineKind::kSpark, cached);
  const auto b = run_repex(EngineKind::kSpark, uncached);
  EXPECT_EQ(exchange_lines(log_cached), exchange_lines(log_uncached));
  EXPECT_EQ(a.final_configs, b.final_configs);
  // Cached: one base evaluation per replica, ever. Uncached: the
  // lineage recomputes the bases every round.
  EXPECT_EQ(cached_evals.load(), cached.params.replicas);
  EXPECT_EQ(uncached_evals.load(),
            uncached.params.replicas * b.rounds);
}

TEST(RepexFaultTest, MpiRestartPreservesDecisionStream) {
  RepexConfig config = tiny_config();
  fault::FaultPlan plan;
  plan.schedule.push_back(
      {fault::FaultKind::kNodeCrash, 0, 0, 1.0, 0.0});
  plan.retry.max_attempts = 3;
  fault::RecoveryLog log;
  config.fault_plan = &plan;
  config.recovery_log = &log;
  const auto result = run_repex(EngineKind::kMpi, config);
  EXPECT_EQ(result.rounds, config.params.max_rounds);
  // The restarted job replays the identical decision stream, once.
  EXPECT_EQ(exchange_lines(log), reference_lines(config.params));
  // The abort/restart itself was recorded (non-exchange lines exist).
  EXPECT_GT(log.canonical().size(), exchange_lines(log).size());
}

TEST(RepexCompositionTest, ElasticAndAdaptiveRunsStayDeterministic) {
  for (const EngineKind engine : {EngineKind::kSpark, EngineKind::kDask,
                                  EngineKind::kRp}) {
    RepexConfig config = tiny_config();
    const auto plan = fault::churn_plan(7, fault::EngineId::kSpark,
                                        1, 1, 0.05, 1);
    config.membership_plan = &plan;
    config.adaptive.enabled = true;
    config.adaptive.tick_interval_s = 0.01;
    fault::RecoveryLog log;
    config.recovery_log = &log;
    const auto result = run_repex(engine, config);
    EXPECT_EQ(result.rounds, config.params.max_rounds);
    EXPECT_EQ(exchange_lines(log), reference_lines(config.params))
        << engine_id(engine);
  }
}

TEST(RepexRunnerFacadeTest, RunnerWrapsConfigVerbatim) {
  RepexConfig config = tiny_config();
  fault::RecoveryLog direct_log, runner_log;
  config.recovery_log = &direct_log;
  const auto direct = run_repex(EngineKind::kDask, config);
  config.recovery_log = &runner_log;
  const Runner runner(config);
  const auto via = runner.run(EngineKind::kDask);
  EXPECT_EQ(direct.final_configs, via.final_configs);
  EXPECT_EQ(exchange_lines(direct_log), exchange_lines(runner_log));
  EXPECT_EQ(runner.config().params.replicas, config.params.replicas);
}

}  // namespace
}  // namespace mdtask::repex
