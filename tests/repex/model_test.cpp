// The pure RepEx core: ladder, topologies, seeded Metropolis decisions,
// greedy pair filtering and windowed acceptance convergence. Everything
// here must be a pure function of (params, ids, round) — these tests
// pin that contract, which is what makes the four engines and the DES
// twin byte-identical.
#include "mdtask/repex/model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace mdtask::repex {
namespace {

RepexParams tiny_params() {
  RepexParams p;
  p.replicas = 6;
  p.atoms = 6;
  p.frames = 6;
  p.window_frames = 3;
  p.seed = 42;
  return p;
}

TEST(RepexLadderTest, BetaInterpolatesEndpoints) {
  RepexParams p = tiny_params();
  EXPECT_DOUBLE_EQ(p.beta(0), p.beta_lo);
  EXPECT_DOUBLE_EQ(p.beta(p.replicas - 1), p.beta_hi);
  for (std::size_t s = 1; s < p.replicas; ++s) {
    EXPECT_GT(p.beta(s), p.beta(s - 1));
  }
  RepexParams single = p;
  single.replicas = 1;
  EXPECT_DOUBLE_EQ(single.beta(0), single.beta_lo);
}

TEST(RepexPairsTest, NearestNeighbourAlternatesParity) {
  const auto even = candidate_pairs(ExchangeTopology::kNearestNeighbour,
                                    6, 0);
  const auto odd = candidate_pairs(ExchangeTopology::kNearestNeighbour,
                                   6, 1);
  ASSERT_EQ(even.size(), 3u);
  EXPECT_EQ(even[0].lo, 0u);
  EXPECT_EQ(even[1].lo, 2u);
  EXPECT_EQ(even[2].lo, 4u);
  ASSERT_EQ(odd.size(), 2u);
  EXPECT_EQ(odd[0].lo, 1u);
  EXPECT_EQ(odd[1].lo, 3u);
  for (const auto& pair : even) EXPECT_EQ(pair.hi, pair.lo + 1);
}

TEST(RepexPairsTest, AllPairsEnumeratesEveryPairOnce) {
  const auto pairs = candidate_pairs(ExchangeTopology::kAllPairs, 5, 3);
  EXPECT_EQ(pairs.size(), 10u);  // C(5, 2)
  for (const auto& pair : pairs) EXPECT_LT(pair.lo, pair.hi);
}

TEST(RepexPairsTest, DegenerateReplicaCountsYieldNoPairs) {
  EXPECT_TRUE(
      candidate_pairs(ExchangeTopology::kNearestNeighbour, 1, 0).empty());
  EXPECT_TRUE(candidate_pairs(ExchangeTopology::kAllPairs, 0, 0).empty());
}

TEST(RepexAcceptTest, UniformIsDeterministicAndInRange) {
  for (std::size_t round = 0; round < 8; ++round) {
    const double u = exchange_uniform(42, round, 1, 2);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_DOUBLE_EQ(u, exchange_uniform(42, round, 1, 2));
  }
  EXPECT_NE(exchange_uniform(42, 0, 1, 2), exchange_uniform(43, 0, 1, 2));
  EXPECT_NE(exchange_uniform(42, 0, 1, 2), exchange_uniform(42, 1, 1, 2));
}

TEST(RepexAcceptTest, NonNegativeDeltaAlwaysAccepts) {
  EXPECT_TRUE(exchange_accept(42, 0, 0, 1, 0.0));
  EXPECT_TRUE(exchange_accept(42, 0, 0, 1, 5.0));
  // A hugely negative exponent is (practically) always rejected.
  EXPECT_FALSE(exchange_accept(42, 0, 0, 1, -500.0));
}

TEST(RepexEnergyTest, EnergyComposesBasePlusDelta) {
  const RepexParams p = tiny_params();
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(replica_energy(p, c, 2),
                     base_observable(p, c) + round_delta(p, c, 2));
  }
}

TEST(RepexEnergyTest, BaseEvaluationCounterInstrumented) {
  RepexParams p = tiny_params();
  std::atomic<std::uint64_t> evals{0};
  p.base_evaluations = &evals;
  base_observable(p, 0);
  base_observable(p, 1);
  round_delta(p, 0, 0);  // the cheap advance is not counted
  EXPECT_EQ(evals.load(), 2u);
}

TEST(RepexGreedyFilterTest, DropsPairsTouchingAcceptedSlots) {
  std::vector<ExchangeDecision> raw;
  raw.push_back({0, 1, 0, 1, 1.0, true});
  raw.push_back({1, 2, 1, 2, 1.0, true});   // slot 1 already swapped
  raw.push_back({2, 3, 2, 3, -9.0, false});  // slot 2 free again
  raw.push_back({3, 4, 3, 4, 1.0, true});   // rejected pair above frees 3
  const auto kept = greedy_filter(raw);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].slot_lo, 0u);
  EXPECT_EQ(kept[1].slot_lo, 2u);
  EXPECT_EQ(kept[2].slot_lo, 3u);
}

TEST(RepexGreedyFilterTest, CanonicalOrderIndependentOfInputOrder) {
  std::vector<ExchangeDecision> a;
  a.push_back({2, 3, 2, 3, 1.0, true});
  a.push_back({0, 1, 0, 1, 1.0, true});
  std::vector<ExchangeDecision> b(a.rbegin(), a.rend());
  const auto ka = greedy_filter(a);
  const auto kb = greedy_filter(b);
  ASSERT_EQ(ka.size(), kb.size());
  for (std::size_t i = 0; i < ka.size(); ++i) {
    EXPECT_EQ(ka[i].slot_lo, kb[i].slot_lo);
    EXPECT_EQ(ka[i].slot_hi, kb[i].slot_hi);
  }
}

TEST(RepexExchangeTest, ApplyKeepsPermutation) {
  const RepexParams p = tiny_params();
  std::vector<std::size_t> configs(p.replicas);
  std::iota(configs.begin(), configs.end(), std::size_t{0});
  for (std::size_t round = 0; round < 4; ++round) {
    std::vector<double> energies(p.replicas);
    for (std::size_t s = 0; s < p.replicas; ++s) {
      energies[s] = replica_energy(p, configs[s], round);
    }
    apply_exchanges(configs, decide_exchanges(p, round, configs, energies));
    auto sorted = configs;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t s = 0; s < p.replicas; ++s) EXPECT_EQ(sorted[s], s);
  }
}

TEST(RepexExchangeTest, DecisionStreamIsDeterministic) {
  const RepexParams p = tiny_params();
  std::vector<std::size_t> configs(p.replicas);
  std::iota(configs.begin(), configs.end(), std::size_t{0});
  std::vector<double> energies(p.replicas);
  for (std::size_t s = 0; s < p.replicas; ++s) {
    energies[s] = replica_energy(p, configs[s], 1);
  }
  const auto a = decide_exchanges(p, 1, configs, energies);
  const auto b = decide_exchanges(p, 1, configs, energies);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].accepted, b[i].accepted);
    EXPECT_DOUBLE_EQ(a[i].delta, b[i].delta);
  }
}

TEST(RepexConvergenceTest, WindowSemantics) {
  RepexParams p = tiny_params();
  p.acceptance_window = 2;
  p.min_rounds = 2;
  p.acceptance_tolerance = 0.05;
  // Too few rounds for two windows.
  EXPECT_FALSE(acceptance_converged(p, {0.5, 0.5, 0.5}));
  // Two settled windows.
  EXPECT_TRUE(acceptance_converged(p, {0.5, 0.52, 0.51, 0.49}));
  // Windows still drifting apart.
  EXPECT_FALSE(acceptance_converged(p, {0.9, 0.9, 0.2, 0.2}));
  // Window 0 disables the early exit.
  RepexParams off = p;
  off.acceptance_window = 0;
  EXPECT_FALSE(acceptance_converged(off, {0.5, 0.5, 0.5, 0.5}));
  // min_rounds floors the exit even with settled windows.
  RepexParams strict = p;
  strict.min_rounds = 6;
  EXPECT_FALSE(acceptance_converged(strict, {0.5, 0.5, 0.5, 0.5}));
}

}  // namespace
}  // namespace mdtask::repex
