// The DES twin of the RepEx runner: virtual-time replays must be
// deterministic per seed, cost-model-sensible across engines, and —
// the subsystem's headline contract — produce canonical RecoveryLogs
// byte-identical to the live runs' for the same seed.
#include "mdtask/repex/sim_repex.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mdtask/workflows/repex_runner.h"

namespace mdtask::repex {
namespace {

using workflows::EngineKind;

std::string engine_id(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMpi: return "MPI";
    case EngineKind::kSpark: return "Spark";
    case EngineKind::kDask: return "Dask";
    case EngineKind::kRp: return "RP";
  }
  return "Unknown";
}

RepexConfig tiny_config() {
  RepexConfig config;
  config.params.replicas = 5;
  config.params.max_rounds = 4;
  config.params.min_rounds = 1;
  config.params.acceptance_window = 0;
  config.params.atoms = 5;
  config.params.frames = 4;
  config.params.window_frames = 2;
  config.params.seed = 42;
  config.workers = 3;
  return config;
}

class SimRepexEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(SimRepexEngineTest, LiveAndDesLogsAreByteIdentical) {
  const RepexConfig base = tiny_config();
  RepexConfig live_config = base;
  fault::RecoveryLog live_log, des_log;
  live_config.recovery_log = &live_log;
  const auto live = run_repex(GetParam(), live_config);
  const auto des = simulate_repex_wave(base, GetParam(), &des_log);
  EXPECT_EQ(live_log.canonical(), des_log.canonical())
      << engine_id(GetParam());
  EXPECT_EQ(live.rounds, des.rounds);
  EXPECT_EQ(live.attempted, des.attempted);
  EXPECT_EQ(live.accepted, des.accepted);
  EXPECT_EQ(live.final_configs, des.final_configs);
  EXPECT_EQ(live.acceptance_trajectory, des.acceptance_trajectory);
  EXPECT_EQ(live.final_energies, des.final_energies);
}

TEST_P(SimRepexEngineTest, SameSeedIsEventForEventIdentical) {
  const RepexConfig config = tiny_config();
  fault::RecoveryLog log_a, log_b;
  const auto a = simulate_repex_wave(config, GetParam(), &log_a);
  const auto b = simulate_repex_wave(config, GetParam(), &log_b);
  EXPECT_EQ(log_a.canonical(), log_b.canonical());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.barrier_wait_s, b.barrier_wait_s);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST_P(SimRepexEngineTest, DifferentSeedsDiverge) {
  RepexConfig a = tiny_config();
  RepexConfig b = tiny_config();
  b.params.seed = 1234;
  fault::RecoveryLog log_a, log_b;
  simulate_repex_wave(a, GetParam(), &log_a);
  simulate_repex_wave(b, GetParam(), &log_b);
  EXPECT_NE(log_a.canonical(), log_b.canonical());
}

TEST_P(SimRepexEngineTest, MakespanAndBarriersArePositive) {
  const auto outcome = simulate_repex_wave(tiny_config(), GetParam());
  EXPECT_GT(outcome.makespan_s, 0.0);
  EXPECT_GT(outcome.barrier_wait_s, 0.0);
  EXPECT_GT(outcome.events_processed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Engines, SimRepexEngineTest,
                         ::testing::Values(EngineKind::kMpi,
                                           EngineKind::kSpark,
                                           EngineKind::kDask,
                                           EngineKind::kRp),
                         [](const auto& param_info) {
                           return engine_id(param_info.param);
                         });

TEST(SimRepexCostTest, DbLatencyDominatesRpMakespan) {
  RepexConfig fast = tiny_config();
  RepexConfig slow = tiny_config();
  slow.db_roundtrip_latency_s = 0.05;
  const auto a = simulate_repex_wave(fast, EngineKind::kRp);
  const auto b = simulate_repex_wave(slow, EngineKind::kRp);
  EXPECT_GT(b.makespan_s, a.makespan_s);
}

TEST(SimRepexCostTest, SparkCacheOffRecomputesBasesEveryRound) {
  RepexConfig cached = tiny_config();
  RepexConfig uncached = tiny_config();
  uncached.cache_static = false;
  const auto a = simulate_repex_wave(cached, EngineKind::kSpark);
  const auto b = simulate_repex_wave(uncached, EngineKind::kSpark);
  EXPECT_GT(b.makespan_s, a.makespan_s);
}

TEST(SimRepexCostTest, MpiBarriersAreCheapestSparkShufflesCostlier) {
  const RepexConfig config = tiny_config();
  const auto mpi = simulate_repex_wave(config, EngineKind::kMpi);
  const auto spark = simulate_repex_wave(config, EngineKind::kSpark);
  EXPECT_LT(mpi.makespan_s, spark.makespan_s);
}

TEST(SimRepexFacadeTest, RunnerSimulateMatchesFreeFunction) {
  const Runner runner(tiny_config());
  fault::RecoveryLog log_a, log_b;
  const auto a = runner.simulate(EngineKind::kDask, &log_a);
  const auto b =
      simulate_repex_wave(runner.config(), EngineKind::kDask, &log_b);
  EXPECT_EQ(log_a.canonical(), log_b.canonical());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

}  // namespace
}  // namespace mdtask::repex
