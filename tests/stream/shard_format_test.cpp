// Round-trip property tests for the sharded store (MDS) format:
// randomized seeded trajectories across shard sizes and compression
// settings must decode byte-identically, and every corruption class
// (truncation, bit-flip, bad magic) must be rejected with kFormatError
// before any garbage reaches an analysis kernel.
#include "mdtask/stream/shard_format.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <vector>

#include "mdtask/stream/shard_reader.h"
#include "mdtask/traj/generators.h"

namespace mdtask::stream {
namespace {

class ShardFormatTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/shard_format_test.mds";
  void TearDown() override { std::remove(path_.c_str()); }
};

traj::Trajectory random_trajectory(std::size_t frames, std::size_t atoms,
                                   std::uint64_t seed) {
  traj::ProteinTrajectoryParams p;
  p.frames = frames;
  p.atoms = atoms;
  p.seed = seed;
  return traj::make_protein_trajectory(p);
}

void expect_identical(const traj::Trajectory& got,
                      const traj::Trajectory& want) {
  ASSERT_EQ(got.frames(), want.frames());
  ASSERT_EQ(got.atoms(), want.atoms());
  const auto a = got.data();
  const auto b = want.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

TEST_F(ShardFormatTest, RoundTripAcrossShardSizesAndCompression) {
  // Property sweep: shard sizes that divide the frame count, that don't
  // (short last shard), and the degenerate one-frame-per-shard case,
  // each with the codec on and off, over distinct seeded trajectories.
  const std::size_t kFramesPerShard[] = {1, 3, 8, 64};
  std::uint64_t seed = 100;
  for (const bool compress : {true, false}) {
    for (const std::size_t fps : kFramesPerShard) {
      const traj::Trajectory t = random_trajectory(21, 17, seed++);
      ShardStoreOptions opts;
      opts.frames_per_shard = fps;
      opts.delta_compress = compress;
      ASSERT_TRUE(write_sharded(path_, t, opts).ok());

      auto reader = ShardReader::open(path_);
      ASSERT_TRUE(reader.ok()) << reader.error().to_string();
      const ShardReader& r = reader.value();
      EXPECT_EQ(r.frames(), t.frames());
      EXPECT_EQ(r.atoms(), t.atoms());
      EXPECT_EQ(r.shard_count(), (t.frames() + fps - 1) / fps);
      EXPECT_EQ(r.info().compressed(), compress);

      auto back = r.read_all();
      ASSERT_TRUE(back.ok()) << back.error().to_string();
      expect_identical(back.value(), t);
    }
  }
}

TEST_F(ShardFormatTest, ReadShardAndFrameRangesMatchSource) {
  const traj::Trajectory t = random_trajectory(26, 9, 7);
  ShardStoreOptions opts;
  opts.frames_per_shard = 8;  // shards: 8, 8, 8, 2
  ASSERT_TRUE(write_sharded(path_, t, opts).ok());
  auto reader = ShardReader::open(path_);
  ASSERT_TRUE(reader.ok());
  const ShardReader& r = reader.value();

  for (std::size_t s = 0; s < r.shard_count(); ++s) {
    const auto [first, count] = r.shard_range(s);
    auto shard = r.read_shard(s);
    ASSERT_TRUE(shard.ok());
    ASSERT_EQ(shard.value().frames(), count);
    for (std::size_t f = 0; f < count; ++f) {
      for (std::size_t a = 0; a < t.atoms(); ++a) {
        ASSERT_EQ(shard.value().frame(f)[a], t.frame(first + f)[a]);
      }
    }
  }

  // A range crossing two shard boundaries.
  auto range = r.read_frames(6, 12);
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(range.value().frames(), 12u);
  for (std::size_t f = 0; f < 12; ++f) {
    for (std::size_t a = 0; a < t.atoms(); ++a) {
      ASSERT_EQ(range.value().frame(f)[a], t.frame(6 + f)[a]);
    }
  }
  EXPECT_GT(r.bytes_read(), 0u);
  EXPECT_GT(r.shards_fetched(), 0u);
}

TEST_F(ShardFormatTest, MmapModeMatchesStreamMode) {
  const traj::Trajectory t = random_trajectory(12, 23, 11);
  ASSERT_TRUE(write_sharded(path_, t).ok());
  auto mapped = ShardReader::open(path_, ShardReader::Mode::kMmap);
  ASSERT_TRUE(mapped.ok()) << mapped.error().to_string();
  auto back = mapped.value().read_all();
  ASSERT_TRUE(back.ok());
  expect_identical(back.value(), t);
}

TEST_F(ShardFormatTest, PointCloudRoundTrip) {
  traj::BilayerParams p;
  p.atoms = 512;
  const traj::Bilayer bilayer = traj::make_bilayer(p);
  ShardStoreOptions opts;
  opts.frames_per_shard = 100;  // 512 points -> 6 shards, last short
  ASSERT_TRUE(write_sharded_points(path_, bilayer.positions, opts).ok());
  auto reader = ShardReader::open(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().frames(), bilayer.positions.size());
  EXPECT_EQ(reader.value().atoms(), 1u);
  auto back = reader.value().read_all();
  ASSERT_TRUE(back.ok());
  const auto data = back.value().data();
  ASSERT_EQ(data.size(), bilayer.positions.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], bilayer.positions[i]);
  }
}

TEST_F(ShardFormatTest, DeltaCodecIsLosslessOnRandomBytes) {
  // The codec must invert on arbitrary payloads, not just smooth MD
  // data; fuzz with incompressible bytes and zero-dense bytes.
  std::mt19937_64 rng(1234);
  for (int round = 0; round < 8; ++round) {
    const std::size_t frame_bytes = 24 * (1 + round % 3);
    const std::size_t frames = 1 + (round * 7) % 11;
    std::vector<std::uint8_t> raw(frame_bytes * frames);
    for (auto& b : raw) {
      // Even rounds: random bytes. Odd rounds: mostly zeros (RLE path).
      b = (round % 2 == 0 || rng() % 4 == 0)
              ? static_cast<std::uint8_t>(rng())
              : 0;
    }
    const std::vector<std::uint8_t> encoded = delta_encode(raw, frame_bytes);
    auto decoded = delta_decode(encoded, frame_bytes, raw.size());
    ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
    ASSERT_EQ(decoded.value(), raw) << "round " << round;
  }
}

TEST_F(ShardFormatTest, SmoothTrajectoriesCompress) {
  // The whole point of XOR-delta: consecutive MD frames differ in few
  // mantissa bits, so the stored file shrinks versus the raw payload.
  const traj::Trajectory t = random_trajectory(64, 333, 3);
  ShardStoreOptions raw_opts;
  raw_opts.delta_compress = false;
  ASSERT_TRUE(write_sharded(path_, t, raw_opts).ok());
  auto raw_reader = ShardReader::open(path_);
  ASSERT_TRUE(raw_reader.ok());
  std::uint64_t raw_stored = 0;
  for (const auto& e : raw_reader.value().info().index) {
    raw_stored += e.stored_bytes;
  }

  ASSERT_TRUE(write_sharded(path_, t).ok());  // compression on (default)
  auto reader = ShardReader::open(path_);
  ASSERT_TRUE(reader.ok());
  std::uint64_t stored = 0;
  for (const auto& e : reader.value().info().index) {
    stored += e.stored_bytes;
    // Invariant: encoding never inflates a stored shard.
    EXPECT_LE(e.stored_bytes, e.raw_bytes);
  }
  EXPECT_LT(stored, raw_stored);
}

TEST_F(ShardFormatTest, Fnv1a64MatchesReferenceVectors) {
  EXPECT_EQ(fnv1a64({}), 0xcbf29ce484222325ull);
  const std::uint8_t a[] = {'a'};
  EXPECT_EQ(fnv1a64(a), 0xaf63dc4c8601ec8cull);
  const std::uint8_t ab[] = {'a', 'b'};
  EXPECT_NE(fnv1a64(ab), fnv1a64(a));
}

TEST_F(ShardFormatTest, BadMagicRejectedAtOpen) {
  const traj::Trajectory t = random_trajectory(8, 4, 1);
  ASSERT_TRUE(write_sharded(path_, t).ok());
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.put('X');
  }
  auto reader = ShardReader::open(path_);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.error().code(), ErrorCode::kFormatError);
}

TEST_F(ShardFormatTest, TruncatedFileRejected) {
  const traj::Trajectory t = random_trajectory(16, 8, 2);
  ShardStoreOptions opts;
  opts.frames_per_shard = 4;
  ASSERT_TRUE(write_sharded(path_, t, opts).ok());
  std::ifstream in(path_, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  // Chop the last shard's tail: the index now points past end of file.
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 9));
  out.close();
  auto reader = ShardReader::open(path_);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.error().code(), ErrorCode::kFormatError);

  // Chop inside the header itself.
  std::ofstream out2(path_, std::ios::binary | std::ios::trunc);
  out2.write(bytes.data(), 11);
  out2.close();
  auto reader2 = ShardReader::open(path_);
  ASSERT_FALSE(reader2.ok());
  EXPECT_EQ(reader2.error().code(), ErrorCode::kFormatError);
}

TEST_F(ShardFormatTest, BitFlipCaughtByChecksum) {
  const traj::Trajectory t = random_trajectory(16, 8, 3);
  ShardStoreOptions opts;
  opts.frames_per_shard = 4;
  ASSERT_TRUE(write_sharded(path_, t, opts).ok());
  // Flip one bit in the last payload byte; only the owning shard fails.
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(-1, std::ios::end);
  char b = 0;
  f.get(b);
  f.seekp(-1, std::ios::end);
  f.put(static_cast<char>(b ^ 0x40));
  f.close();

  auto reader = ShardReader::open(path_);
  ASSERT_TRUE(reader.ok());  // header and index are intact
  const std::size_t last = reader.value().shard_count() - 1;
  auto corrupt = reader.value().read_shard(last);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.error().code(), ErrorCode::kFormatError);
  // Other shards still decode.
  auto clean = reader.value().read_shard(0);
  ASSERT_TRUE(clean.ok());
}

TEST_F(ShardFormatTest, MissingFileIsAnError) {
  auto reader = ShardReader::open(::testing::TempDir() + "/no-such-store.mds");
  ASSERT_FALSE(reader.ok());
}

TEST_F(ShardFormatTest, ShardPartitionsCoverAndBalance) {
  const auto parts = shard_partitions(10, 4);  // 3,3,2,2
  ASSERT_EQ(parts.size(), 4u);
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (const auto& p : parts) {
    EXPECT_EQ(p.begin, prev_end);
    prev_end = p.end;
    covered += p.size();
    EXPECT_GE(p.size(), 2u);
    EXPECT_LE(p.size(), 3u);
  }
  EXPECT_EQ(covered, 10u);
  // More parts than shards: one shard each, no empties.
  const auto fine = shard_partitions(3, 8);
  ASSERT_EQ(fine.size(), 3u);
  for (const auto& p : fine) EXPECT_EQ(p.size(), 1u);
}

}  // namespace
}  // namespace mdtask::stream
