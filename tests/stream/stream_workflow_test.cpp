// The byte-identical guard: streaming PSA / Leaflet Finder over a
// sharded store must produce results bit-for-bit equal to the in-memory
// runners on every engine — the property that lets published figure
// CSVs stay identical whether the input was materialized or streamed.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "mdtask/stream/shard_format.h"
#include "mdtask/traj/generators.h"
#include "mdtask/workflows/leaflet_runner.h"
#include "mdtask/workflows/psa_runner.h"

namespace mdtask::workflows {
namespace {

using stream::ShardStoreOptions;
using stream::write_sharded;
using stream::write_sharded_points;

constexpr EngineKind kEngines[] = {EngineKind::kMpi, EngineKind::kSpark,
                                   EngineKind::kDask, EngineKind::kRp};

class StreamWorkflowTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/stream_workflow_test.mds";
  void TearDown() override { std::remove(path_.c_str()); }
};

/// The PSA store layout: N trajectories concatenated frame-major.
traj::Trajectory concatenate(const traj::Ensemble& ensemble) {
  const std::size_t frames_each = ensemble.front().frames();
  const std::size_t atoms = ensemble.front().atoms();
  traj::Trajectory all(frames_each * ensemble.size(), atoms);
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    std::memcpy(all.data().data() + i * frames_each * atoms,
                ensemble[i].data().data(),
                frames_each * atoms * sizeof(traj::Vec3));
  }
  return all;
}

TEST_F(StreamWorkflowTest, PsaMatrixBitIdenticalOnEveryEngine) {
  traj::ProteinTrajectoryParams p;
  p.atoms = 19;
  p.frames = 12;
  const traj::Ensemble ensemble = traj::make_protein_ensemble(6, p);
  ShardStoreOptions opts;
  opts.frames_per_shard = 5;  // deliberately misaligned with 12-frame rows
  ASSERT_TRUE(write_sharded(path_, concatenate(ensemble), opts).ok());

  StreamInput input;
  input.path = path_;
  input.trajectories = ensemble.size();
  PsaRunConfig config;
  config.workers = 3;
  for (const EngineKind engine : kEngines) {
    const PsaRunResult memory = run_psa(engine, ensemble, config);
    auto streamed = run_psa_streamed(engine, input, config);
    ASSERT_TRUE(streamed.ok())
        << to_string(engine) << ": " << streamed.error().to_string();
    EXPECT_EQ(streamed.value().matrix.data(), memory.matrix.data())
        << to_string(engine);
    EXPECT_EQ(streamed.value().metrics.tasks, memory.metrics.tasks);
    EXPECT_GT(streamed.value().metrics.staged_bytes, 0u);
  }
}

TEST_F(StreamWorkflowTest, PsaMmapModeAlsoBitIdentical) {
  traj::ProteinTrajectoryParams p;
  p.atoms = 11;
  p.frames = 8;
  const traj::Ensemble ensemble = traj::make_protein_ensemble(4, p);
  ASSERT_TRUE(write_sharded(path_, concatenate(ensemble)).ok());
  StreamInput input;
  input.path = path_;
  input.mode = stream::ShardReader::Mode::kMmap;
  input.trajectories = ensemble.size();
  const PsaRunResult memory = run_psa(EngineKind::kDask, ensemble);
  auto streamed = run_psa_streamed(EngineKind::kDask, input);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed.value().matrix.data(), memory.matrix.data());
}

TEST_F(StreamWorkflowTest, PsaRejectsBadInputs) {
  traj::ProteinTrajectoryParams p;
  p.atoms = 5;
  p.frames = 7;
  const traj::Ensemble ensemble = traj::make_protein_ensemble(3, p);
  ASSERT_TRUE(write_sharded(path_, concatenate(ensemble)).ok());

  StreamInput input;
  input.path = path_;
  input.trajectories = 0;  // unset
  auto unset = run_psa_streamed(EngineKind::kMpi, input);
  ASSERT_FALSE(unset.ok());
  EXPECT_EQ(unset.error().code(), ErrorCode::kInvalidArgument);

  input.trajectories = 4;  // 21 frames do not divide into 4 rows
  auto misaligned = run_psa_streamed(EngineKind::kMpi, input);
  ASSERT_FALSE(misaligned.ok());
  EXPECT_EQ(misaligned.error().code(), ErrorCode::kInvalidArgument);

  input.path = ::testing::TempDir() + "/no-such-store.mds";
  input.trajectories = 3;
  auto missing = run_psa_streamed(EngineKind::kMpi, input);
  ASSERT_FALSE(missing.ok());
}

TEST_F(StreamWorkflowTest, LeafletBitIdenticalAcrossEnginesAndApproaches) {
  traj::BilayerParams p;
  p.atoms = 1024;
  const traj::Bilayer bilayer = traj::make_bilayer(p);
  const double cutoff = traj::default_cutoff(p);
  ShardStoreOptions opts;
  opts.frames_per_shard = 100;  // atom ranges cross block boundaries
  ASSERT_TRUE(write_sharded_points(path_, bilayer.positions, opts).ok());

  StreamInput input;
  input.path = path_;
  LfRunConfig config;
  config.workers = 3;
  config.target_tasks = 12;
  for (const EngineKind engine : kEngines) {
    for (int approach = 1; approach <= 4; ++approach) {
      auto memory =
          run_leaflet_finder(engine, approach, bilayer.positions, cutoff,
                             config);
      ASSERT_TRUE(memory.ok());
      auto streamed =
          run_leaflet_finder_streamed(engine, approach, input, cutoff,
                                      config);
      ASSERT_TRUE(streamed.ok()) << to_string(engine) << " approach "
                                 << approach << ": "
                                 << streamed.error().to_string();
      const auto& a = memory.value().leaflets;
      const auto& b = streamed.value().leaflets;
      EXPECT_EQ(b.labels, a.labels)
          << to_string(engine) << " approach " << approach;
      EXPECT_EQ(b.component_count, a.component_count);
      EXPECT_EQ(b.leaflet_a_size, a.leaflet_a_size);
      EXPECT_EQ(b.leaflet_b_size, a.leaflet_b_size);
      EXPECT_EQ(streamed.value().edges_found, memory.value().edges_found);
      EXPECT_GT(streamed.value().metrics.staged_bytes, 0u);
    }
  }
}

TEST_F(StreamWorkflowTest, LeafletStreamedSurvivesInjectedReadFaults) {
  // A transient read error injected into an engine task fails the
  // attempt; the engine's native recovery re-runs it, which re-reads
  // the shard — results stay byte-identical and the log is seeded.
  traj::BilayerParams p;
  p.atoms = 512;
  const traj::Bilayer bilayer = traj::make_bilayer(p);
  const double cutoff = traj::default_cutoff(p);
  ASSERT_TRUE(write_sharded_points(path_, bilayer.positions).ok());

  StreamInput input;
  input.path = path_;
  LfRunConfig config;
  config.workers = 2;
  config.target_tasks = 8;
  auto memory = run_leaflet_finder(EngineKind::kDask, 3, bilayer.positions,
                                   cutoff, config);
  ASSERT_TRUE(memory.ok());

  fault::FaultPlan plan;
  plan.schedule.push_back({fault::FaultKind::kTransientReadError, 1, 0});
  plan.retry.max_attempts = 3;
  std::vector<std::string> canonical_first;
  for (int round = 0; round < 2; ++round) {
    fault::RecoveryLog log;
    LfRunConfig faulted = config;
    faulted.fault_plan = &plan;
    faulted.recovery_log = &log;
    auto streamed = run_leaflet_finder_streamed(EngineKind::kDask, 3, input,
                                                cutoff, faulted);
    ASSERT_TRUE(streamed.ok()) << streamed.error().to_string();
    EXPECT_EQ(streamed.value().leaflets.labels, memory.value().leaflets.labels);
    EXPECT_GE(log.size(), 1u);
    if (round == 0) {
      canonical_first = log.canonical();
    } else {
      EXPECT_EQ(log.canonical(), canonical_first);  // seed-deterministic
    }
  }
}

TEST_F(StreamWorkflowTest, LeafletRejectsUnknownApproachAndMissingStore) {
  traj::BilayerParams p;
  p.atoms = 64;
  const traj::Bilayer bilayer = traj::make_bilayer(p);
  ASSERT_TRUE(write_sharded_points(path_, bilayer.positions).ok());
  StreamInput input;
  input.path = path_;
  auto bad = run_leaflet_finder_streamed(EngineKind::kMpi, 5, input, 1.5);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::kInvalidArgument);

  input.path = ::testing::TempDir() + "/no-such-store.mds";
  auto missing = run_leaflet_finder_streamed(EngineKind::kMpi, 2, input, 1.5);
  ASSERT_FALSE(missing.ok());
}

}  // namespace
}  // namespace mdtask::workflows
