// Concurrency tests for the async prefetch pipeline: in-order delivery
// under fast and slow consumers, the depth bound, cancellation
// mid-stream and clean teardown with tiles in flight. Run under TSan in
// CI (the stream cell of the sanitizer matrix).
#include "mdtask/stream/prefetch.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <thread>
#include <vector>

#include "mdtask/common/thread_pool.h"
#include "mdtask/traj/generators.h"

namespace mdtask::stream {
namespace {

class PrefetchTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/prefetch_test.mds";

  void SetUp() override {
    traj::ProteinTrajectoryParams p;
    p.frames = 40;
    p.atoms = 13;
    p.seed = 5;
    source_ = traj::make_protein_trajectory(p);
    ShardStoreOptions opts;
    opts.frames_per_shard = 4;  // 10 shards
    ASSERT_TRUE(write_sharded(path_, source_, opts).ok());
    auto reader = ShardReader::open(path_);
    ASSERT_TRUE(reader.ok());
    reader_.emplace(std::move(reader.value()));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  traj::Trajectory source_;
  std::optional<ShardReader> reader_;
};

void expect_tile_matches(const FrameTile& tile, const traj::Trajectory& src) {
  for (std::size_t f = 0; f < tile.frames.frames(); ++f) {
    for (std::size_t a = 0; a < src.atoms(); ++a) {
      ASSERT_EQ(tile.frames.frame(f)[a], src.frame(tile.first_frame + f)[a]);
    }
  }
}

TEST_F(PrefetchTest, DeliversEveryShardInOrder) {
  ThreadPool pool(3);
  PrefetchPipeline pipe(*reader_, pool);
  std::size_t expected = 0;
  while (true) {
    auto tile = pipe.next();
    ASSERT_TRUE(tile.ok()) << tile.error().to_string();
    if (!tile.value().has_value()) break;
    EXPECT_EQ(tile.value()->shard, expected);
    EXPECT_EQ(tile.value()->first_frame, expected * 4);
    expect_tile_matches(*tile.value(), source_);
    ++expected;
  }
  EXPECT_EQ(expected, reader_->shard_count());
  EXPECT_EQ(pipe.tiles_delivered(), reader_->shard_count());
  // End of stream is sticky.
  auto again = pipe.next();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().has_value());
}

TEST_F(PrefetchTest, SlowConsumerKeepsBufferWithinDepth) {
  ThreadPool pool(4);
  PrefetchOptions opts;
  opts.depth = 2;
  PrefetchPipeline pipe(*reader_, pool, opts);
  // Let the producers race ahead of a consumer that never shows up; the
  // exchange buffer must saturate at `depth`, not the whole store.
  pool.wait_idle();
  EXPECT_LE(pipe.buffered(), opts.depth);
  std::size_t count = 0;
  while (true) {
    auto tile = pipe.next();
    ASSERT_TRUE(tile.ok());
    if (!tile.value().has_value()) break;
    EXPECT_EQ(tile.value()->shard, count);
    EXPECT_LE(pipe.buffered(), opts.depth);
    ++count;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(count, reader_->shard_count());
}

TEST_F(PrefetchTest, FastConsumerFromAnotherThreadSeesSequentialOrder) {
  ThreadPool pool(2);
  PrefetchOptions opts;
  opts.depth = 3;
  PrefetchPipeline pipe(*reader_, pool, opts);
  std::vector<std::size_t> order;
  std::thread consumer([&] {
    while (true) {
      auto tile = pipe.next();
      if (!tile.ok() || !tile.value().has_value()) break;
      order.push_back(tile.value()->shard);
    }
  });
  consumer.join();
  ASSERT_EQ(order.size(), reader_->shard_count());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST_F(PrefetchTest, ShardRangeStreamsOnlyThePartition) {
  ThreadPool pool(2);
  PrefetchOptions opts;
  opts.begin_shard = 3;
  opts.end_shard = 7;
  PrefetchPipeline pipe(*reader_, pool, opts);
  std::size_t expected = 3;
  while (true) {
    auto tile = pipe.next();
    ASSERT_TRUE(tile.ok());
    if (!tile.value().has_value()) break;
    EXPECT_EQ(tile.value()->shard, expected++);
    expect_tile_matches(*tile.value(), source_);
  }
  EXPECT_EQ(expected, 7u);
}

TEST_F(PrefetchTest, PackTilesBuildsLanesOffTheCriticalPath) {
  ThreadPool pool(2);
  PrefetchOptions opts;
  opts.pack_tiles = true;
  PrefetchPipeline pipe(*reader_, pool, opts);
  std::size_t tiles = 0;
  while (true) {
    auto tile = pipe.next();
    ASSERT_TRUE(tile.ok());
    if (!tile.value().has_value()) break;
    ASSERT_TRUE(tile.value()->pack.has_value());
    EXPECT_EQ(tile.value()->pack->frames(), tile.value()->frames.frames());
    EXPECT_EQ(tile.value()->pack->atoms(), tile.value()->frames.atoms());
    ++tiles;
  }
  EXPECT_EQ(tiles, reader_->shard_count());
}

TEST_F(PrefetchTest, CancelMidStreamUnblocksConsumer) {
  ThreadPool pool(2);
  PrefetchPipeline pipe(*reader_, pool);
  auto first = pipe.next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().has_value());
  pipe.cancel();
  auto after = pipe.next();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.error().code(), ErrorCode::kCancelled);
  // cancel() is idempotent and next() stays cancelled.
  pipe.cancel();
  auto again = pipe.next();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code(), ErrorCode::kCancelled);
}

TEST_F(PrefetchTest, CancelFromAnotherThreadWhileConsumerBlocks) {
  ThreadPool pool(1);
  PrefetchPipeline pipe(*reader_, pool);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    pipe.cancel();
  });
  // Drain until the cancel lands; every pre-cancel tile is well-formed.
  while (true) {
    auto tile = pipe.next();
    if (!tile.ok()) {
      EXPECT_EQ(tile.error().code(), ErrorCode::kCancelled);
      break;
    }
    if (!tile.value().has_value()) break;  // cancel raced end-of-stream
  }
  canceller.join();
}

TEST_F(PrefetchTest, DestructorDrainsInFlightTiles) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    PrefetchPipeline pipe(*reader_, pool);
    auto tile = pipe.next();
    ASSERT_TRUE(tile.ok());
    // Destroyed with producers mid-flight; must not leak, hang or race
    // the pool (TSan guards this loop in CI).
  }
  pool.wait_idle();
}

TEST_F(PrefetchTest, CorruptShardSurfacesItsError) {
  // Flip a byte in the last shard's payload; the pipeline must deliver
  // every clean tile first and then surface kFormatError in order.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(-1, std::ios::end);
    char b = 0;
    f.get(b);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(b ^ 0x01));
  }
  auto reopened = ShardReader::open(path_);
  ASSERT_TRUE(reopened.ok());
  ThreadPool pool(2);
  PrefetchPipeline pipe(reopened.value(), pool);
  std::size_t clean = 0;
  while (true) {
    auto tile = pipe.next();
    if (!tile.ok()) {
      EXPECT_EQ(tile.error().code(), ErrorCode::kFormatError);
      break;
    }
    ASSERT_TRUE(tile.value().has_value()) << "error tile never surfaced";
    EXPECT_EQ(tile.value()->shard, clean);
    ++clean;
  }
  EXPECT_EQ(clean, reopened.value().shard_count() - 1);
}

}  // namespace
}  // namespace mdtask::stream
