// DES replay of streamed task waves: the serial reader must show the
// I/O-bound straggler regime (cores starved on reads), double-buffered
// prefetch must win >= 1.5x while the filesystem is uncontended, and
// the win must compress once concurrent streams exceed the backend's
// saturation point — plus fault-plan composition and determinism.
#include "mdtask/stream/sim_io.h"

#include <gtest/gtest.h>

#include <vector>

namespace mdtask::stream {
namespace {

// A Wrangler-like flash filesystem: 1.5 GB/s per stream, 6 GB/s
// aggregate -> 4 concurrent streams at full rate.
sim::FileSystemModel test_fs() {
  sim::FileSystemModel fs;
  fs.seek_latency_s = 1e-3;
  fs.stream_Bps = 1.0e9;
  fs.aggregate_Bps = 4.0e9;
  return fs;
}

// Read 25 MB (26 ms with seek) then compute 30 ms: read and compute
// are comparable, the regime where double buffering pays.
std::vector<StreamTask> balanced_tasks(std::size_t count) {
  return std::vector<StreamTask>(count, {0.030, 25'000'000});
}

TEST(SimIoTest, SerialWaveIsIoBound) {
  const auto fs = test_fs();
  const auto tasks = balanced_tasks(64);
  const StreamWaveOutcome serial = simulate_stream_wave(4, tasks, fs);
  ASSERT_TRUE(serial.completed);
  EXPECT_EQ(serial.reads, 64u);
  EXPECT_EQ(serial.retried_reads, 0u);
  EXPECT_NEAR(serial.compute_s, 64 * 0.030, 1e-9);
  // 4 readers on a 4-stream filesystem: uncontended, so each core
  // alternates a 26 ms read with a 30 ms compute — nearly half its
  // time starved on I/O. This is the straggler regime.
  EXPECT_GT(serial.io_wait_fraction(4), 0.40);
  EXPECT_NEAR(serial.makespan_s, 16 * (0.026 + 0.030), 1e-6);
}

TEST(SimIoTest, PrefetchHidesReadsWhileUncontended) {
  const auto fs = test_fs();
  const auto tasks = balanced_tasks(64);
  const StreamWaveOutcome serial = simulate_stream_wave(4, tasks, fs);
  StreamWaveOptions prefetch;
  prefetch.prefetch = true;
  prefetch.prefetch_depth = 2;
  const StreamWaveOutcome warm = simulate_stream_wave(4, tasks, fs, prefetch);
  ASSERT_TRUE(warm.completed);
  // Compute dominates once reads overlap: makespan ~ pipeline ramp +
  // 16 computes per core ~ 0.53 s, versus 0.90 s serial.
  EXPECT_GE(serial.makespan_s / warm.makespan_s, 1.5);
  EXPECT_LT(warm.io_wait_fraction(4), 0.20);
  // Prefetch reorders I/O, it must not invent or drop work.
  EXPECT_EQ(warm.reads, serial.reads);
  EXPECT_NEAR(warm.compute_s, serial.compute_s, 1e-9);
}

TEST(SimIoTest, ContentionWallCompressesThePrefetchWin) {
  const auto fs = test_fs();  // saturates at 4 streams
  auto speedup_at = [&](std::size_t cores) {
    const auto tasks = balanced_tasks(16 * cores);
    const StreamWaveOutcome serial = simulate_stream_wave(cores, tasks, fs);
    StreamWaveOptions prefetch;
    prefetch.prefetch = true;
    const StreamWaveOutcome warm =
        simulate_stream_wave(cores, tasks, fs, prefetch);
    return serial.makespan_s / warm.makespan_s;
  };
  const double uncontended = speedup_at(4);
  const double contended = speedup_at(32);
  EXPECT_GE(uncontended, 1.5);
  // 32 readers queue on 4 stream slots: the filesystem, not the core,
  // is the bottleneck, and overlap cannot manufacture bandwidth.
  EXPECT_LT(contended, uncontended);
  EXPECT_LT(contended, 1.3);
}

TEST(SimIoTest, DeterministicReplay) {
  const auto fs = test_fs();
  const auto tasks = balanced_tasks(17);  // uneven per-core split
  StreamWaveOptions prefetch;
  prefetch.prefetch = true;
  const StreamWaveOutcome a = simulate_stream_wave(3, tasks, fs, prefetch);
  const StreamWaveOutcome b = simulate_stream_wave(3, tasks, fs, prefetch);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.io_wait_s, b.io_wait_s);
  EXPECT_EQ(a.read_s, b.read_s);
  EXPECT_EQ(a.reads, b.reads);
}

TEST(SimIoTest, TransientReadErrorBurnsATransferAndLogs) {
  const auto fs = test_fs();
  const auto tasks = balanced_tasks(8);
  fault::FaultPlan plan;
  plan.schedule.push_back({fault::FaultKind::kTransientReadError, 3, 0});
  plan.retry.max_attempts = 3;
  fault::RecoveryLog log;
  StreamWaveOptions options;
  options.plan = &plan;
  options.engine = fault::EngineId::kRp;
  options.log = &log;
  const StreamWaveOutcome faulted = simulate_stream_wave(4, tasks, fs, options);
  ASSERT_TRUE(faulted.completed);
  EXPECT_EQ(faulted.reads, 9u);  // 8 tasks + 1 burned transfer
  EXPECT_EQ(faulted.retried_reads, 1u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.events()[0].task_id, 3u);
  EXPECT_EQ(log.events()[0].fault, fault::FaultKind::kTransientReadError);
  // The wasted transfer makes the wave strictly slower than clean.
  const StreamWaveOutcome clean = simulate_stream_wave(4, tasks, fs);
  EXPECT_GT(faulted.makespan_s, clean.makespan_s);
}

TEST(SimIoTest, ReadGiveUpReportsFailureButDrains) {
  const auto fs = test_fs();
  const auto tasks = balanced_tasks(6);
  fault::FaultPlan plan;
  plan.schedule.push_back({fault::FaultKind::kTransientReadError, 2,
                           fault::FaultSpec::kEveryAttempt});
  plan.retry.max_attempts = 2;
  fault::RecoveryLog log;
  StreamWaveOptions options;
  options.plan = &plan;
  options.engine = fault::EngineId::kDask;
  options.log = &log;
  const StreamWaveOutcome outcome = simulate_stream_wave(2, tasks, fs, options);
  EXPECT_FALSE(outcome.completed);
  EXPECT_NE(outcome.failure.find("task 2"), std::string::npos);
  EXPECT_EQ(outcome.retried_reads, 2u);
  // The wave still drains: every task computed.
  EXPECT_NEAR(outcome.compute_s, 6 * 0.030, 1e-9);
}

TEST(SimIoTest, FilesystemStallDelaysTheRead) {
  const auto fs = test_fs();
  const auto tasks = balanced_tasks(4);
  fault::FaultPlan plan;
  plan.schedule.push_back(
      {fault::FaultKind::kFilesystemStall, 1, 0, 1.0, /*delay_s=*/0.5});
  StreamWaveOptions options;
  options.plan = &plan;
  const StreamWaveOutcome stalled = simulate_stream_wave(4, tasks, fs, options);
  const StreamWaveOutcome clean = simulate_stream_wave(4, tasks, fs);
  ASSERT_TRUE(stalled.completed);
  EXPECT_EQ(stalled.retried_reads, 0u);
  EXPECT_NEAR(stalled.makespan_s - clean.makespan_s, 0.5, 1e-6);
}

TEST(SimIoTest, DegenerateInputs) {
  const auto fs = test_fs();
  const StreamWaveOutcome empty = simulate_stream_wave(4, {}, fs);
  EXPECT_TRUE(empty.completed);
  EXPECT_EQ(empty.makespan_s, 0.0);
  EXPECT_EQ(empty.reads, 0u);
  // Zero cores clamps to one.
  const StreamWaveOutcome one = simulate_stream_wave(0, balanced_tasks(2), fs);
  EXPECT_TRUE(one.completed);
  EXPECT_NEAR(one.makespan_s, 2 * (0.026 + 0.030), 1e-6);
}

}  // namespace
}  // namespace mdtask::stream
