// Fault-aware shard reads: injected transient read errors must heal by
// re-reading, every decision must land in the RecoveryLog with the
// owning engine's recovery action, and same-seed schedules must replay
// byte-identical canonical logs (the determinism contract shared with
// the engine-level injection).
#include "mdtask/stream/recovery_read.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>

#include "mdtask/stream/shard_format.h"
#include "mdtask/traj/generators.h"

namespace mdtask::stream {
namespace {

class StreamFaultTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/stream_fault_test.mds";

  void SetUp() override {
    traj::ProteinTrajectoryParams p;
    p.frames = 24;
    p.atoms = 7;
    p.seed = 17;
    source_ = traj::make_protein_trajectory(p);
    ShardStoreOptions opts;
    opts.frames_per_shard = 6;  // 4 shards
    ASSERT_TRUE(write_sharded(path_, source_, opts).ok());
    auto reader = ShardReader::open(path_);
    ASSERT_TRUE(reader.ok());
    reader_.emplace(std::move(reader.value()));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  traj::Trajectory source_;
  std::optional<ShardReader> reader_;
};

fault::FaultPlan transient_once(std::uint64_t task_id) {
  fault::FaultPlan plan;
  plan.schedule.push_back({fault::FaultKind::kTransientReadError, task_id,
                           /*attempt=*/0});
  plan.retry.max_attempts = 3;
  return plan;
}

TEST_F(StreamFaultTest, NullPlanPassesThrough) {
  ReadRecoveryContext ctx;  // plan == nullptr
  auto shard = read_shard_with_recovery(*reader_, 1, /*task_id=*/1, ctx);
  ASSERT_TRUE(shard.ok());
  EXPECT_EQ(shard.value().frames(), 6u);
}

TEST_F(StreamFaultTest, TransientErrorHealsByRereadPerEngine) {
  // Each engine answers the same corrupt read with its native recovery
  // action; all of them end with a clean re-read of identical bytes.
  const fault::EngineId kEngines[] = {
      fault::EngineId::kSpark, fault::EngineId::kDask, fault::EngineId::kRp,
      fault::EngineId::kMpi};
  const fault::FaultPlan plan = transient_once(2);
  for (const fault::EngineId engine : kEngines) {
    fault::RecoveryLog log;
    ReadRecoveryContext ctx{&plan, engine, &log};
    auto shard = read_shard_with_recovery(*reader_, 2, /*task_id=*/2, ctx);
    ASSERT_TRUE(shard.ok()) << shard.error().to_string();
    for (std::size_t f = 0; f < 6; ++f) {
      for (std::size_t a = 0; a < source_.atoms(); ++a) {
        ASSERT_EQ(shard.value().frame(f)[a], source_.frame(12 + f)[a]);
      }
    }
    const auto events = log.events();
    ASSERT_EQ(events.size(), 1u) << fault::to_string(engine);
    EXPECT_EQ(events[0].engine, engine);
    EXPECT_EQ(events[0].task_id, 2u);
    EXPECT_EQ(events[0].attempt, 0);
    EXPECT_EQ(events[0].fault, fault::FaultKind::kTransientReadError);
    EXPECT_EQ(events[0].action,
              fault::recovery_action(engine,
                                     fault::FaultKind::kTransientReadError, 0,
                                     plan.retry));
  }
}

TEST_F(StreamFaultTest, UntargetedTaskReadsClean) {
  const fault::FaultPlan plan = transient_once(2);
  fault::RecoveryLog log;
  ReadRecoveryContext ctx{&plan, fault::EngineId::kRp, &log};
  auto shard = read_shard_with_recovery(*reader_, 0, /*task_id=*/7, ctx);
  ASSERT_TRUE(shard.ok());
  EXPECT_EQ(log.size(), 0u);
}

TEST_F(StreamFaultTest, ExhaustedBudgetGivesUpWithContext) {
  fault::FaultPlan plan;
  plan.schedule.push_back({fault::FaultKind::kTransientReadError, 3,
                           fault::FaultSpec::kEveryAttempt});
  plan.retry.max_attempts = 2;
  fault::RecoveryLog log;
  ReadRecoveryContext ctx{&plan, fault::EngineId::kDask, &log};
  auto shard = read_shard_with_recovery(*reader_, 1, /*task_id=*/3, ctx);
  ASSERT_FALSE(shard.ok());
  EXPECT_EQ(shard.error().code(), ErrorCode::kUnavailable);
  ASSERT_TRUE(shard.error().task().has_value());
  EXPECT_EQ(shard.error().task()->task_id, 3u);
  // Both attempts were logged; the last decision is the give-up.
  const auto events = log.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events.back().action, fault::RecoveryAction::kGiveUp);
}

TEST_F(StreamFaultTest, RateDrivenScheduleIsSeedDeterministic) {
  fault::FaultPlan plan;
  plan.seed = 99;
  plan.rates.transient_read = 0.5;
  plan.retry.max_attempts = 4;

  // 16 distinct task ids (mapped onto the 4 shards) so that p=0.5
  // fires somewhere with overwhelming probability, for any seed.
  constexpr std::uint64_t kTasks = 16;
  auto run = [&](const fault::FaultPlan& p, fault::RecoveryLog& log) {
    ReadRecoveryContext ctx{&p, fault::EngineId::kSpark, &log};
    for (std::uint64_t task = 0; task < kTasks; ++task) {
      auto shard = read_shard_with_recovery(
          *reader_, task % reader_->shard_count(), task, ctx);
      // With max_attempts=4 and p=0.5 a give-up is possible but the
      // outcome — success or failure — must match between runs, which
      // the canonical log comparison below asserts.
      (void)shard;
    }
  };
  fault::RecoveryLog first;
  fault::RecoveryLog second;
  run(plan, first);
  run(plan, second);
  EXPECT_EQ(first.canonical(), second.canonical());
  EXPECT_GT(first.size(), 0u);

  // A different seed draws a different schedule.
  fault::FaultPlan other = plan;
  other.seed = 100;
  fault::RecoveryLog third;
  run(other, third);
  EXPECT_NE(first.canonical(), third.canonical());
}

TEST_F(StreamFaultTest, ReadFramesRetriesEveryCoveredShard) {
  const fault::FaultPlan plan = transient_once(5);
  fault::RecoveryLog log;
  ReadRecoveryContext ctx{&plan, fault::EngineId::kRp, &log};
  // Frames [4, 14) touch shards 0, 1 and 2; the attempt-0 fault fires
  // once per shard's own attempt loop, so three re-reads heal it.
  const std::uint64_t fetched_before = reader_->shards_fetched();
  auto range = read_frames_with_recovery(*reader_, 4, 10, /*task_id=*/5, ctx);
  ASSERT_TRUE(range.ok()) << range.error().to_string();
  ASSERT_EQ(range.value().frames(), 10u);
  for (std::size_t f = 0; f < 10; ++f) {
    for (std::size_t a = 0; a < source_.atoms(); ++a) {
      ASSERT_EQ(range.value().frame(f)[a], source_.frame(4 + f)[a]);
    }
  }
  EXPECT_EQ(log.size(), 3u);
  // The burned attempt is rejected at checksum time, before this layer
  // issues the read, so only the clean re-read per shard fetches bytes.
  EXPECT_EQ(reader_->shards_fetched() - fetched_before, 3u);
}

TEST_F(StreamFaultTest, NonReadFaultKindsAreIgnoredHere) {
  // Task-level faults (OOM, crash, straggler) belong to the engines;
  // the read path must not consume or log them.
  fault::FaultPlan plan;
  plan.schedule.push_back({fault::FaultKind::kWorkerOomKill, 1, 0});
  plan.schedule.push_back(
      {fault::FaultKind::kStraggler, 1, fault::FaultSpec::kEveryAttempt});
  fault::RecoveryLog log;
  ReadRecoveryContext ctx{&plan, fault::EngineId::kDask, &log};
  auto shard = read_shard_with_recovery(*reader_, 0, /*task_id=*/1, ctx);
  ASSERT_TRUE(shard.ok());
  EXPECT_EQ(log.size(), 0u);
}

}  // namespace
}  // namespace mdtask::stream
