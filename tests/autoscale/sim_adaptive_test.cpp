// Adaptive task-wave replay: determinism (same seed => byte-identical
// canonical RecoveryLog and traces on all four engines), the
// adaptive-beats-static acceptance claim, MPI rigid vetoes, and the
// speculation win on straggler-heavy waves.
#include "mdtask/autoscale/sim_adaptive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "mdtask/trace/tracer.h"

namespace mdtask::autoscale {
namespace {

using fault::EngineId;

const EngineId kAllEngines[] = {EngineId::kSpark, EngineId::kDask,
                                EngineId::kRp, EngineId::kMpi};

/// Straggler-heavy wave: 5% of tasks stretch 8x.
fault::FaultPlan straggler_plan(std::uint64_t seed = 42) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.rates.straggler = 0.05;
  plan.rates.straggler_factor = 8.0;
  return plan;
}

AdaptiveSimConfig elastic_config() {
  AdaptiveSimConfig config;
  config.utilization.low_watermark = 0.20;
  config.utilization.cooldown_s = 1.0;
  config.utilization.max_pool = 64;
  config.utilization.max_step = 32;
  config.speculation.min_completed = 16;
  return config;
}

/// Stable rendering of a tracer's events for byte-identity comparison.
std::string render_trace(const trace::Tracer& tracer) {
  std::ostringstream out;
  for (const auto& event : tracer.events()) {
    out << event.category << '|' << event.name << '|' << event.start_us
        << '|' << event.dur_us << '\n';
  }
  return out.str();
}

TEST(SimAdaptiveTest, SameSeedIsByteIdenticalOnEveryEngine) {
  const std::vector<double> durations(256, 1.0);
  for (const EngineId engine : kAllEngines) {
    fault::RecoveryLog log_a, log_b;
    trace::Tracer tracer_a, tracer_b;
    tracer_a.set_enabled(true);
    tracer_b.set_enabled(true);
    log_a.attach_tracer(&tracer_a, tracer_a.thread(tracer_a.process("a"),
                                                   "autoscale"));
    log_b.attach_tracer(&tracer_b, tracer_b.thread(tracer_b.process("b"),
                                                   "autoscale"));
    const AdaptiveOutcome a = simulate_adaptive_wave(
        32, durations, straggler_plan(), engine, elastic_config(), &log_a);
    const AdaptiveOutcome b = simulate_adaptive_wave(
        32, durations, straggler_plan(), engine, elastic_config(), &log_b);

    EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.scale_ups, b.scale_ups);
    EXPECT_EQ(a.speculative_copies, b.speculative_copies);
    EXPECT_EQ(log_a.canonical(), log_b.canonical());
    EXPECT_EQ(render_trace(tracer_a), render_trace(tracer_b));
  }
}

TEST(SimAdaptiveTest, DifferentSeedsDiverge) {
  const std::vector<double> durations(256, 1.0);
  fault::RecoveryLog log_a, log_b;
  simulate_adaptive_wave(32, durations, straggler_plan(42), EngineId::kDask,
                         elastic_config(), &log_a);
  simulate_adaptive_wave(32, durations, straggler_plan(43), EngineId::kDask,
                         elastic_config(), &log_b);
  EXPECT_NE(log_a.canonical(), log_b.canonical());
}

TEST(SimAdaptiveTest, AdaptivePolicyMatchesOrBeatsBestStaticPlan) {
  // The tentpole acceptance claim: on the straggler-heavy wave the
  // closed loop must match/beat the best hand-picked fixed schedule.
  const std::vector<double> durations(512, 1.0);
  const fault::FaultPlan plan = straggler_plan();

  double best_static = fault::simulate_task_wave(32, durations, plan,
                                                 EngineId::kDask)
                           .makespan_s;
  for (double at : {2.0, 4.0, 8.0}) {
    fault::MembershipPlan membership{.seed = 42};
    membership.schedule.push_back({fault::MembershipKind::kNodeJoin, at, 32});
    best_static = std::min(
        best_static, fault::simulate_task_wave(32, durations, plan,
                                               EngineId::kDask, nullptr,
                                               &membership)
                         .makespan_s);
  }

  const AdaptiveOutcome adaptive = simulate_adaptive_wave(
      32, durations, plan, EngineId::kDask, elastic_config());
  EXPECT_LE(adaptive.makespan_s, best_static);
  EXPECT_GT(adaptive.scale_ups, 0u);
  EXPECT_EQ(adaptive.peak_pool, 64u);
}

TEST(SimAdaptiveTest, SpeculationShortensTheStragglerTail) {
  const std::vector<double> durations(512, 1.0);
  AdaptiveSimConfig scaling_only = elastic_config();
  scaling_only.speculation_enabled = false;
  const AdaptiveOutcome without = simulate_adaptive_wave(
      32, durations, straggler_plan(), EngineId::kDask, scaling_only);
  const AdaptiveOutcome with = simulate_adaptive_wave(
      32, durations, straggler_plan(), EngineId::kDask, elastic_config());
  EXPECT_EQ(without.speculative_copies, 0u);
  EXPECT_GT(with.speculative_copies, 0u);
  EXPECT_LT(with.makespan_s, without.makespan_s);
}

TEST(SimAdaptiveTest, MpiIsRigidAndOnlyRecordsVetoes) {
  const std::vector<double> durations(256, 1.0);
  fault::RecoveryLog log;
  const AdaptiveOutcome outcome = simulate_adaptive_wave(
      32, durations, straggler_plan(), EngineId::kMpi, elastic_config(),
      &log);
  EXPECT_EQ(outcome.scale_ups, 0u);
  EXPECT_EQ(outcome.scale_downs, 0u);
  EXPECT_EQ(outcome.peak_pool, 32u);
  EXPECT_EQ(outcome.final_pool, 32u);
  EXPECT_GT(outcome.rigid_vetoes, 0u);
  const auto records = log.autoscale_events();
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    if (record.action == fault::AutoscaleAction::kSpeculate) continue;
    EXPECT_EQ(record.action, fault::AutoscaleAction::kRigidVeto);
  }
  bool vetoed = false;
  for (const auto& line : log.canonical()) {
    vetoed = vetoed || line.find("rigid-veto") != std::string::npos;
  }
  EXPECT_TRUE(vetoed);
}

TEST(SimAdaptiveTest, FaultFreeBalancedWaveHoldsThroughout) {
  // Demand matches the pool at target utilization: nothing to decide,
  // so the log stays empty however often the controller ticks.
  const std::vector<double> durations(32, 1.0);
  AdaptiveSimConfig config = elastic_config();
  config.utilization.min_pool = 32;
  config.tick_interval_s = 0.1;
  fault::RecoveryLog log;
  const AdaptiveOutcome outcome = simulate_adaptive_wave(
      32, durations, fault::FaultPlan{}, EngineId::kDask, config, &log);
  EXPECT_DOUBLE_EQ(outcome.makespan_s, 1.0);
  EXPECT_EQ(outcome.scale_ups, 0u);
  EXPECT_EQ(outcome.speculative_copies, 0u);
  EXPECT_EQ(log.autoscale_size(), 0u);
  EXPECT_EQ(outcome.final_pool, 32u);
}

TEST(SimAdaptiveTest, PoolTimelineTracksEveryResize) {
  const std::vector<double> durations(512, 1.0);
  std::vector<fault::PoolSample> timeline;
  const AdaptiveOutcome outcome = simulate_adaptive_wave(
      32, durations, straggler_plan(), EngineId::kDask, elastic_config(),
      nullptr, &timeline);
  ASSERT_GE(timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline.front().at_s, 0.0);
  EXPECT_EQ(timeline.front().servers, 32u);
  std::size_t peak = 0;
  for (const auto& sample : timeline) peak = std::max(peak, sample.servers);
  EXPECT_EQ(peak, outcome.peak_pool);
}

TEST(SimAdaptiveTest, EmptyWaveCompletesImmediately) {
  const AdaptiveOutcome outcome = simulate_adaptive_wave(
      8, {}, straggler_plan(), EngineId::kDask, elastic_config());
  EXPECT_DOUBLE_EQ(outcome.makespan_s, 0.0);
  EXPECT_EQ(outcome.speculative_copies, 0u);
}

TEST(SimAdaptiveHeterogeneousTest, EmptyCoreSpeedsMatchesHomogeneousModel) {
  // The slot-based server model with no core_speeds must reproduce the
  // homogeneous replay exactly (the published-figure invariant).
  const std::vector<double> durations(200, 1.0);
  AdaptiveSimConfig plain = elastic_config();
  AdaptiveSimConfig with_empty = elastic_config();
  with_empty.core_speeds.clear();
  const auto a = simulate_adaptive_wave(16, durations, straggler_plan(),
                                        EngineId::kDask, plain);
  const auto b = simulate_adaptive_wave(16, durations, straggler_plan(),
                                        EngineId::kDask, with_empty);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.speculative_copies, b.speculative_copies);
  EXPECT_EQ(a.scale_ups, b.scale_ups);
  EXPECT_EQ(a.scale_downs, b.scale_downs);
}

TEST(SimAdaptiveHeterogeneousTest, SlowCoresStretchTheWave) {
  const std::vector<double> durations(128, 1.0);
  fault::FaultPlan clean;  // no faults: isolate the core-class effect
  AdaptiveSimConfig config;
  config.scaling_enabled = false;
  config.speculation_enabled = false;
  AdaptiveSimConfig hetero = config;
  hetero.core_speeds = std::vector<double>(8, 0.5);  // all cores 2x slower
  const auto fast = simulate_adaptive_wave(8, durations, clean,
                                           EngineId::kDask, config);
  const auto slow = simulate_adaptive_wave(8, durations, clean,
                                           EngineId::kDask, hetero);
  EXPECT_NEAR(slow.makespan_s, 2.0 * fast.makespan_s, 1e-9);
}

TEST(SimAdaptiveHeterogeneousTest, NaiveSpeculationCopiesSlowCoreTasks) {
  // Uniform work, no faults, half the cores at 0.4x: every task on a
  // slow core looks 2.5x late to a wall-clock threshold. The naive
  // policy wastes backup copies on them; the core-class-aware policy
  // knows they are pacing their cores and submits none.
  const std::vector<double> durations(160, 1.0);
  fault::FaultPlan clean;
  AdaptiveSimConfig naive;
  naive.scaling_enabled = false;
  naive.speculation.threshold_factor = 1.5;
  naive.speculation.min_completed = 8;
  AdaptiveSimConfig aware = naive;
  const auto speeds = [] {
    std::vector<double> s(16, 1.0);
    for (std::size_t i = 8; i < 16; ++i) s[i] = 0.4;
    return s;
  }();
  naive.core_speeds = speeds;
  aware.core_speeds = speeds;
  aware.speculation.core_class_aware = true;
  const auto wasteful = simulate_adaptive_wave(16, durations, clean,
                                               EngineId::kDask, naive);
  const auto precise = simulate_adaptive_wave(16, durations, clean,
                                              EngineId::kDask, aware);
  EXPECT_GT(wasteful.speculative_copies, 0u);
  EXPECT_EQ(precise.speculative_copies, 0u);
  // No real stragglers exist, so the copies cannot beat the makespan.
  EXPECT_LE(precise.makespan_s, wasteful.makespan_s + 1e-9);
}

TEST(SimAdaptiveHeterogeneousTest, AwareSpeculationStillCatchesRealStragglers) {
  // A genuinely stretched task on a FAST core must still earn a backup
  // under the core-class-aware test.
  const std::vector<double> durations(160, 1.0);
  AdaptiveSimConfig config;
  config.scaling_enabled = false;
  config.speculation.threshold_factor = 1.5;
  config.speculation.min_completed = 8;
  config.speculation.core_class_aware = true;
  config.core_speeds = {1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5};
  const auto outcome = simulate_adaptive_wave(
      8, durations, straggler_plan(), EngineId::kDask, config);
  EXPECT_GT(outcome.stragglers, 0u);
  EXPECT_GT(outcome.speculative_copies, 0u);
}

}  // namespace
}  // namespace mdtask::autoscale
