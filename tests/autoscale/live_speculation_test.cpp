// Live straggler speculation on the real engines: backup copies race
// their originals and the first completion wins exactly once — on
// Spark via the stage publish guard, on Dask via SharedState's
// idempotent set_value. Plus the workflow-level wiring: runners with
// adaptive configs produce the same analysis results as static runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "mdtask/autoscale/metrics.h"
#include "mdtask/engines/dask/dask.h"
#include "mdtask/engines/spark/spark.h"
#include "mdtask/fault/recovery.h"
#include "mdtask/traj/generators.h"
#include "mdtask/workflows/leaflet_runner.h"
#include "mdtask/workflows/psa_runner.h"

namespace mdtask {
namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ------------------------------------------------------------- Spark --

TEST(SparkSpeculationTest, BackupWinsWhileOriginalIsStuck) {
  fault::RecoveryLog log;
  autoscale::MetricsWindow window;
  spark::SparkContext sc(spark::SparkConfig{.executor_threads = 2,
                                            .recovery_log = &log,
                                            .metrics_window = &window});
  std::atomic<int> arrivals{0};
  std::atomic<bool> release{false};

  // Partition 0's FIRST execution parks; its backup (second arrival)
  // sails through, publishes, and unblocks nothing — the stage barrier
  // still waits for the original, which recomputes and is discarded by
  // the publish guard.
  auto mapped = sc.parallelize(std::vector<int>{10, 20}, 2)
                    .map([&](const int& x) {
                      if (x == 10 &&
                          arrivals.fetch_add(1,
                                             std::memory_order_acq_rel) == 0) {
                        while (!release.load(std::memory_order_acquire)) {
                          sleep_ms(1);
                        }
                      }
                      return x + 1;
                    });

  std::thread speculator([&] {
    // Partition 1 completes on its own; only partition 0 is in flight.
    while (window.completed() < 1) sleep_ms(1);
    std::size_t copies = 0;
    while ((copies = sc.speculate_inflight(0.002)) == 0) sleep_ms(1);
    EXPECT_EQ(copies, 1u);
    // Idempotent: the partition is already marked speculated.
    EXPECT_EQ(sc.speculate_inflight(0.0), 0u);
    // Wait for the backup to publish, then let the original finish.
    while (window.completed() < 2) sleep_ms(1);
    release.store(true, std::memory_order_release);
  });
  const std::vector<int> out = mapped.collect();
  speculator.join();

  EXPECT_EQ(out, (std::vector<int>{11, 21}));
  EXPECT_EQ(sc.speculative_copies(), 1u);
  // Winner-only duration recording: one per partition, no duplicates
  // from the discarded original.
  EXPECT_EQ(window.completed(), 2u);

  const auto events = log.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].action, fault::RecoveryAction::kSpeculativeCopy);
  EXPECT_EQ(events[0].task_id, (std::uint64_t{1} << 20) | 0u);
}

TEST(SparkSpeculationTest, ClosedWindowRefusesNewBackups) {
  spark::SparkContext sc(spark::SparkConfig{.executor_threads = 2});
  // No stage in flight: nothing to speculate on.
  EXPECT_EQ(sc.speculate_inflight(0.0), 0u);
  const auto out =
      sc.parallelize(std::vector<int>{1, 2, 3, 4}, 4)
          .map([](const int& x) { return x * x; })
          .collect();
  EXPECT_EQ(out, (std::vector<int>{1, 4, 9, 16}));
  // The stage is finished and its speculation window closed.
  EXPECT_EQ(sc.speculate_inflight(0.0), 0u);
  EXPECT_EQ(sc.speculative_copies(), 0u);
}

// -------------------------------------------------------------- Dask --

TEST(DaskSpeculationTest, SetValueIsFirstCompletionWins) {
  // The duplicate-backup race in miniature: only the first set_value
  // publishes, the loser's value is dropped.
  dask::detail::SharedState<int> state;
  EXPECT_TRUE(state.set_value(7));
  EXPECT_FALSE(state.set_value(9));
  EXPECT_EQ(state.value(), 7);
}

TEST(DaskSpeculationTest, BackupWinsWhileOriginalIsStuck) {
  fault::RecoveryLog log;
  autoscale::MetricsWindow window;
  dask::DaskClient client(dask::DaskConfig{.workers = 2,
                                           .recovery_log = &log,
                                           .metrics_window = &window});
  std::atomic<int> arrivals{0};
  std::atomic<bool> release{false};

  auto future = client.submit([&] {
    if (arrivals.fetch_add(1, std::memory_order_acq_rel) == 0) {
      while (!release.load(std::memory_order_acquire)) sleep_ms(1);
    }
    return 41;
  });

  // Wait until the original has started, then speculate: the backup
  // lands on the idle second worker and wins the race.
  while (arrivals.load(std::memory_order_acquire) < 1) sleep_ms(1);
  std::size_t copies = 0;
  while ((copies = client.speculate_inflight(0.002)) == 0) sleep_ms(1);
  EXPECT_EQ(copies, 1u);
  EXPECT_EQ(client.speculate_inflight(0.0), 0u);  // already speculated

  EXPECT_EQ(future.get(), 41);  // unblocked by the backup, not the original
  release.store(true, std::memory_order_release);
  client.wait_all();  // drains the parked original (its value is dropped)

  EXPECT_EQ(client.speculative_copies(), 1u);
  EXPECT_EQ(window.completed(), 1u);  // winner-only duration recording
  const auto events = log.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].action, fault::RecoveryAction::kSpeculativeCopy);
  EXPECT_EQ(events[0].task_id, 0u);  // submission order
}

TEST(DaskSpeculationTest, QueuedTasksAreNotSpeculated) {
  // Backups only make sense for RUNNING stragglers; a queued task has
  // not started, so relaunching it buys nothing.
  dask::DaskClient client(dask::DaskConfig{.workers = 1});
  std::atomic<bool> release{false};
  auto blocker = client.submit([&] {
    while (!release.load(std::memory_order_acquire)) sleep_ms(1);
    return 0;
  });
  auto queued = client.submit([] { return 1; });
  sleep_ms(5);
  // Only the running blocker is old enough AND running; with one
  // worker its backup re-enqueues behind the queue.
  const std::size_t copies = client.speculate_inflight(0.001);
  EXPECT_LE(copies, 1u);
  release.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.get(), 0);
  EXPECT_EQ(queued.get(), 1);
  client.wait_all();
}

// --------------------------------------------------- workflow wiring --

TEST(AdaptiveWorkflowTest, AdaptivePsaMatchesStaticResultsOnEveryEngine) {
  const auto ensemble = traj::make_protein_ensemble(5, [] {
    traj::ProteinTrajectoryParams p;
    p.atoms = 8;
    p.frames = 6;
    return p;
  }());
  const workflows::EngineKind kinds[] = {
      workflows::EngineKind::kMpi, workflows::EngineKind::kSpark,
      workflows::EngineKind::kDask, workflows::EngineKind::kRp};
  for (const workflows::EngineKind kind : kinds) {
    workflows::PsaRunConfig plain;
    plain.workers = 2;
    const auto baseline = workflows::run_psa(kind, ensemble, plain);

    fault::RecoveryLog log;
    workflows::PsaRunConfig adaptive;
    adaptive.workers = 2;
    adaptive.recovery_log = &log;
    adaptive.adaptive.enabled = true;
    adaptive.adaptive.tick_interval_s = 0.005;
    adaptive.adaptive.utilization.min_pool = 1;
    adaptive.adaptive.utilization.max_pool = 4;
    adaptive.adaptive.utilization.cooldown_s = 0.01;
    const auto controlled = workflows::run_psa(kind, ensemble, adaptive);

    // Elasticity must never change the analysis, only the schedule.
    EXPECT_EQ(baseline.matrix.data(), controlled.matrix.data())
        << workflows::to_string(kind);
  }
}

TEST(AdaptiveWorkflowTest, AdaptiveLeafletMatchesStaticResultsOnEveryEngine) {
  traj::BilayerParams params;
  params.atoms = 600;
  const auto bilayer = traj::make_bilayer(params);
  const double cutoff = traj::default_cutoff(params);
  const workflows::EngineKind kinds[] = {
      workflows::EngineKind::kMpi, workflows::EngineKind::kSpark,
      workflows::EngineKind::kDask, workflows::EngineKind::kRp};
  for (const workflows::EngineKind kind : kinds) {
    workflows::LfRunConfig plain;
    plain.workers = 2;
    plain.target_tasks = 8;
    const auto baseline =
        workflows::run_leaflet_finder(kind, 3, bilayer.positions, cutoff,
                                      plain);
    ASSERT_TRUE(baseline.ok());

    workflows::LfRunConfig adaptive = plain;
    adaptive.adaptive.enabled = true;
    adaptive.adaptive.tick_interval_s = 0.005;
    adaptive.adaptive.utilization.min_pool = 1;
    adaptive.adaptive.utilization.max_pool = 4;
    adaptive.adaptive.utilization.cooldown_s = 0.01;
    const auto controlled =
        workflows::run_leaflet_finder(kind, 3, bilayer.positions, cutoff,
                                      adaptive);
    ASSERT_TRUE(controlled.ok());

    EXPECT_EQ(baseline.value().leaflets.leaflet_a_size,
              controlled.value().leaflets.leaflet_a_size)
        << workflows::to_string(kind);
    EXPECT_EQ(baseline.value().leaflets.leaflet_b_size,
              controlled.value().leaflets.leaflet_b_size)
        << workflows::to_string(kind);
  }
}

}  // namespace
}  // namespace mdtask
