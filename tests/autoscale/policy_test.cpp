// Policy decisions: target-utilization hysteresis/cooldown/step
// clamping and the straggler-speculation threshold rules. Policies are
// pure functions of the snapshot, so every case is a table of
// observations in and decisions out.
#include "mdtask/autoscale/policy.h"

#include <gtest/gtest.h>

namespace mdtask::autoscale {
namespace {

MetricsSnapshot snap(double now_s, std::size_t pool, std::size_t busy,
                     std::size_t queue) {
  MetricsSnapshot m;
  m.now_s = now_s;
  m.pool_size = pool;
  m.busy = busy;
  m.queue_depth = queue;
  m.utilization =
      pool == 0 ? 0.0
                : std::min(1.0, static_cast<double>(busy) /
                                    static_cast<double>(pool));
  return m;
}

TEST(TargetUtilizationPolicyTest, SaturatedPoolWithBacklogScalesUp) {
  TargetUtilizationPolicy policy;
  // 8 busy of 8, 12 queued: demand 20 at target 0.8 wants 25 servers.
  const Decision d = policy.decide(snap(10.0, 8, 8, 12));
  EXPECT_EQ(d.kind, Decision::Kind::kScaleUp);
  EXPECT_EQ(d.count, 16u);  // clamped by max_step, not 25 - 8 = 17
  EXPECT_FALSE(d.reason.empty());
}

TEST(TargetUtilizationPolicyTest, SaturationWithoutBacklogHolds) {
  // All servers busy but nothing queued: adding servers would idle them.
  TargetUtilizationPolicy policy;
  EXPECT_EQ(policy.decide(snap(10.0, 8, 8, 0)).kind, Decision::Kind::kHold);
}

TEST(TargetUtilizationPolicyTest, InsideTheHysteresisBandHolds) {
  TargetUtilizationPolicy policy;
  // 0.75 utilization sits between low 0.5 and high 0.9.
  EXPECT_EQ(policy.decide(snap(10.0, 8, 6, 3)).kind, Decision::Kind::kHold);
}

TEST(TargetUtilizationPolicyTest, IdlePoolScalesDownToDemand) {
  TargetUtilizationPolicy policy;
  // 2 busy of 16, no queue: demand 2 at target 0.8 wants ceil(2.5) = 3.
  const Decision d = policy.decide(snap(10.0, 16, 2, 0));
  EXPECT_EQ(d.kind, Decision::Kind::kScaleDown);
  EXPECT_EQ(d.count, 13u);
}

TEST(TargetUtilizationPolicyTest, IdleWithBacklogNeverShrinks) {
  // Queue > 0 means the idle observation is transient (dispatch gap).
  TargetUtilizationPolicy policy;
  EXPECT_EQ(policy.decide(snap(10.0, 16, 2, 4)).kind, Decision::Kind::kHold);
}

TEST(TargetUtilizationPolicyTest, CooldownBlocksBackToBackActions) {
  TargetUtilizationPolicy::Config config;
  config.cooldown_s = 2.0;
  TargetUtilizationPolicy policy(config);
  EXPECT_EQ(policy.decide(snap(10.0, 8, 8, 12)).kind,
            Decision::Kind::kScaleUp);
  // Same pressure 1 s later: still cooling down.
  EXPECT_EQ(policy.decide(snap(11.0, 8, 8, 12)).kind, Decision::Kind::kHold);
  // 2 s after the action the policy may act again.
  EXPECT_EQ(policy.decide(snap(12.0, 8, 8, 12)).kind,
            Decision::Kind::kScaleUp);
}

TEST(TargetUtilizationPolicyTest, HoldsDoNotResetTheCooldownClock) {
  TargetUtilizationPolicy::Config config;
  config.cooldown_s = 2.0;
  TargetUtilizationPolicy policy(config);
  EXPECT_EQ(policy.decide(snap(10.0, 8, 8, 12)).kind,
            Decision::Kind::kScaleUp);
  EXPECT_EQ(policy.decide(snap(11.0, 8, 6, 3)).kind, Decision::Kind::kHold);
  EXPECT_EQ(policy.decide(snap(12.5, 8, 8, 12)).kind,
            Decision::Kind::kScaleUp);
}

TEST(TargetUtilizationPolicyTest, MaxPoolCapsTheUpwardTarget) {
  TargetUtilizationPolicy::Config config;
  config.max_pool = 10;
  TargetUtilizationPolicy policy(config);
  const Decision d = policy.decide(snap(10.0, 8, 8, 100));
  EXPECT_EQ(d.kind, Decision::Kind::kScaleUp);
  EXPECT_EQ(d.count, 2u);  // 10 - 8, despite demand for far more
}

TEST(TargetUtilizationPolicyTest, AtMaxPoolThereIsNothingToAdd) {
  TargetUtilizationPolicy::Config config;
  config.max_pool = 8;
  TargetUtilizationPolicy policy(config);
  EXPECT_EQ(policy.decide(snap(10.0, 8, 8, 100)).kind,
            Decision::Kind::kHold);
}

TEST(TargetUtilizationPolicyTest, MinPoolFloorsTheDownwardTarget) {
  TargetUtilizationPolicy::Config config;
  config.min_pool = 12;
  TargetUtilizationPolicy policy(config);
  const Decision d = policy.decide(snap(10.0, 16, 1, 0));
  EXPECT_EQ(d.kind, Decision::Kind::kScaleDown);
  EXPECT_EQ(d.count, 4u);  // down to min_pool, not to demand
}

TEST(TargetUtilizationPolicyTest, EmptyPoolObservationHolds) {
  TargetUtilizationPolicy policy;
  EXPECT_EQ(policy.decide(snap(10.0, 0, 0, 50)).kind, Decision::Kind::kHold);
}

TEST(TargetUtilizationPolicyTest, ResetForgetsTheCooldownClock) {
  TargetUtilizationPolicy::Config config;
  config.cooldown_s = 100.0;
  TargetUtilizationPolicy policy(config);
  EXPECT_EQ(policy.decide(snap(10.0, 8, 8, 12)).kind,
            Decision::Kind::kScaleUp);
  policy.reset();
  EXPECT_EQ(policy.decide(snap(10.5, 8, 8, 12)).kind,
            Decision::Kind::kScaleUp);
}

TEST(StragglerSpeculationPolicyTest, HoldsUntilEnoughCompletions) {
  StragglerSpeculationPolicy policy;  // min_completed = 8
  MetricsSnapshot m = snap(0.0, 4, 4, 0);
  m.completed = 7;
  m.p95_s = 1.0;
  EXPECT_DOUBLE_EQ(policy.speculation_threshold_s(m), 0.0);
  m.completed = 8;
  EXPECT_DOUBLE_EQ(policy.speculation_threshold_s(m), 2.0);  // 2 x p95
}

TEST(StragglerSpeculationPolicyTest, DegenerateP95Disables) {
  StragglerSpeculationPolicy policy;
  MetricsSnapshot m = snap(0.0, 4, 4, 0);
  m.completed = 100;
  m.p95_s = 0.0;
  EXPECT_DOUBLE_EQ(policy.speculation_threshold_s(m), 0.0);
}

TEST(StragglerSpeculationPolicyTest, MinThresholdFloorsTinyP95) {
  StragglerSpeculationPolicy::Config config;
  config.threshold_factor = 2.0;
  config.min_threshold_s = 0.5;
  StragglerSpeculationPolicy policy(config);
  MetricsSnapshot m = snap(0.0, 4, 4, 0);
  m.completed = 100;
  m.p95_s = 0.01;  // 2 x p95 = 0.02 would speculate on noise
  EXPECT_DOUBLE_EQ(policy.speculation_threshold_s(m), 0.5);
}

TEST(StragglerSpeculationPolicyTest, BasePolicyNeverActs) {
  // The Policy base defaults: hold every tick, never speculate.
  class Inert : public Policy {
   public:
    const char* name() const noexcept override { return "inert"; }
  };
  Inert inert;
  MetricsSnapshot m = snap(0.0, 4, 4, 100);
  m.completed = 1000;
  m.p95_s = 5.0;
  EXPECT_EQ(inert.decide(m).kind, Decision::Kind::kHold);
  EXPECT_DOUBLE_EQ(inert.speculation_threshold_s(m), 0.0);
}

}  // namespace
}  // namespace mdtask::autoscale
