// MetricsWindow: the observation side of the autoscale control loop —
// nearest-rank percentiles, ring-buffer aging, and coherent snapshots.
#include "mdtask/autoscale/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mdtask::autoscale {
namespace {

TEST(DurationPercentileTest, EmptySampleSetIsZero) {
  EXPECT_DOUBLE_EQ(duration_percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(duration_percentile({}, 99.0), 0.0);
}

TEST(DurationPercentileTest, NearestRankOverUniformSamples) {
  // 1..100, deliberately unsorted: percentiles sort a copy.
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(duration_percentile(samples, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(duration_percentile(samples, 95.0), 95.0);
  EXPECT_DOUBLE_EQ(duration_percentile(samples, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(duration_percentile(samples, 100.0), 100.0);
}

TEST(DurationPercentileTest, SingleSampleIsEveryPercentile) {
  EXPECT_DOUBLE_EQ(duration_percentile({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(duration_percentile({7.0}, 99.0), 7.0);
}

TEST(MetricsWindowTest, EmptyWindowSnapshotsToZeros) {
  MetricsWindow window;
  const MetricsSnapshot snap = window.snapshot(3.5);
  EXPECT_DOUBLE_EQ(snap.now_s, 3.5);
  EXPECT_EQ(snap.pool_size, 0u);
  EXPECT_EQ(snap.completed, 0u);
  EXPECT_DOUBLE_EQ(snap.utilization, 0.0);
  EXPECT_DOUBLE_EQ(snap.p50_s, 0.0);
  EXPECT_DOUBLE_EQ(snap.p99_s, 0.0);
}

TEST(MetricsWindowTest, SnapshotReflectsLatestPoolObservation) {
  MetricsWindow window;
  window.observe_pool(8, 2, 5);
  window.observe_pool(4, 3, 1);  // latest wins
  const MetricsSnapshot snap = window.snapshot();
  EXPECT_EQ(snap.pool_size, 4u);
  EXPECT_EQ(snap.busy, 3u);
  EXPECT_EQ(snap.queue_depth, 1u);
  EXPECT_DOUBLE_EQ(snap.utilization, 0.75);
}

TEST(MetricsWindowTest, UtilizationIsClampedToOne) {
  MetricsWindow window;
  // A racy observation can briefly report busy > pool (e.g. mid-shrink).
  window.observe_pool(2, 5, 0);
  EXPECT_DOUBLE_EQ(window.snapshot().utilization, 1.0);
}

TEST(MetricsWindowTest, PercentilesOverRecordedDurations) {
  MetricsWindow window;
  for (int i = 1; i <= 100; ++i) {
    window.record_task_duration(static_cast<double>(i));
  }
  const MetricsSnapshot snap = window.snapshot();
  EXPECT_EQ(snap.completed, 100u);
  EXPECT_DOUBLE_EQ(snap.p50_s, 50.0);
  EXPECT_DOUBLE_EQ(snap.p95_s, 95.0);
  EXPECT_DOUBLE_EQ(snap.p99_s, 99.0);
}

TEST(MetricsWindowTest, RingBufferAgesOutOldDurations) {
  MetricsWindow window(4);
  for (int i = 1; i <= 8; ++i) {
    window.record_task_duration(static_cast<double>(i));
  }
  const MetricsSnapshot snap = window.snapshot();
  // Window holds {5, 6, 7, 8}; completed counts every recording.
  EXPECT_EQ(snap.completed, 8u);
  EXPECT_DOUBLE_EQ(snap.p50_s, 6.0);
  EXPECT_DOUBLE_EQ(snap.p99_s, 8.0);
  EXPECT_EQ(window.completed(), 8u);
}

TEST(MetricsWindowTest, ZeroCapacityIsPromotedToOne) {
  MetricsWindow window(0);
  window.record_task_duration(1.0);
  window.record_task_duration(9.0);
  EXPECT_DOUBLE_EQ(window.snapshot().p50_s, 9.0);  // only the latest kept
  EXPECT_EQ(window.completed(), 2u);
}

TEST(MetricsWindowTest, ResetForgetsEverything) {
  MetricsWindow window;
  window.observe_pool(4, 4, 9);
  window.record_task_duration(3.0);
  window.reset();
  const MetricsSnapshot snap = window.snapshot();
  EXPECT_EQ(snap.pool_size, 0u);
  EXPECT_EQ(snap.completed, 0u);
  EXPECT_DOUBLE_EQ(snap.p50_s, 0.0);
}

TEST(MetricsWindowTest, ConcurrentProducersAreCountedExactly) {
  MetricsWindow window(64);
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&window] {
      for (int i = 0; i < 1000; ++i) window.record_task_duration(0.001);
    });
  }
  for (auto& thread : producers) thread.join();
  EXPECT_EQ(window.completed(), 4000u);
  EXPECT_DOUBLE_EQ(window.snapshot().p99_s, 0.001);
}

}  // namespace
}  // namespace mdtask::autoscale
