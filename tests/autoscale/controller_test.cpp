// AutoscaleController: one tick = observe -> decide -> act -> record.
// Fake EngineActions capture what the controller asked of the engine;
// a hand-fed MetricsWindow supplies the observations.
#include "mdtask/autoscale/controller.h"

#include <gtest/gtest.h>

#include <vector>

namespace mdtask::autoscale {
namespace {

using fault::AutoscaleAction;

struct FakeEngine {
  std::size_t pool = 8;
  std::vector<std::size_t> grow_calls;
  std::vector<std::size_t> shrink_calls;
  std::vector<double> speculate_thresholds;
  std::size_t copies_per_call = 0;

  EngineActions actions(fault::EngineId engine = fault::EngineId::kDask,
                        bool rigid = false) {
    EngineActions a;
    a.engine = engine;
    a.rigid = rigid;
    a.grow = [this](std::size_t count) {
      grow_calls.push_back(count);
      pool += count;
      return count;
    };
    a.shrink = [this](std::size_t count) {
      shrink_calls.push_back(count);
      pool -= std::min(pool, count);
      return count;
    };
    a.speculate = [this](double threshold_s) {
      speculate_thresholds.push_back(threshold_s);
      return copies_per_call;
    };
    a.pool_size = [this] { return pool; };
    return a;
  }
};

TEST(AutoscaleControllerTest, ScaleUpFlowsThroughGrowAndIsRecorded) {
  FakeEngine engine;
  TargetUtilizationPolicy policy;
  MetricsWindow window;
  fault::RecoveryLog log;
  AutoscaleController controller(engine.actions(), {&policy}, &window, &log);

  window.observe_pool(8, 8, 12);
  const TickResult result = controller.tick(1.0);

  EXPECT_EQ(result.decision.kind, Decision::Kind::kScaleUp);
  EXPECT_EQ(result.applied, 16u);
  ASSERT_EQ(engine.grow_calls.size(), 1u);
  EXPECT_EQ(engine.grow_calls[0], 16u);
  EXPECT_EQ(engine.pool, 24u);

  const auto records = log.autoscale_events();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, AutoscaleAction::kScaleUp);
  EXPECT_EQ(records[0].engine, fault::EngineId::kDask);
  EXPECT_EQ(records[0].seq, 0u);
  EXPECT_EQ(records[0].count, 16u);
  EXPECT_EQ(records[0].pool_size, 24u);  // post-action pool
  EXPECT_EQ(records[0].queue_depth, 12u);
  EXPECT_EQ(controller.decisions(), 1u);
}

TEST(AutoscaleControllerTest, ScaleDownFlowsThroughShrink) {
  FakeEngine engine;
  engine.pool = 16;
  TargetUtilizationPolicy policy;
  MetricsWindow window;
  fault::RecoveryLog log;
  AutoscaleController controller(engine.actions(), {&policy}, &window, &log);

  window.observe_pool(16, 2, 0);
  const TickResult result = controller.tick(1.0);

  EXPECT_EQ(result.decision.kind, Decision::Kind::kScaleDown);
  ASSERT_EQ(engine.shrink_calls.size(), 1u);
  EXPECT_EQ(engine.shrink_calls[0], 13u);
  const auto records = log.autoscale_events();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, AutoscaleAction::kScaleDown);
  EXPECT_EQ(records[0].pool_size, 3u);
}

TEST(AutoscaleControllerTest, HoldTickRecordsNothing) {
  FakeEngine engine;
  TargetUtilizationPolicy policy;
  MetricsWindow window;
  fault::RecoveryLog log;
  AutoscaleController controller(engine.actions(), {&policy}, &window, &log);

  window.observe_pool(8, 6, 2);  // inside the hysteresis band
  const TickResult result = controller.tick(1.0);

  EXPECT_EQ(result.decision.kind, Decision::Kind::kHold);
  EXPECT_TRUE(engine.grow_calls.empty());
  EXPECT_TRUE(engine.shrink_calls.empty());
  EXPECT_EQ(log.autoscale_size(), 0u);
  EXPECT_EQ(controller.decisions(), 0u);
}

TEST(AutoscaleControllerTest, RigidEngineRecordsVetoInsteadOfActing) {
  FakeEngine engine;
  TargetUtilizationPolicy policy;
  MetricsWindow window;
  fault::RecoveryLog log;
  AutoscaleController controller(
      engine.actions(fault::EngineId::kMpi, /*rigid=*/true), {&policy},
      &window, &log);

  window.observe_pool(8, 8, 12);
  const TickResult result = controller.tick(1.0);

  EXPECT_TRUE(result.vetoed);
  EXPECT_EQ(result.applied, 0u);
  EXPECT_TRUE(engine.grow_calls.empty());  // never touched
  const auto records = log.autoscale_events();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, AutoscaleAction::kRigidVeto);
  EXPECT_EQ(records[0].engine, fault::EngineId::kMpi);
  EXPECT_EQ(records[0].pool_size, 8u);  // pool unchanged
}

TEST(AutoscaleControllerTest, RigidEngineNeverSpeculates) {
  FakeEngine engine;
  StragglerSpeculationPolicy policy;
  MetricsWindow window;
  AutoscaleController controller(
      engine.actions(fault::EngineId::kMpi, /*rigid=*/true), {&policy},
      &window);

  for (int i = 0; i < 20; ++i) window.record_task_duration(1.0);
  window.observe_pool(8, 8, 0);
  const TickResult result = controller.tick(1.0);
  EXPECT_EQ(result.speculated, 0u);
  EXPECT_TRUE(engine.speculate_thresholds.empty());
}

TEST(AutoscaleControllerTest, SpeculationUsesTheWindowedThreshold) {
  FakeEngine engine;
  engine.copies_per_call = 3;
  StragglerSpeculationPolicy policy;  // 2 x p95 once 8 completions exist
  MetricsWindow window;
  fault::RecoveryLog log;
  AutoscaleController controller(engine.actions(), {&policy}, &window, &log);

  for (int i = 0; i < 20; ++i) window.record_task_duration(1.0);
  window.observe_pool(8, 8, 0);
  const TickResult result = controller.tick(2.0);

  EXPECT_EQ(result.speculated, 3u);
  ASSERT_EQ(engine.speculate_thresholds.size(), 1u);
  EXPECT_DOUBLE_EQ(engine.speculate_thresholds[0], 2.0);
  const auto records = log.autoscale_events();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, AutoscaleAction::kSpeculate);
  EXPECT_EQ(records[0].count, 3u);
}

TEST(AutoscaleControllerTest, ZeroCopiesSubmittedRecordsNothing) {
  FakeEngine engine;  // copies_per_call = 0: no straggler was old enough
  StragglerSpeculationPolicy policy;
  MetricsWindow window;
  fault::RecoveryLog log;
  AutoscaleController controller(engine.actions(), {&policy}, &window, &log);

  for (int i = 0; i < 20; ++i) window.record_task_duration(1.0);
  window.observe_pool(8, 8, 0);
  EXPECT_EQ(controller.tick(2.0).speculated, 0u);
  EXPECT_EQ(engine.speculate_thresholds.size(), 1u);  // asked, found none
  EXPECT_EQ(log.autoscale_size(), 0u);
}

TEST(AutoscaleControllerTest, FirstNonHoldPolicyOwnsTheTick) {
  // Two utilization policies with different steps: only the first fires.
  FakeEngine engine;
  TargetUtilizationPolicy::Config small_step;
  small_step.max_step = 2;
  TargetUtilizationPolicy first(small_step);
  TargetUtilizationPolicy second;
  MetricsWindow window;
  AutoscaleController controller(engine.actions(), {&first, &second},
                                 &window);

  window.observe_pool(8, 8, 12);
  const TickResult result = controller.tick(1.0);
  EXPECT_EQ(result.applied, 2u);
  ASSERT_EQ(engine.grow_calls.size(), 1u);
}

TEST(AutoscaleControllerTest, NullLogAndNullWindowAreSafe) {
  FakeEngine engine;
  TargetUtilizationPolicy policy;
  MetricsWindow window;
  AutoscaleController logless(engine.actions(), {&policy}, &window, nullptr);
  window.observe_pool(8, 8, 12);
  EXPECT_EQ(logless.tick(1.0).applied, 16u);
  EXPECT_EQ(logless.decisions(), 1u);  // seq advances even unlogged

  AutoscaleController windowless(engine.actions(), {&policy}, nullptr);
  const TickResult result = windowless.tick(2.0);
  EXPECT_EQ(result.decision.kind, Decision::Kind::kHold);
}

TEST(AutoscaleControllerTest, ResetRestartsSequenceAndPolicies) {
  FakeEngine engine;
  TargetUtilizationPolicy::Config config;
  config.cooldown_s = 100.0;
  TargetUtilizationPolicy policy(config);
  MetricsWindow window;
  fault::RecoveryLog log;
  AutoscaleController controller(engine.actions(), {&policy}, &window, &log);

  window.observe_pool(8, 8, 12);
  EXPECT_EQ(controller.tick(1.0).applied, 16u);
  controller.reset();
  EXPECT_EQ(controller.decisions(), 0u);
  window.observe_pool(8, 8, 12);
  // Without reset the 100 s cooldown would hold this tick.
  EXPECT_EQ(controller.tick(1.5).applied, 16u);
  EXPECT_EQ(log.autoscale_events()[1].seq, 0u);  // fresh sequence
}

}  // namespace
}  // namespace mdtask::autoscale
