#include "mdtask/sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace mdtask::sim {
namespace {

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation simulation;
  std::vector<int> order;
  simulation.at(3.0, [&] { order.push_back(3); });
  simulation.at(1.0, [&] { order.push_back(1); });
  simulation.at(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(simulation.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, TiesFireInScheduleOrder) {
  Simulation simulation;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulation.at(1.0, [&order, i] { order.push_back(i); });
  }
  simulation.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, NestedSchedulingAdvancesClock) {
  Simulation simulation;
  double observed = -1.0;
  simulation.after(1.0, [&] {
    simulation.after(2.0, [&] { observed = simulation.now(); });
  });
  simulation.run();
  EXPECT_DOUBLE_EQ(observed, 3.0);
}

TEST(SimulationTest, PastSchedulingThrows) {
  Simulation simulation;
  simulation.after(5.0, [&] {
    EXPECT_THROW(simulation.at(1.0, [] {}), std::invalid_argument);
  });
  simulation.run();
}

TEST(ResourceTest, ParallelWithinCapacity) {
  Simulation simulation;
  Resource cores(simulation, 4);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    cores.acquire(10.0, [&] { ++done; });
  }
  EXPECT_DOUBLE_EQ(simulation.run(), 10.0);  // all parallel
  EXPECT_EQ(done, 4);
}

TEST(ResourceTest, ExcessRequestsQueue) {
  Simulation simulation;
  Resource cores(simulation, 2);
  for (int i = 0; i < 6; ++i) {
    cores.acquire(10.0, [] {});
  }
  // 6 jobs, 2 servers, 10 s each => 3 waves => 30 s.
  EXPECT_DOUBLE_EQ(simulation.run(), 30.0);
}

TEST(ResourceTest, BusyTimeAccumulates) {
  Simulation simulation;
  Resource cores(simulation, 2);
  cores.acquire(5.0, [] {});
  cores.acquire(7.0, [] {});
  simulation.run();
  EXPECT_DOUBLE_EQ(cores.busy_time(), 12.0);
}

TEST(ResourceTest, SingleServerSerializes) {
  Simulation simulation;
  Resource db(simulation, 1);
  std::vector<double> completion_times;
  for (int i = 0; i < 3; ++i) {
    db.acquire(2.0, [&] { completion_times.push_back(simulation.now()); });
  }
  simulation.run();
  EXPECT_EQ(completion_times, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(NetworkModelTest, LinearBcastGrowsWithPeers) {
  NetworkModel net;
  EXPECT_GT(net.bcast_linear_s(1 << 20, 16), net.bcast_linear_s(1 << 20, 2));
  EXPECT_DOUBLE_EQ(net.bcast_linear_s(1 << 20, 16),
                   8.0 * net.bcast_linear_s(1 << 20, 2));
}

TEST(NetworkModelTest, TreeBcastIsLogDepth) {
  NetworkModel net;
  const double t16 = net.bcast_tree_s(1 << 20, 16);
  const double t2 = net.bcast_tree_s(1 << 20, 2);
  EXPECT_DOUBLE_EQ(t16, 4.0 * t2);  // log2(16)=4 rounds vs 1
  EXPECT_DOUBLE_EQ(net.bcast_tree_s(1 << 20, 1), 0.0);
}

TEST(NetworkModelTest, TorrentNearlyFlatInRanks) {
  NetworkModel net;
  const double t4 = net.bcast_torrent_s(100 << 20, 4);
  const double t64 = net.bcast_torrent_s(100 << 20, 64);
  EXPECT_LT(t64, 1.2 * t4);  // flat-ish (Fig. 8 Spark/Dask curves)
}

TEST(MachineProfileTest, WranglerLogicalCoresAreWeakerThanComet) {
  // Wrangler exposes 48 hyper-threaded logical cores over 24 physical;
  // Comet's 24 are physical. Per logical core, Comet is stronger.
  const ClusterSpec c{comet(), 1};
  const ClusterSpec w{wrangler(), 1};
  const double comet_per_core =
      c.total_effective_cores() / static_cast<double>(c.total_cores());
  const double wrangler_per_core =
      w.total_effective_cores() / static_cast<double>(w.total_cores());
  EXPECT_GT(comet_per_core, wrangler_per_core);
  EXPECT_EQ(w.total_cores(), 48u);
  EXPECT_EQ(c.total_cores(), 24u);
}

TEST(MachineProfileTest, PartialNodeUsesPhysicalCoresFirst) {
  // 24 cores on one Wrangler node are 24 physical cores: no HT penalty.
  const ClusterSpec w24{wrangler(), 1, 24};
  EXPECT_NEAR(w24.total_effective_cores(), 24.0 * wrangler().core_speed,
              1e-9);
  // 32 cores on one node: 24 physical + 8 hyper-threads.
  const ClusterSpec w32{wrangler(), 1, 32};
  EXPECT_NEAR(w32.total_effective_cores(),
              (24.0 + 8.0 * 0.35) * wrangler().core_speed, 1e-9);
}

TEST(MachineProfileTest, ClusterForCoresRoundsUpNodes) {
  const auto spec = cluster_for_cores(comet(), 256);
  EXPECT_EQ(spec.nodes, 11u);  // ceil(256/24)
  EXPECT_EQ(spec.total_cores(), 256u);
  EXPECT_EQ(cluster_for_cores(comet(), 24).nodes, 1u);
  EXPECT_EQ(cluster_for_cores(comet(), 1).nodes, 1u);
  EXPECT_EQ(cluster_for_cores(comet(), 1).total_cores(), 1u);
}

TEST(MachineProfileTest, MemoryPerCoreIs128GBSplitAcrossUsedCores) {
  const ClusterSpec full{comet(), 4};
  EXPECT_NEAR(full.memory_per_core_bytes(), 128.0 * (1ull << 30) / 24.0,
              1.0);
  // Using 32 of Wrangler's 48 logical cores per node leaves 4 GB each.
  const ClusterSpec partial{wrangler(), 2, 64};
  EXPECT_NEAR(partial.memory_per_core_bytes(), 128.0 * (1ull << 30) / 32.0,
              1.0);
}

TEST(ElasticResourceTest, AddedServersDrainTheQueue) {
  Simulation simulation;
  Resource cores(simulation, 1);
  for (int i = 0; i < 4; ++i) cores.acquire(10.0, [] {});
  // Without growth: 4 serial jobs = 40 s. Add a server at t=10.
  simulation.after(10.0, [&] { cores.add_servers(1); });
  // t=0..10 job1; at t=10 two servers: job2+job3 parallel (10..20),
  // job4 at 20..30.
  EXPECT_DOUBLE_EQ(simulation.run(), 30.0);
}

TEST(ElasticResourceTest, RemovalIsLazyForBusyServers) {
  Simulation simulation;
  Resource cores(simulation, 2);
  for (int i = 0; i < 4; ++i) cores.acquire(10.0, [] {});
  // Remove one server at t=5: both are busy, so one retires at t=10.
  simulation.after(5.0, [&] { cores.remove_servers(1); });
  // Jobs 1,2 run 0..10; then a single server runs jobs 3 (10..20) and
  // 4 (20..30).
  EXPECT_DOUBLE_EQ(simulation.run(), 30.0);
}

TEST(ElasticResourceTest, IdleServersLeaveImmediately) {
  Simulation simulation;
  Resource cores(simulation, 3);
  cores.remove_servers(2);
  EXPECT_EQ(cores.free_servers(), 1u);
  for (int i = 0; i < 2; ++i) cores.acquire(5.0, [] {});
  EXPECT_DOUBLE_EQ(simulation.run(), 10.0);  // serialized on 1 server
}

TEST(ElasticResourceTest, AddCancelsPendingRemoval) {
  Simulation simulation;
  Resource cores(simulation, 1);
  cores.acquire(10.0, [] {});
  cores.acquire(10.0, [] {});
  simulation.after(1.0, [&] {
    cores.remove_servers(1);  // busy -> lazy
    cores.add_servers(1);     // cancels it
  });
  EXPECT_DOUBLE_EQ(simulation.run(), 20.0);  // server stays, 2 x 10 s
}

TEST(TraceTest, ResourceRecordsServiceIntervals) {
  Simulation simulation;
  Resource cores(simulation, 2);
  std::vector<ServiceInterval> trace;
  cores.set_trace(&trace);
  for (int i = 0; i < 3; ++i) cores.acquire(5.0, [] {});
  simulation.run();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace[0].start, 0.0);
  EXPECT_DOUBLE_EQ(trace[0].end, 5.0);
  EXPECT_DOUBLE_EQ(trace[2].start, 5.0);  // queued job starts at t=5
  EXPECT_DOUBLE_EQ(trace[2].end, 10.0);
}

TEST(CoreSpeedScheduleTest, EmptyClassesYieldAllOnes) {
  const MachineProfile m = comet();  // both testbeds are homogeneous
  const auto schedule = core_speed_schedule(m, 5);
  EXPECT_EQ(schedule, (std::vector<double>{1.0, 1.0, 1.0, 1.0, 1.0}));
}

TEST(CoreSpeedScheduleTest, ClassesTileInDeclarationOrder) {
  MachineProfile m;
  m.core_classes = {{"fast", 1.0, 2}, {"slow", 0.5, 1}};
  const auto schedule = core_speed_schedule(m, 7);
  EXPECT_EQ(schedule, (std::vector<double>{1.0, 1.0, 0.5, 1.0, 1.0, 0.5,
                                           1.0}));
}

TEST(CoreSpeedScheduleTest, ZeroCountClassesAreSkipped) {
  MachineProfile m;
  m.core_classes = {{"ghost", 9.0, 0}, {"slow", 0.25, 2}};
  const auto schedule = core_speed_schedule(m, 3);
  EXPECT_EQ(schedule, (std::vector<double>{0.25, 0.25, 0.25}));
}

TEST(UtilizationTimelineTest, FullyBusyThenIdle) {
  // 2 servers, intervals covering [0,5) on both, horizon 10, 2 buckets:
  // first bucket fully busy, second idle.
  const std::vector<ServiceInterval> intervals = {{0, 5}, {0, 5}};
  const auto timeline = utilization_timeline(intervals, 2, 2, 10.0);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline[0], 1.0);
  EXPECT_DOUBLE_EQ(timeline[1], 0.0);
}

TEST(UtilizationTimelineTest, PartialOverlapSplitsAcrossBuckets) {
  // One server busy [2, 6) with horizon 8, 4 buckets of width 2:
  // buckets cover 0,1,1,0 of their width.
  const std::vector<ServiceInterval> intervals = {{2, 6}};
  const auto timeline = utilization_timeline(intervals, 1, 4, 8.0);
  EXPECT_DOUBLE_EQ(timeline[0], 0.0);
  EXPECT_DOUBLE_EQ(timeline[1], 1.0);
  EXPECT_DOUBLE_EQ(timeline[2], 1.0);
  EXPECT_DOUBLE_EQ(timeline[3], 0.0);
}

TEST(UtilizationTimelineTest, EmptyInputsAreSafe) {
  EXPECT_EQ(utilization_timeline({}, 4, 3).size(), 3u);
  const std::vector<ServiceInterval> intervals = {{0, 1}};
  EXPECT_EQ(utilization_timeline(intervals, 0, 3)[0], 0.0);
}

TEST(UtilizationTimelineTest, DefaultHorizonUsesLatestEnd) {
  const std::vector<ServiceInterval> intervals = {{0, 4}, {4, 8}};
  const auto timeline = utilization_timeline(intervals, 1, 2);
  EXPECT_DOUBLE_EQ(timeline[0], 1.0);
  EXPECT_DOUBLE_EQ(timeline[1], 1.0);
}

}  // namespace
}  // namespace mdtask::sim
