#include "mdtask/analysis/rmsd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mdtask/common/rng.h"

namespace mdtask::analysis {
namespace {

using traj::Vec3;

TEST(FrameRmsdTest, IdenticalFramesAreZero) {
  const std::vector<Vec3> a = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_DOUBLE_EQ(frame_rmsd(a, a), 0.0);
}

TEST(FrameRmsdTest, KnownValue) {
  const std::vector<Vec3> a = {{0, 0, 0}, {0, 0, 0}};
  const std::vector<Vec3> b = {{3, 4, 0}, {0, 0, 0}};
  // sum sq = 25, mean = 12.5, rmsd = sqrt(12.5)
  EXPECT_DOUBLE_EQ(frame_rmsd(a, b), std::sqrt(12.5));
}

TEST(FrameRmsdTest, Symmetric) {
  Xoshiro256StarStar rng(3);
  std::vector<Vec3> a(20), b(20);
  for (auto& p : a) p = {static_cast<float>(rng.normal()),
                         static_cast<float>(rng.normal()),
                         static_cast<float>(rng.normal())};
  for (auto& p : b) p = {static_cast<float>(rng.normal()),
                         static_cast<float>(rng.normal()),
                         static_cast<float>(rng.normal())};
  EXPECT_DOUBLE_EQ(frame_rmsd(a, b), frame_rmsd(b, a));
}

TEST(FrameRmsdTest, TranslationRaisesPlainRmsd) {
  std::vector<Vec3> a = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  std::vector<Vec3> b = a;
  for (auto& p : b) p.x += 10.0f;
  EXPECT_NEAR(frame_rmsd(a, b), 10.0, 1e-9);
}

TEST(FrameSumsqTest, ConsistentWithRmsd) {
  const std::vector<Vec3> a = {{0, 0, 0}, {1, 1, 1}};
  const std::vector<Vec3> b = {{1, 0, 0}, {1, 1, 3}};
  const double n = 2.0;
  EXPECT_DOUBLE_EQ(frame_rmsd(a, b),
                   std::sqrt(frame_sumsq(a, b) / n));
}

TEST(KabschRmsdTest, InvariantUnderTranslation) {
  std::vector<Vec3> a = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 2}};
  std::vector<Vec3> b = a;
  for (auto& p : b) {
    p.x += 5.0f;
    p.y -= 2.0f;
  }
  EXPECT_NEAR(kabsch_rmsd(a, b), 0.0, 1e-4);
}

TEST(KabschRmsdTest, InvariantUnderRotation) {
  std::vector<Vec3> a = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1},
                         {2, -1, 0.5}};
  // Rotate 90 degrees about z.
  std::vector<Vec3> b;
  for (const auto& p : a) b.push_back({-p.y, p.x, p.z});
  EXPECT_NEAR(kabsch_rmsd(a, b), 0.0, 1e-4);
}

TEST(KabschRmsdTest, NeverExceedsPlainRmsd) {
  Xoshiro256StarStar rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec3> a(15), b(15);
    for (auto& p : a) p = {static_cast<float>(rng.normal(0, 3)),
                           static_cast<float>(rng.normal(0, 3)),
                           static_cast<float>(rng.normal(0, 3))};
    for (auto& p : b) p = {static_cast<float>(rng.normal(0, 3)),
                           static_cast<float>(rng.normal(0, 3)),
                           static_cast<float>(rng.normal(0, 3))};
    EXPECT_LE(kabsch_rmsd(a, b), frame_rmsd(a, b) + 1e-9);
  }
}

TEST(KabschRmsdTest, DetectsRealDeformation) {
  std::vector<Vec3> a = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<Vec3> b = a;
  b[3] = {0, 0, 5};  // stretch one atom
  EXPECT_GT(kabsch_rmsd(a, b), 1.0);
}

TEST(KabschRmsdTest, DegenerateConformationsConverge) {
  // Planar / collinear conformations make the Davenport key matrix's top
  // eigenvalues (near-)degenerate; power iteration alone stalls. The
  // Newton fallback must still deliver the correct RMSD.
  const std::vector<Vec3> line_a = {
      {0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}};
  std::vector<Vec3> line_b;
  // Same line rotated into the y axis: Kabsch distance is zero.
  for (const auto& p : line_a) line_b.push_back({0, p.x, 0});
  EXPECT_NEAR(kabsch_rmsd(line_a, line_b), 0.0, 1e-4);

  // Planar square vs its mirror image (a reflection is not a proper
  // rotation, but for a planar set it is achievable by rotating through
  // the plane): again exactly superposable.
  const std::vector<Vec3> square = {
      {1, 1, 0}, {-1, 1, 0}, {-1, -1, 0}, {1, -1, 0}};
  std::vector<Vec3> mirrored;
  for (const auto& p : square) mirrored.push_back({-p.x, p.y, p.z});
  EXPECT_NEAR(kabsch_rmsd(square, mirrored), 0.0, 1e-4);
}

TEST(MaxEigenvalueSym4Test, DiagonalMatrix) {
  std::array<std::array<double, 4>, 4> m{};
  m[0][0] = 1.0;
  m[1][1] = -2.0;
  m[2][2] = 7.0;
  m[3][3] = 3.0;
  EXPECT_NEAR(detail::max_eigenvalue_sym4(m), 7.0, 1e-10);
}

TEST(MaxEigenvalueSym4Test, ExactlyDegenerateTopPair) {
  // Two equal top eigenvalues: power iteration cannot separate them but
  // the largest root of the characteristic polynomial is well defined.
  std::array<std::array<double, 4>, 4> m{};
  m[0][0] = 5.0;
  m[1][1] = 5.0;
  m[2][2] = 1.0;
  m[3][3] = -4.0;
  EXPECT_NEAR(detail::max_eigenvalue_sym4(m), 5.0, 1e-10);
}

TEST(MaxEigenvalueSym4Test, NearDegenerateDenseMatrix) {
  // Symmetric matrix built as Q diag(3, 3 - 1e-12, 1, 0) Q^T with a
  // hand-rolled orthogonal-ish mixing; the top gap of 1e-12 defeats
  // power iteration (convergence rate |l2/l1|^k ~ 1 - 3e-13 per step).
  const double c = std::cos(0.7), s = std::sin(0.7);
  // Rotation in the (0,1) plane and the (2,3) plane.
  const double q[4][4] = {{c, -s, 0, 0},
                          {s, c, 0, 0},
                          {0, 0, c, -s},
                          {0, 0, s, c}};
  const double lambda[4] = {3.0, 3.0 - 1e-12, 1.0, 0.0};
  std::array<std::array<double, 4>, 4> m{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double v = 0.0;
      for (int k = 0; k < 4; ++k) v += q[i][k] * lambda[k] * q[j][k];
      m[i][j] = v;
    }
  }
  EXPECT_NEAR(detail::max_eigenvalue_sym4(m), 3.0, 1e-9);
}

}  // namespace
}  // namespace mdtask::analysis
