#include "mdtask/analysis/rmsd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mdtask/common/rng.h"

namespace mdtask::analysis {
namespace {

using traj::Vec3;

TEST(FrameRmsdTest, IdenticalFramesAreZero) {
  const std::vector<Vec3> a = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_DOUBLE_EQ(frame_rmsd(a, a), 0.0);
}

TEST(FrameRmsdTest, KnownValue) {
  const std::vector<Vec3> a = {{0, 0, 0}, {0, 0, 0}};
  const std::vector<Vec3> b = {{3, 4, 0}, {0, 0, 0}};
  // sum sq = 25, mean = 12.5, rmsd = sqrt(12.5)
  EXPECT_DOUBLE_EQ(frame_rmsd(a, b), std::sqrt(12.5));
}

TEST(FrameRmsdTest, Symmetric) {
  Xoshiro256StarStar rng(3);
  std::vector<Vec3> a(20), b(20);
  for (auto& p : a) p = {static_cast<float>(rng.normal()),
                         static_cast<float>(rng.normal()),
                         static_cast<float>(rng.normal())};
  for (auto& p : b) p = {static_cast<float>(rng.normal()),
                         static_cast<float>(rng.normal()),
                         static_cast<float>(rng.normal())};
  EXPECT_DOUBLE_EQ(frame_rmsd(a, b), frame_rmsd(b, a));
}

TEST(FrameRmsdTest, TranslationRaisesPlainRmsd) {
  std::vector<Vec3> a = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  std::vector<Vec3> b = a;
  for (auto& p : b) p.x += 10.0f;
  EXPECT_NEAR(frame_rmsd(a, b), 10.0, 1e-9);
}

TEST(FrameSumsqTest, ConsistentWithRmsd) {
  const std::vector<Vec3> a = {{0, 0, 0}, {1, 1, 1}};
  const std::vector<Vec3> b = {{1, 0, 0}, {1, 1, 3}};
  const double n = 2.0;
  EXPECT_DOUBLE_EQ(frame_rmsd(a, b),
                   std::sqrt(frame_sumsq(a, b) / n));
}

TEST(KabschRmsdTest, InvariantUnderTranslation) {
  std::vector<Vec3> a = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 2}};
  std::vector<Vec3> b = a;
  for (auto& p : b) {
    p.x += 5.0f;
    p.y -= 2.0f;
  }
  EXPECT_NEAR(kabsch_rmsd(a, b), 0.0, 1e-4);
}

TEST(KabschRmsdTest, InvariantUnderRotation) {
  std::vector<Vec3> a = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1},
                         {2, -1, 0.5}};
  // Rotate 90 degrees about z.
  std::vector<Vec3> b;
  for (const auto& p : a) b.push_back({-p.y, p.x, p.z});
  EXPECT_NEAR(kabsch_rmsd(a, b), 0.0, 1e-4);
}

TEST(KabschRmsdTest, NeverExceedsPlainRmsd) {
  Xoshiro256StarStar rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec3> a(15), b(15);
    for (auto& p : a) p = {static_cast<float>(rng.normal(0, 3)),
                           static_cast<float>(rng.normal(0, 3)),
                           static_cast<float>(rng.normal(0, 3))};
    for (auto& p : b) p = {static_cast<float>(rng.normal(0, 3)),
                           static_cast<float>(rng.normal(0, 3)),
                           static_cast<float>(rng.normal(0, 3))};
    EXPECT_LE(kabsch_rmsd(a, b), frame_rmsd(a, b) + 1e-9);
  }
}

TEST(KabschRmsdTest, DetectsRealDeformation) {
  std::vector<Vec3> a = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<Vec3> b = a;
  b[3] = {0, 0, 5};  // stretch one atom
  EXPECT_GT(kabsch_rmsd(a, b), 1.0);
}

}  // namespace
}  // namespace mdtask::analysis
