#include "mdtask/analysis/clustering.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "mdtask/common/rng.h"
#include "mdtask/traj/generators.h"

namespace mdtask::analysis {
namespace {

/// Distance matrix with two tight groups {0,1,2} and {3,4} far apart.
DistanceMatrix two_groups() {
  DistanceMatrix d(5);
  auto set = [&d](std::size_t i, std::size_t j, double v) {
    d.set(i, j, v);
    d.set(j, i, v);
  };
  set(0, 1, 1.0);
  set(0, 2, 1.2);
  set(1, 2, 1.1);
  set(3, 4, 0.9);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 3; j < 5; ++j) set(i, j, 10.0 + static_cast<double>(i + j) * 0.1);
  }
  return d;
}

TEST(ClusteringTest, EmptyMatrixRejected) {
  EXPECT_FALSE(hierarchical_cluster(DistanceMatrix(), Linkage::kAverage).ok());
}

TEST(ClusteringTest, SingleLeafHasNoSteps) {
  auto r = hierarchical_cluster(DistanceMatrix(1), Linkage::kAverage);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().leaves, 1u);
  EXPECT_TRUE(r.value().steps.empty());
}

class LinkageTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(LinkageTest, ProducesNMinusOneMonotoneSteps) {
  auto r = hierarchical_cluster(two_groups(), GetParam());
  ASSERT_TRUE(r.ok());
  const auto& dendrogram = r.value();
  ASSERT_EQ(dendrogram.steps.size(), 4u);
  for (std::size_t s = 1; s < dendrogram.steps.size(); ++s) {
    EXPECT_GE(dendrogram.steps[s].distance,
              dendrogram.steps[s - 1].distance - 1e-12);
  }
  EXPECT_EQ(dendrogram.steps.back().size, 5u);
}

TEST_P(LinkageTest, RecoversTheTwoGroups) {
  auto r = hierarchical_cluster(two_groups(), GetParam());
  ASSERT_TRUE(r.ok());
  const auto labels = cut_into_clusters(r.value(), 2);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

INSTANTIATE_TEST_SUITE_P(Linkages, LinkageTest,
                         ::testing::Values(Linkage::kSingle,
                                           Linkage::kComplete,
                                           Linkage::kAverage));

TEST(ClusteringTest, ThresholdCutMatchesGroups) {
  auto r = hierarchical_cluster(two_groups(), Linkage::kAverage);
  ASSERT_TRUE(r.ok());
  const auto labels = cut_dendrogram(r.value(), 2.0);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  // Cut below every merge: all singletons.
  const auto singletons = cut_dendrogram(r.value(), 0.1);
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_EQ(singletons[v], v);
  // Cut above everything: one cluster.
  const auto one = cut_dendrogram(r.value(), 100.0);
  for (auto l : one) EXPECT_EQ(l, one[0]);
}

TEST(ClusteringTest, CutIntoKExtremes) {
  auto r = hierarchical_cluster(two_groups(), Linkage::kComplete);
  ASSERT_TRUE(r.ok());
  const auto all = cut_into_clusters(r.value(), 5);
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_EQ(all[v], v);
  const auto one = cut_into_clusters(r.value(), 1);
  for (auto l : one) EXPECT_EQ(l, 0u);
}

TEST(ClusteringTest, SingleLinkageEqualsMstConnectivity) {
  // Single linkage at threshold t clusters exactly like the graph of
  // pairwise distances <= t (a classic equivalence).
  const auto d = two_groups();
  auto r = hierarchical_cluster(d, Linkage::kSingle);
  ASSERT_TRUE(r.ok());
  const double t = 1.15;
  const auto labels = cut_dendrogram(r.value(), t);
  // Direct check: 0-1 (1.0) and 1-2 (1.1) <= t so {0,1,2} join; 0-2 is
  // 1.2 > t but transitivity holds through 1.
  EXPECT_EQ(labels[0], labels[2]);
  // 3-4 at 0.9 <= t.
  EXPECT_EQ(labels[3], labels[4]);
}

TEST(ClusteringTest, PsaEndToEnd) {
  // Two families: each group shares a base trajectory; members are the
  // base plus small per-member positional noise, so within-group PSA
  // distances are far below between-group ones.
  traj::ProteinTrajectoryParams p;
  p.atoms = 8;
  p.frames = 10;
  traj::Ensemble ensemble;
  Xoshiro256StarStar noise(99);
  for (std::size_t g = 0; g < 2; ++g) {
    p.seed = 1000 * (g + 1);
    const auto base = traj::make_protein_trajectory(p);
    for (std::size_t i = 0; i < 4; ++i) {
      traj::Trajectory member = base;
      for (auto& pos : member.data()) {
        pos.x += static_cast<float>(noise.normal(0.0, 0.1));
        pos.y += static_cast<float>(noise.normal(0.0, 0.1));
        pos.z += static_cast<float>(noise.normal(0.0, 0.1));
      }
      ensemble.push_back(std::move(member));
    }
  }
  const auto matrix = psa_reference(ensemble);
  auto r = hierarchical_cluster(matrix, Linkage::kAverage);
  ASSERT_TRUE(r.ok());
  const auto labels = cut_into_clusters(r.value(), 2);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (std::size_t i = 5; i < 8; ++i) EXPECT_EQ(labels[i], labels[4]);
  EXPECT_NE(labels[0], labels[4]);
}

TEST(ClusteringTest, FrechetMatrixClustersLikeHausdorff) {
  traj::ProteinTrajectoryParams p;
  p.atoms = 6;
  p.frames = 8;
  const auto ensemble = traj::make_protein_ensemble(5, p);
  const auto frechet = psa_reference_frechet(ensemble);
  ASSERT_EQ(frechet.size(), 5u);
  const auto hausdorff = psa_reference(ensemble);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(frechet.at(i, i), 0.0);
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_GE(frechet.at(i, j), hausdorff.at(i, j) - 1e-12);
      EXPECT_DOUBLE_EQ(frechet.at(i, j), frechet.at(j, i));
    }
  }
}

}  // namespace
}  // namespace mdtask::analysis
