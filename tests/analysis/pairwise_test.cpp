#include "mdtask/analysis/pairwise.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "mdtask/common/rng.h"

namespace mdtask::analysis {
namespace {

using traj::Vec3;

std::vector<Vec3> random_points(std::size_t n, std::uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Vec3> out(n);
  for (auto& p : out) {
    p = {static_cast<float>(rng.uniform(0, 10)),
         static_cast<float>(rng.uniform(0, 10)),
         static_cast<float>(rng.uniform(0, 10))};
  }
  return out;
}

std::vector<std::uint32_t> iota_ids(std::uint32_t begin, std::size_t n) {
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), begin);
  return ids;
}

TEST(CdistTest, KnownDistances) {
  const std::vector<Vec3> xs = {{0, 0, 0}, {1, 0, 0}};
  const std::vector<Vec3> ys = {{0, 0, 0}, {0, 3, 4}};
  const auto d = cdist(xs, ys);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
  EXPECT_DOUBLE_EQ(d[2], 1.0);
  EXPECT_DOUBLE_EQ(d[3], std::sqrt(1.0 + 25.0));
}

TEST(CdistTest, BytesAccounting) {
  EXPECT_EQ(cdist_bytes(100, 200), 100u * 200u * 8u);
}

TEST(EdgeDiscoveryTest, CdistAndStreamingAgree) {
  const auto xs = random_points(40, 1);
  const auto ys = random_points(35, 2);
  const auto xi = iota_ids(0, xs.size());
  const auto yi = iota_ids(100, ys.size());
  auto a = edges_from_cdist_block(xs, ys, xi, yi, 3.0);
  auto b = edges_within_cutoff(xs, ys, xi, yi, 3.0);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());  // points in [0,10]^3, cutoff 3 => some edges
}

TEST(EdgeDiscoveryTest, DiagonalBlockEmitsUpperTriangleOnly) {
  const auto xs = random_points(30, 3);
  const auto ids = iota_ids(0, xs.size());
  const auto edges = edges_within_cutoff(xs, xs, ids, ids, 4.0);
  for (const Edge& e : edges) EXPECT_LT(e.a, e.b);
  // No duplicates.
  auto sorted = edges;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(EdgeDiscoveryTest, CutoffIsInclusive) {
  const std::vector<Vec3> xs = {{0, 0, 0}};
  const std::vector<Vec3> ys = {{2, 0, 0}};
  const std::vector<std::uint32_t> xi = {0}, yi = {1};
  EXPECT_EQ(edges_within_cutoff(xs, ys, xi, yi, 2.0).size(), 1u);
  EXPECT_EQ(edges_within_cutoff(xs, ys, xi, yi, 1.999).size(), 0u);
}

TEST(EdgeDiscoveryTest, EmptyInputsGiveNoEdges) {
  const std::vector<Vec3> empty;
  const std::vector<std::uint32_t> no_ids;
  EXPECT_TRUE(edges_within_cutoff(empty, empty, no_ids, no_ids, 1.0).empty());
}

TEST(EdgeOrderingTest, ComparisonIsLexicographic) {
  EXPECT_LT((Edge{1, 2}), (Edge{1, 3}));
  EXPECT_LT((Edge{1, 9}), (Edge{2, 0}));
  EXPECT_EQ((Edge{4, 5}), (Edge{4, 5}));
}

}  // namespace
}  // namespace mdtask::analysis
