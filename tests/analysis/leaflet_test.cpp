#include "mdtask/analysis/leaflet.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "mdtask/traj/catalog.h"
#include "mdtask/traj/generators.h"

namespace mdtask::analysis {
namespace {

struct LfFixture {
  traj::Bilayer bilayer;
  double cutoff;

  explicit LfFixture(std::size_t atoms, std::uint64_t seed = 7) {
    traj::BilayerParams p;
    p.atoms = atoms;
    p.seed = seed;
    bilayer = traj::make_bilayer(p);
    cutoff = traj::default_cutoff(p);
  }
};

TEST(LeafletReferenceTest, FindsExactlyTwoLeaflets) {
  const LfFixture fx(600);
  const auto result = leaflet_finder_reference(fx.bilayer.positions,
                                               fx.cutoff);
  EXPECT_EQ(result.component_count, 2u);
  EXPECT_EQ(result.leaflet_a_size + result.leaflet_b_size, 600u);
  EXPECT_EQ(result.unassigned, 0u);
}

TEST(LeafletReferenceTest, LabelsMatchGroundTruth) {
  const LfFixture fx(400);
  const auto result = leaflet_finder_reference(fx.bilayer.positions,
                                               fx.cutoff);
  // All atoms with the same ground-truth leaflet share a component label
  // and the two leaflets have different labels.
  const auto label0 = result.labels[0];
  for (std::size_t i = 0; i < fx.bilayer.atoms(); ++i) {
    if (fx.bilayer.leaflet[i] == fx.bilayer.leaflet[0]) {
      EXPECT_EQ(result.labels[i], label0);
    } else {
      EXPECT_NE(result.labels[i], label0);
    }
  }
}

TEST(Chunks1dTest, CoverAllAtomsWithoutOverlap) {
  const auto chunks = make_1d_chunks(103, 8);
  ASSERT_EQ(chunks.size(), 8u);
  std::uint32_t expect_begin = 0;
  std::size_t total = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.begin, expect_begin);
    expect_begin = c.end;
    total += c.size();
  }
  EXPECT_EQ(total, 103u);
}

TEST(Chunks1dTest, MorePartsThanAtomsClamps) {
  const auto chunks = make_1d_chunks(3, 100);
  std::size_t total = 0;
  for (const auto& c : chunks) total += c.size();
  EXPECT_EQ(total, 3u);
}

TEST(Blocks2dTest, UpperTriangleCoverage) {
  const auto blocks = make_2d_blocks(100, 10);
  // largest g with g(g+1)/2 <= 10 => g = 4 => 10 blocks.
  EXPECT_EQ(blocks.size(), 10u);
  for (const auto& b : blocks) {
    EXPECT_LE(b.rows.begin, b.cols.begin);
  }
}

TEST(Blocks2dTest, PaperTaskCount) {
  // The paper uses 1024 map tasks; g = 44 gives 44*45/2 = 990 blocks,
  // the closest upper-triangular count not exceeding the request.
  const auto blocks = make_2d_blocks(131072, 1024);
  EXPECT_EQ(blocks.size(), 990u);
}

class LfApproachTest : public ::testing::TestWithParam<int> {};

TEST_P(LfApproachTest, AllApproachesMatchReference) {
  const LfFixture fx(500);
  const auto want =
      leaflet_finder_reference(fx.bilayer.positions, fx.cutoff);

  std::vector<Edge> edges;
  const int approach = GetParam();
  if (approach == 1) {
    for (const auto& chunk : make_1d_chunks(fx.bilayer.atoms(), 7)) {
      auto part = lf_edges_1d(fx.bilayer.positions, chunk, fx.cutoff);
      edges.insert(edges.end(), part.begin(), part.end());
    }
  } else {
    for (const auto& block : make_2d_blocks(fx.bilayer.atoms(), 12)) {
      auto part = approach == 4
                      ? lf_edges_tree(fx.bilayer.positions, block, fx.cutoff)
                      : lf_edges_2d(fx.bilayer.positions, block, fx.cutoff);
      edges.insert(edges.end(), part.begin(), part.end());
    }
  }
  // Deduplicate: approach 1 discovers each edge from both endpoints'
  // chunks only when chunks differ; with a<b emission it never does, but
  // sort for stable comparison anyway.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  const auto labels =
      connected_components_union_find(fx.bilayer.atoms(), edges);
  const auto got = summarize_leaflets(labels);
  EXPECT_EQ(got.component_count, want.component_count);
  EXPECT_EQ(got.labels, want.labels);
}

INSTANTIATE_TEST_SUITE_P(Approaches, LfApproachTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(LfKernelTest, TreeAndCdistBlocksAgreeEdgeForEdge) {
  const LfFixture fx(300);
  for (const auto& block : make_2d_blocks(fx.bilayer.atoms(), 6)) {
    auto a = lf_edges_2d(fx.bilayer.positions, block, fx.cutoff);
    auto b = lf_edges_tree(fx.bilayer.positions, block, fx.cutoff);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(LfKernelTest, PartialComponentsPathMatchesEdgeGatherPath) {
  const LfFixture fx(450);
  std::vector<Edge> all_edges;
  std::vector<PartialComponents> parts;
  for (const auto& block : make_2d_blocks(fx.bilayer.atoms(), 10)) {
    auto edges = lf_edges_2d(fx.bilayer.positions, block, fx.cutoff);
    parts.push_back(partial_components(edges));
    all_edges.insert(all_edges.end(), edges.begin(), edges.end());
  }
  const auto via_edges =
      connected_components_union_find(fx.bilayer.atoms(), all_edges);
  const auto via_parts =
      merge_partial_components(fx.bilayer.atoms(), parts);
  EXPECT_EQ(via_edges, via_parts);
}

TEST(LfKernelTest, BlockCdistBytesMatchShape) {
  BlockPair block{{0, 100}, {100, 300}};
  EXPECT_EQ(lf_block_cdist_bytes(block), 100u * 200u * 8u);
}

TEST(SummarizeTest, UnassignedCountsStrayAtoms) {
  // Components: {0,1,2}, {3,4}, {5} -> leaflets of 3 and 2, 1 stray.
  ComponentLabels labels = {0, 0, 0, 3, 3, 5};
  const auto s = summarize_leaflets(labels);
  EXPECT_EQ(s.component_count, 3u);
  EXPECT_EQ(s.leaflet_a_size, 3u);
  EXPECT_EQ(s.leaflet_b_size, 2u);
  EXPECT_EQ(s.unassigned, 1u);
}

}  // namespace
}  // namespace mdtask::analysis
