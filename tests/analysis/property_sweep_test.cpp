// Parameterized property sweeps over the analysis kernels: invariants
// that must hold across a grid of inputs, not just hand-picked cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "mdtask/analysis/frechet.h"
#include "mdtask/analysis/hausdorff.h"
#include "mdtask/analysis/leaflet.h"
#include "mdtask/traj/generators.h"

namespace mdtask::analysis {
namespace {

// ---- Leaflet Finder cutoff monotonicity ----

class CutoffSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(CutoffSweepTest, LargerCutoffNeverIncreasesComponentCount) {
  traj::BilayerParams p;
  p.atoms = 300;
  const auto bilayer = traj::make_bilayer(p);
  const double cutoff = GetParam();
  const auto coarse =
      leaflet_finder_reference(bilayer.positions, cutoff * 1.3);
  const auto fine = leaflet_finder_reference(bilayer.positions, cutoff);
  // Growing the cutoff only adds edges, so components can only merge.
  EXPECT_LE(coarse.component_count, fine.component_count);
}

TEST_P(CutoffSweepTest, ComponentsRefineUnderSmallerCutoff) {
  // Refinement property: atoms sharing a component at cutoff c also
  // share one at any cutoff >= c.
  traj::BilayerParams p;
  p.atoms = 250;
  const auto bilayer = traj::make_bilayer(p);
  const double c = GetParam();
  const auto small = leaflet_finder_reference(bilayer.positions, c);
  const auto large = leaflet_finder_reference(bilayer.positions, c * 1.4);
  for (std::size_t i = 0; i < bilayer.atoms(); ++i) {
    for (std::size_t j = i + 1; j < std::min(bilayer.atoms(), i + 40);
         ++j) {
      if (small.labels[i] == small.labels[j]) {
        EXPECT_EQ(large.labels[i], large.labels[j])
            << "atoms " << i << "," << j << " split by larger cutoff";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, CutoffSweepTest,
                         ::testing::Values(0.8, 1.2, 1.6, 2.1, 2.6));

// ---- Metric relations across ensemble shapes ----

struct MetricSweepCase {
  std::size_t frames;
  std::size_t atoms;
};

class MetricSweepTest : public ::testing::TestWithParam<MetricSweepCase> {};

TEST_P(MetricSweepTest, FrechetDominatesHausdorffEverywhere) {
  const auto [frames, atoms] = GetParam();
  traj::ProteinTrajectoryParams p;
  p.frames = frames;
  p.atoms = atoms;
  const auto ensemble = traj::make_protein_ensemble(4, p);
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    for (std::size_t j = i + 1; j < ensemble.size(); ++j) {
      const double h = hausdorff_naive(ensemble[i], ensemble[j]);
      const double f = frechet_distance(ensemble[i], ensemble[j]);
      EXPECT_GE(f, h - 1e-12);
      EXPECT_GT(h, 0.0);
    }
  }
}

TEST_P(MetricSweepTest, EarlyBreakInvariantAcrossShapes) {
  const auto [frames, atoms] = GetParam();
  traj::ProteinTrajectoryParams p;
  p.frames = frames;
  p.atoms = atoms;
  p.seed = frames * 100 + atoms;
  const auto a = traj::make_protein_trajectory(p);
  p.seed += 1;
  const auto b = traj::make_protein_trajectory(p);
  EXPECT_DOUBLE_EQ(hausdorff_naive(a, b), hausdorff_early_break(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MetricSweepTest,
    ::testing::Values(MetricSweepCase{1, 16}, MetricSweepCase{2, 16},
                      MetricSweepCase{8, 4}, MetricSweepCase{16, 32},
                      MetricSweepCase{31, 7}),
    [](const auto& param_info) {
      // Two-step concatenation avoids GCC 12's -Wrestrict false
      // positive on `"literal" + std::to_string(...)`.
      std::string name = "f";
      name += std::to_string(param_info.param.frames);
      name += "_a";
      name += std::to_string(param_info.param.atoms);
      return name;
    });

// ---- Partitioning invariants across task-count sweeps ----

class TaskCountSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TaskCountSweepTest, BlocksCoverUpperTriangleExactlyOnce) {
  const std::size_t target = GetParam();
  const std::size_t n = 1000;
  const auto blocks = make_2d_blocks(n, target);
  // Every unordered atom pair (i < j) must fall in exactly one block
  // (counted via per-pair block membership on a sample).
  for (std::uint32_t i = 0; i < 50; ++i) {
    for (std::uint32_t j = i + 1; j < 50; ++j) {
      int owners = 0;
      for (const auto& b : blocks) {
        const bool in_rows = i >= b.rows.begin && i < b.rows.end;
        const bool in_cols = j >= b.cols.begin && j < b.cols.end;
        const bool swapped_rows = j >= b.rows.begin && j < b.rows.end;
        const bool swapped_cols = i >= b.cols.begin && i < b.cols.end;
        owners += (in_rows && in_cols) || (swapped_rows && swapped_cols);
      }
      EXPECT_EQ(owners, 1) << "pair " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, TaskCountSweepTest,
                         ::testing::Values(1, 3, 10, 64, 1024));

}  // namespace
}  // namespace mdtask::analysis
