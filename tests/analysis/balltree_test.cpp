#include "mdtask/analysis/balltree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "mdtask/common/rng.h"
#include "mdtask/traj/generators.h"

namespace mdtask::analysis {
namespace {

using traj::Vec3;

std::vector<Vec3> random_points(std::size_t n, std::uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Vec3> out(n);
  for (auto& p : out) {
    p = {static_cast<float>(rng.uniform(0, 20)),
         static_cast<float>(rng.uniform(0, 20)),
         static_cast<float>(rng.uniform(0, 20))};
  }
  return out;
}

std::vector<std::uint32_t> brute_force(const std::vector<Vec3>& pts, Vec3 q,
                                       double r) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    if (traj::dist2(pts[i], q) <= r * r) out.push_back(i);
  }
  return out;
}

class BallTreeParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BallTreeParamTest, MatchesBruteForceAcrossLeafSizes) {
  const auto pts = random_points(500, 42);
  const BallTree tree(pts, GetParam());
  Xoshiro256StarStar rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec3 q{static_cast<float>(rng.uniform(-2, 22)),
                 static_cast<float>(rng.uniform(-2, 22)),
                 static_cast<float>(rng.uniform(-2, 22))};
    const double r = rng.uniform(0.1, 6.0);
    auto got = tree.query_radius(q, r);
    auto want = brute_force(pts, q, r);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "leaf=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, BallTreeParamTest,
                         ::testing::Values(1, 2, 8, 32, 128, 1000));

TEST(BallTreeTest, EmptyTree) {
  const std::vector<Vec3> none;
  const BallTree tree(none);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.query_radius({0, 0, 0}, 100.0).empty());
}

TEST(BallTreeTest, SinglePoint) {
  const std::vector<Vec3> one = {{1, 1, 1}};
  const BallTree tree(one);
  EXPECT_EQ(tree.query_radius({1, 1, 1}, 0.0).size(), 1u);
  EXPECT_TRUE(tree.query_radius({5, 5, 5}, 1.0).empty());
}

TEST(BallTreeTest, DuplicatePointsAllReported) {
  const std::vector<Vec3> pts(10, Vec3{2, 2, 2});
  const BallTree tree(pts, 2);
  EXPECT_EQ(tree.query_radius({2, 2, 2}, 0.5).size(), 10u);
}

TEST(BallTreeTest, RadiusIsInclusive) {
  const std::vector<Vec3> pts = {{0, 0, 0}, {3, 0, 0}};
  const BallTree tree(pts);
  EXPECT_EQ(tree.query_radius({0, 0, 0}, 3.0).size(), 2u);
}

TEST(BallTreeTest, ZeroRadiusFindsExactMatchesOnly) {
  const auto pts = random_points(100, 9);
  const BallTree tree(pts, 4);
  const auto hits = tree.query_radius(pts[17], 0.0);
  ASSERT_GE(hits.size(), 1u);
  for (auto h : hits) EXPECT_EQ(pts[h], pts[17]);
}

TEST(BallTreeTest, NodeCountGrowsWithSmallerLeaves) {
  const auto pts = random_points(512, 11);
  const BallTree coarse(pts, 256);
  const BallTree fine(pts, 4);
  EXPECT_GT(fine.node_count(), coarse.node_count());
}

TEST(BallTreeTest, BilayerNeighboursMatchBruteForce) {
  traj::BilayerParams p;
  p.atoms = 800;
  const auto b = traj::make_bilayer(p);
  const BallTree tree(b.positions, 16);
  const double cutoff = traj::default_cutoff(p);
  for (std::uint32_t i = 0; i < 20; ++i) {
    auto got = tree.query_radius(b.positions[i], cutoff);
    auto want = brute_force(b.positions, b.positions[i], cutoff);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

}  // namespace
}  // namespace mdtask::analysis
