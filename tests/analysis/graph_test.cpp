#include "mdtask/analysis/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "mdtask/common/rng.h"

namespace mdtask::analysis {
namespace {

std::vector<Edge> random_edges(std::size_t n_vertices, std::size_t n_edges,
                               std::uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Edge> edges;
  edges.reserve(n_edges);
  while (edges.size() < n_edges) {
    auto a = static_cast<std::uint32_t>(rng.bounded(n_vertices));
    auto b = static_cast<std::uint32_t>(rng.bounded(n_vertices));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    edges.push_back({a, b});
  }
  return edges;
}

TEST(UnionFindTest, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
}

TEST(UnionFindTest, UniteMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already together
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.set_count(), 2u);
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_EQ(uf.set_count(), 1u);
}

TEST(ConnectedComponentsTest, NoEdgesAllSingletons) {
  const auto labels = connected_components_union_find(4, {});
  EXPECT_EQ(component_count(labels), 4u);
  for (std::uint32_t v = 0; v < 4; ++v) EXPECT_EQ(labels[v], v);
}

TEST(ConnectedComponentsTest, ChainIsOneComponent) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}};
  const auto labels = connected_components_union_find(4, edges);
  EXPECT_EQ(component_count(labels), 1u);
  for (auto l : labels) EXPECT_EQ(l, 0u);
}

TEST(ConnectedComponentsTest, TwoComponentsCanonicalLabels) {
  const std::vector<Edge> edges = {{0, 2}, {1, 3}};
  const auto labels = connected_components_union_find(4, edges);
  EXPECT_EQ(component_count(labels), 2u);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[3], 1u);
}

TEST(ConnectedComponentsTest, UnionFindEqualsBfsOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto edges = random_edges(200, 150, seed);
    const auto a = connected_components_union_find(200, edges);
    const auto b = connected_components_bfs(200, edges);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST(PartialComponentsTest, SummaryCoversTouchedVerticesOnly) {
  const std::vector<Edge> edges = {{5, 9}, {9, 12}};
  const auto part = partial_components(edges);
  ASSERT_EQ(part.vertex_root.size(), 3u);
  for (const VertexRoot& vr : part.vertex_root) EXPECT_EQ(vr.root, 5u);
}

TEST(PartialComponentsTest, MergeEqualsGlobalComputation) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto edges = random_edges(300, 250, seed);
    const auto want = connected_components_union_find(300, edges);

    // Split edges into 4 arbitrary partitions (as block map tasks would).
    std::vector<std::vector<Edge>> splits(4);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      splits[i % 4].push_back(edges[i]);
    }
    std::vector<PartialComponents> parts;
    for (const auto& split : splits) {
      parts.push_back(partial_components(split));
    }
    const auto got = merge_partial_components(300, parts);
    EXPECT_EQ(got, want) << "seed " << seed;
  }
}

TEST(PartialComponentsTest, ShuffleVolumeSmallerThanEdges) {
  // The point of approach 3 (Table 2): partial components shuffle O(n)
  // instead of O(E). With a dense block, the summary must be smaller.
  const auto edges = random_edges(100, 2000, 3);
  const auto part = partial_components(edges);
  EXPECT_LT(part.byte_size(), edges.size() * sizeof(Edge));
}

TEST(CanonicalizeTest, MapsLabelsToMinVertex) {
  ComponentLabels labels = {7, 7, 9, 9, 7};
  canonicalize_labels(labels);
  EXPECT_EQ(labels, (ComponentLabels{0, 0, 2, 2, 0}));
}

TEST(ComponentCountTest, CountsDistinct) {
  EXPECT_EQ(component_count({0, 0, 2, 2, 4}), 3u);
  EXPECT_EQ(component_count({}), 0u);
}

TEST(ConnectedComponentsTest, SelfContainedDenseBlockMergesToOne) {
  // Complete graph on 10 vertices split across 3 partials still one comp.
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < 10; ++i) {
    for (std::uint32_t j = i + 1; j < 10; ++j) edges.push_back({i, j});
  }
  std::vector<PartialComponents> parts;
  for (std::size_t k = 0; k < 3; ++k) {
    std::vector<Edge> slice;
    for (std::size_t i = k; i < edges.size(); i += 3) {
      slice.push_back(edges[i]);
    }
    parts.push_back(partial_components(slice));
  }
  const auto labels = merge_partial_components(10, parts);
  EXPECT_EQ(component_count(labels), 1u);
}

TEST(PartialMergeTest, PairwiseTreeMergeEqualsFlatMerge) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto edges = random_edges(250, 300, seed);
    std::vector<PartialComponents> parts;
    for (std::size_t k = 0; k < 5; ++k) {
      std::vector<Edge> slice;
      for (std::size_t i = k; i < edges.size(); i += 5) {
        slice.push_back(edges[i]);
      }
      parts.push_back(partial_components(slice));
    }
    // Tree merge.
    while (parts.size() > 1) {
      std::vector<PartialComponents> next;
      for (std::size_t i = 0; i + 1 < parts.size(); i += 2) {
        next.push_back(merge_partials_pairwise(parts[i], parts[i + 1]));
      }
      if (parts.size() % 2 == 1) next.push_back(parts.back());
      parts = std::move(next);
    }
    const auto tree = labels_from_partial(250, parts.front());
    const auto flat = connected_components_union_find(250, edges);
    EXPECT_EQ(tree, flat) << "seed " << seed;
  }
}

TEST(PartialMergeTest, MergeWithEmptyIsIdentity) {
  const std::vector<Edge> edges = {{1, 2}, {2, 3}};
  const auto part = partial_components(edges);
  const auto merged = merge_partials_pairwise(part, PartialComponents{});
  EXPECT_EQ(merged.vertex_root, part.vertex_root);
}

TEST(PartialMergeTest, LabelsFromEmptyPartialAllSingletons) {
  const auto labels = labels_from_partial(5, PartialComponents{});
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_EQ(labels[v], v);
}

}  // namespace
}  // namespace mdtask::analysis
