#include "mdtask/analysis/hausdorff.h"

#include <gtest/gtest.h>

#include "mdtask/analysis/rmsd.h"
#include "mdtask/traj/generators.h"

namespace mdtask::analysis {
namespace {

traj::Trajectory make_traj(std::uint64_t seed, std::size_t frames = 12,
                           std::size_t atoms = 8) {
  traj::ProteinTrajectoryParams p;
  p.atoms = atoms;
  p.frames = frames;
  p.seed = seed;
  return traj::make_protein_trajectory(p);
}

TEST(HausdorffTest, SelfDistanceIsZero) {
  const auto t = make_traj(1);
  EXPECT_DOUBLE_EQ(hausdorff_naive(t, t), 0.0);
  EXPECT_DOUBLE_EQ(hausdorff_early_break(t, t), 0.0);
}

TEST(HausdorffTest, Symmetric) {
  const auto a = make_traj(1), b = make_traj(2);
  EXPECT_DOUBLE_EQ(hausdorff_naive(a, b), hausdorff_naive(b, a));
  EXPECT_DOUBLE_EQ(hausdorff_early_break(a, b),
                   hausdorff_early_break(b, a));
}

TEST(HausdorffTest, NonNegativeAndPositiveForDistinct) {
  const auto a = make_traj(1), b = make_traj(2);
  EXPECT_GT(hausdorff_naive(a, b), 0.0);
}

TEST(HausdorffTest, EarlyBreakEqualsNaive) {
  for (std::uint64_t s = 0; s < 8; ++s) {
    const auto a = make_traj(s), b = make_traj(s + 100);
    EXPECT_DOUBLE_EQ(hausdorff_naive(a, b), hausdorff_early_break(a, b))
        << "seed " << s;
  }
}

TEST(HausdorffTest, EarlyBreakDoesFewerEvals) {
  const auto a = make_traj(3, 40), b = make_traj(4, 40);
  const auto naive = hausdorff_naive_profiled(a, b);
  const auto early = hausdorff_early_break_profiled(a, b);
  EXPECT_DOUBLE_EQ(naive.distance, early.distance);
  EXPECT_EQ(naive.metric_evals, 2u * 40u * 40u);
  EXPECT_LT(early.metric_evals, naive.metric_evals);
}

TEST(HausdorffTest, TriangleInequalityOverEnsemble) {
  // Hausdorff distance with a metric frame distance is itself a metric on
  // compact sets; spot check the triangle inequality.
  const auto a = make_traj(10), b = make_traj(11), c = make_traj(12);
  const double ab = hausdorff_naive(a, b);
  const double bc = hausdorff_naive(b, c);
  const double ac = hausdorff_naive(a, c);
  EXPECT_LE(ac, ab + bc + 1e-9);
}

TEST(HausdorffTest, SubsetYieldsSmallerOrEqualDirectedDistance) {
  // Adding frames to T2 can only shrink min distances from T1 frames, so
  // Hausdorff(T1, T2-extended-by-T1-frames) <= Hausdorff(T1, T2).
  const auto a = make_traj(20, 10), b = make_traj(21, 10);
  traj::Trajectory extended(b.frames() + a.frames(), b.atoms());
  for (std::size_t f = 0; f < b.frames(); ++f) {
    auto dst = extended.frame(f);
    auto src = b.frame(f);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  for (std::size_t f = 0; f < a.frames(); ++f) {
    auto dst = extended.frame(b.frames() + f);
    auto src = a.frame(f);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  // Every a-frame is now in extended, so directed distance a->ext is 0 and
  // the result only reflects ext->a; still <= original by the same logic.
  EXPECT_LE(hausdorff_naive(a, extended), hausdorff_naive(a, b) + 1e-12);
}

TEST(HausdorffTest, CustomMetricIsHonoured) {
  const auto a = make_traj(30), b = make_traj(31);
  const FrameMetric twice = [](std::span<const traj::Vec3> x,
                               std::span<const traj::Vec3> y) {
    return 2.0 * frame_rmsd(x, y);
  };
  EXPECT_NEAR(hausdorff_naive(a, b, twice), 2.0 * hausdorff_naive(a, b),
              1e-9);
}

TEST(HausdorffTest, SingleFrameTrajectoriesReduceToFrameMetric) {
  const auto a = make_traj(40, 1), b = make_traj(41, 1);
  EXPECT_DOUBLE_EQ(hausdorff_naive(a, b),
                   frame_rmsd(a.frame(0), b.frame(0)));
}

}  // namespace
}  // namespace mdtask::analysis
