#include "mdtask/analysis/psa.h"

#include <gtest/gtest.h>

#include "mdtask/analysis/hausdorff.h"
#include "mdtask/traj/generators.h"

namespace mdtask::analysis {
namespace {

traj::Ensemble small_ensemble(std::size_t count) {
  traj::ProteinTrajectoryParams p;
  p.atoms = 6;
  p.frames = 8;
  return traj::make_protein_ensemble(count, p);
}

TEST(PsaBlocksTest, ExactDivision) {
  auto blocks = make_psa_blocks(8, 2);
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(blocks.value().size(), 16u);  // (8/2)^2
  std::size_t pairs = 0;
  for (const auto& b : blocks.value()) pairs += b.pair_count();
  EXPECT_EQ(pairs, 64u);
}

TEST(PsaBlocksTest, RaggedDivisionCoversAllPairs) {
  auto blocks = make_psa_blocks(7, 3);  // 3 chunk rows: 3,3,1
  ASSERT_TRUE(blocks.ok());
  std::size_t pairs = 0;
  for (const auto& b : blocks.value()) pairs += b.pair_count();
  EXPECT_EQ(pairs, 49u);
}

TEST(PsaBlocksTest, ZeroBlockSizeIsError) {
  EXPECT_FALSE(make_psa_blocks(4, 0).ok());
}

TEST(PsaBlocksTest, BlockLargerThanNIsOneBlock) {
  auto blocks = make_psa_blocks(3, 100);
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(blocks.value().size(), 1u);
  EXPECT_EQ(blocks.value()[0].pair_count(), 9u);
}

TEST(DistanceMatrixTest, SetAndGet) {
  DistanceMatrix m(3);
  m.set(1, 2, 4.5);
  EXPECT_EQ(m.at(1, 2), 4.5);
  EXPECT_EQ(m.at(2, 1), 0.0);
}

TEST(DistanceMatrixTest, MaxAbsDiff) {
  DistanceMatrix a(2), b(2);
  a.set(0, 1, 1.0);
  b.set(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 2.5);
  DistanceMatrix c(3);
  EXPECT_TRUE(std::isinf(a.max_abs_diff(c)));
}

TEST(PsaTest, ReferenceMatrixProperties) {
  const auto ensemble = small_ensemble(5);
  const DistanceMatrix d = psa_reference(ensemble);
  ASSERT_EQ(d.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(d.at(i, i), 0.0);
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(d.at(i, j), d.at(j, i));
      if (i != j) {
        EXPECT_GT(d.at(i, j), 0.0);
      }
    }
  }
}

TEST(PsaTest, BlockedComputationMatchesReference) {
  const auto ensemble = small_ensemble(6);
  const DistanceMatrix ref = psa_reference(ensemble);
  for (std::size_t n1 : {1u, 2u, 3u, 4u, 6u}) {
    DistanceMatrix out(ensemble.size());
    auto blocks = make_psa_blocks(ensemble.size(), n1);
    ASSERT_TRUE(blocks.ok());
    for (const auto& b : blocks.value()) {
      compute_psa_block(ensemble, b, HausdorffKernel::kNaive, out);
    }
    EXPECT_EQ(ref.max_abs_diff(out), 0.0) << "n1=" << n1;
  }
}

TEST(PsaTest, EarlyBreakKernelMatchesNaive) {
  const auto ensemble = small_ensemble(4);
  const DistanceMatrix a = psa_reference(ensemble, HausdorffKernel::kNaive);
  const DistanceMatrix b =
      psa_reference(ensemble, HausdorffKernel::kEarlyBreak);
  EXPECT_EQ(a.max_abs_diff(b), 0.0);
}

TEST(PsaTest, MatrixEntriesMatchDirectHausdorff) {
  const auto ensemble = small_ensemble(3);
  const DistanceMatrix d = psa_reference(ensemble);
  EXPECT_DOUBLE_EQ(d.at(0, 1), hausdorff_naive(ensemble[0], ensemble[1]));
  EXPECT_DOUBLE_EQ(d.at(1, 2), hausdorff_naive(ensemble[1], ensemble[2]));
}

}  // namespace
}  // namespace mdtask::analysis
