#include "mdtask/analysis/observables.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mdtask/common/rng.h"

#include "mdtask/traj/generators.h"

namespace mdtask::analysis {
namespace {

using traj::Vec3;

TEST(CenterTest, GeometryCentroid) {
  const std::vector<Vec3> frame = {{0, 0, 0}, {2, 0, 0}, {1, 3, 0}};
  const Vec3 c = center_of_geometry(frame);
  EXPECT_FLOAT_EQ(c.x, 1.0f);
  EXPECT_FLOAT_EQ(c.y, 1.0f);
  EXPECT_FLOAT_EQ(c.z, 0.0f);
}

TEST(CenterTest, MassWeighting) {
  const std::vector<Vec3> frame = {{0, 0, 0}, {10, 0, 0}};
  const std::vector<float> masses = {3.0f, 1.0f};
  const Vec3 c = center_of_mass(frame, masses);
  EXPECT_FLOAT_EQ(c.x, 2.5f);  // (3*0 + 1*10) / 4
}

TEST(CenterTest, ZeroMassFallsBackToCentroid) {
  const std::vector<Vec3> frame = {{0, 0, 0}, {4, 0, 0}};
  const std::vector<float> masses = {0.0f, 0.0f};
  EXPECT_FLOAT_EQ(center_of_mass(frame, masses).x, 2.0f);
}

TEST(RadiusOfGyrationTest, KnownSquare) {
  // Four corners of a unit square about its center: every atom at
  // distance sqrt(0.5) -> Rg = sqrt(0.5).
  const std::vector<Vec3> frame = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0},
                                   {1, 1, 0}};
  EXPECT_NEAR(radius_of_gyration(frame), std::sqrt(0.5), 1e-7);
}

TEST(RadiusOfGyrationTest, TranslationInvariant) {
  traj::ProteinTrajectoryParams p;
  p.atoms = 40;
  p.frames = 1;
  const auto t = traj::make_protein_trajectory(p);
  std::vector<Vec3> shifted(t.frame(0).begin(), t.frame(0).end());
  for (auto& a : shifted) a += {100.0f, -50.0f, 25.0f};
  EXPECT_NEAR(radius_of_gyration(t.frame(0)), radius_of_gyration(shifted),
              1e-4);
}

TEST(RadiusOfGyrationTest, EmptyAndSingleton) {
  EXPECT_EQ(radius_of_gyration({}), 0.0);
  const std::vector<Vec3> one = {{5, 5, 5}};
  EXPECT_EQ(radius_of_gyration(one), 0.0);
}

TEST(BoundingRadiusTest, AtLeastRadiusOfGyration) {
  traj::ProteinTrajectoryParams p;
  p.atoms = 30;
  p.frames = 1;
  const auto t = traj::make_protein_trajectory(p);
  EXPECT_GE(bounding_radius(t.frame(0)), radius_of_gyration(t.frame(0)));
}

TEST(RmsfTest, StaticTrajectoryHasZeroFluctuation) {
  traj::Trajectory t(5, 3);
  for (std::size_t f = 0; f < 5; ++f) {
    t.frame(f)[0] = {1, 2, 3};
    t.frame(f)[1] = {4, 5, 6};
    t.frame(f)[2] = {7, 8, 9};
  }
  const auto fluctuations = rmsf(t);
  ASSERT_EQ(fluctuations.size(), 3u);
  for (double v : fluctuations) EXPECT_NEAR(v, 0.0, 1e-6);
}

TEST(RmsfTest, OscillatingAtomHasKnownRmsf) {
  // Atom 0 alternates between x=-1 and x=+1: mean 0, RMSF 1.
  traj::Trajectory t(4, 2);
  for (std::size_t f = 0; f < 4; ++f) {
    t.frame(f)[0] = {f % 2 == 0 ? -1.0f : 1.0f, 0, 0};
    t.frame(f)[1] = {0, 0, 0};
  }
  const auto fluctuations = rmsf(t);
  EXPECT_NEAR(fluctuations[0], 1.0, 1e-9);
  EXPECT_NEAR(fluctuations[1], 0.0, 1e-9);
}

TEST(RmsfTest, NoisierAtomsFluctuateMore) {
  // Build a trajectory where atom 1 gets 5x the noise of atom 0.
  Xoshiro256StarStar rng(3);
  traj::Trajectory t(200, 2);
  for (std::size_t f = 0; f < 200; ++f) {
    t.frame(f)[0] = {static_cast<float>(rng.normal(0.0, 0.1)), 0, 0};
    t.frame(f)[1] = {static_cast<float>(rng.normal(0.0, 0.5)), 0, 0};
  }
  const auto fluctuations = rmsf(t);
  EXPECT_GT(fluctuations[1], 3.0 * fluctuations[0]);
}

TEST(RmsfTest, EmptyTrajectory) {
  EXPECT_TRUE(rmsf(traj::Trajectory()).empty());
}

}  // namespace
}  // namespace mdtask::analysis
