#include "mdtask/analysis/rmsd_series.h"

#include <gtest/gtest.h>

#include "mdtask/analysis/rmsd.h"
#include "mdtask/traj/generators.h"

namespace mdtask::analysis {
namespace {

traj::Trajectory make_traj(std::size_t frames = 12, std::size_t atoms = 16) {
  traj::ProteinTrajectoryParams p;
  p.frames = frames;
  p.atoms = atoms;
  return traj::make_protein_trajectory(p);
}

TEST(RmsdSeriesTest, ReferenceEntryIsZero) {
  const auto t = make_traj();
  const auto series = rmsd_series(t);
  ASSERT_EQ(series.size(), t.frames());
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  for (std::size_t f = 1; f < series.size(); ++f) {
    EXPECT_GT(series[f], 0.0);
  }
}

TEST(RmsdSeriesTest, MatchesDirectFrameRmsd) {
  const auto t = make_traj();
  const auto series = rmsd_series(t);
  for (std::size_t f = 0; f < t.frames(); ++f) {
    EXPECT_DOUBLE_EQ(series[f], frame_rmsd(t.frame(f), t.frame(0)));
  }
}

TEST(RmsdSeriesTest, CustomReferenceFrame) {
  const auto t = make_traj();
  RmsdSeriesOptions options;
  options.reference_frame = 5;
  const auto series = rmsd_series(t, options);
  EXPECT_DOUBLE_EQ(series[5], 0.0);
  EXPECT_GT(series[0], 0.0);
}

TEST(RmsdSeriesTest, SuperposedNeverExceedsPlain) {
  const auto t = make_traj();
  RmsdSeriesOptions plain, fitted;
  fitted.superpose = true;
  const auto a = rmsd_series(t, plain);
  const auto b = rmsd_series(t, fitted);
  for (std::size_t f = 0; f < t.frames(); ++f) {
    // 1e-4 slack: float32 coordinates + the iterative Kabsch solve.
    EXPECT_LE(b[f], a[f] + 1e-4) << "frame " << f;
  }
}

TEST(RmsdSeriesTest, SeriesGrowsWithDrift) {
  // Collective drift means later frames are farther from frame 0 on
  // average; check a loose monotone trend (first vs last quarter).
  const auto t = make_traj(40);
  const auto series = rmsd_series(t);
  double early = 0.0, late = 0.0;
  for (std::size_t f = 1; f <= 10; ++f) early += series[f];
  for (std::size_t f = 30; f < 40; ++f) late += series[f];
  EXPECT_GT(late, early);
}

TEST(RmsdSeriesBlockTest, BlocksComposeTheFullSeries) {
  const auto t = make_traj(17);
  const auto want = rmsd_series(t);
  std::vector<double> got(t.frames(), -1.0);
  for (std::size_t begin = 0; begin < t.frames(); begin += 5) {
    const std::size_t end = std::min(begin + 5, t.frames());
    rmsd_series_block(t, t.frame(0), begin, end, false, got);
  }
  EXPECT_EQ(got, want);
}

TEST(RmsdSeriesTest, EmptyTrajectory) {
  const traj::Trajectory t;
  EXPECT_TRUE(rmsd_series(t).empty());
}

}  // namespace
}  // namespace mdtask::analysis
