#include "mdtask/analysis/frechet.h"

#include <gtest/gtest.h>

#include "mdtask/analysis/hausdorff.h"
#include "mdtask/analysis/rmsd.h"
#include "mdtask/traj/generators.h"

namespace mdtask::analysis {
namespace {

traj::Trajectory make_traj(std::uint64_t seed, std::size_t frames = 12,
                           std::size_t atoms = 8) {
  traj::ProteinTrajectoryParams p;
  p.atoms = atoms;
  p.frames = frames;
  p.seed = seed;
  return traj::make_protein_trajectory(p);
}

/// A single-atom trajectory walking through the given x positions.
traj::Trajectory line_traj(const std::vector<float>& xs) {
  traj::Trajectory t(xs.size(), 1);
  for (std::size_t f = 0; f < xs.size(); ++f) t.frame(f)[0] = {xs[f], 0, 0};
  return t;
}

TEST(FrechetTest, SelfDistanceIsZero) {
  const auto t = make_traj(1);
  EXPECT_DOUBLE_EQ(frechet_distance(t, t), 0.0);
}

TEST(FrechetTest, Symmetric) {
  const auto a = make_traj(1), b = make_traj(2);
  EXPECT_DOUBLE_EQ(frechet_distance(a, b), frechet_distance(b, a));
}

TEST(FrechetTest, AtLeastHausdorff) {
  // The Fréchet coupling is a constrained matching, so its distance can
  // never be below the (unconstrained) Hausdorff distance.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto a = make_traj(seed), b = make_traj(seed + 50);
    EXPECT_GE(frechet_distance(a, b), hausdorff_naive(a, b) - 1e-12)
        << "seed " << seed;
  }
}

TEST(FrechetTest, OrderingMattersReversedPath) {
  // Same point sets walked in opposite directions: Hausdorff is 0, but
  // the Fréchet coupling must start at (a_first, b_first) = (0, 4), so
  // the distance is the full path length.
  const auto a = line_traj({0, 1, 2, 3, 4});
  const auto b = line_traj({4, 3, 2, 1, 0});
  EXPECT_DOUBLE_EQ(hausdorff_naive(a, b), 0.0);
  EXPECT_DOUBLE_EQ(frechet_distance(a, b), 4.0);
}

TEST(FrechetTest, KnownBacktrackCase) {
  // b overshoots to 4 and returns: the leash cannot be shorter than 2
  // (when b sits at 4, a is at best at 2 to still reach b's return).
  const auto a = line_traj({0, 1, 2, 3, 4});
  const auto b = line_traj({0, 4, 0, 4});
  EXPECT_DOUBLE_EQ(frechet_distance(a, b), 2.0);
}

TEST(FrechetTest, SingleFrameReducesToFrameMetric) {
  const auto a = make_traj(10, 1), b = make_traj(11, 1);
  EXPECT_DOUBLE_EQ(frechet_distance(a, b),
                   frame_rmsd(a.frame(0), b.frame(0)));
}

TEST(FrechetTest, TriangleInequality) {
  const auto a = make_traj(20), b = make_traj(21), c = make_traj(22);
  EXPECT_LE(frechet_distance(a, c),
            frechet_distance(a, b) + frechet_distance(b, c) + 1e-9);
}

TEST(FrechetTest, CustomMetricHonoured) {
  const auto a = make_traj(30), b = make_traj(31);
  const FrameMetric doubled = [](std::span<const traj::Vec3> x,
                                 std::span<const traj::Vec3> y) {
    return 2.0 * frame_rmsd(x, y);
  };
  EXPECT_NEAR(frechet_distance(a, b, doubled),
              2.0 * frechet_distance(a, b), 1e-9);
}

TEST(FrechetTest, UnequalFrameCounts) {
  const auto a = make_traj(40, 5), b = make_traj(41, 13);
  EXPECT_GT(frechet_distance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(frechet_distance(a, b), frechet_distance(b, a));
}

TEST(FrechetTest, EmptyTrajectoryIsZeroNotACrash) {
  const traj::Trajectory empty;
  const auto t = make_traj(1);
  EXPECT_DOUBLE_EQ(frechet_distance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(frechet_distance(empty, t), 0.0);
}

}  // namespace
}  // namespace mdtask::analysis
