// Shape tests: the virtual-time replays must reproduce the paper's
// qualitative findings (who wins, where the crossovers fall) — the
// contract stated in DESIGN.md's experiment index.
#include "mdtask/perf/workloads.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mdtask::perf {
namespace {

/// Synthetic kernel costs standing in for the paper's Python pipelines
/// (python_pipeline_costs() magnitudes) so shape tests don't depend on
/// host calibration timing. The tree constants put the tree-vs-cdist
/// crossover between the 262k and 524k datasets as in Sec. 4.3.4.
KernelCosts test_costs() {
  KernelCosts c;
  c.hausdorff_unit = 5e-8;
  c.cdist_element = 1.6e-8;
  c.tree_build_point = 4.5e-5;
  c.tree_query_point_log = 6.4e-6;
  c.cc_edge = 6e-7;
  c.merge_vertex = 9e-7;
  c.rmsd2d_atom_naive = 6e-9;
  c.rmsd2d_atom_optimized = 1.2e-9;
  return c;
}

/// Paper-style Wrangler allocation: 32 cores per node (figure labels
/// "32/1 64/2 128/4 256/8" and "16/1 64/2 256/8").
sim::ClusterSpec wrangler_cores(std::size_t cores) {
  return sim::ClusterSpec{sim::wrangler(), std::max<std::size_t>(1, cores / 32),
                          cores};
}

// ---- Figs. 2-3 ----

TEST(ThroughputShapeTest, DaskBeatsSparkBeatsRp) {
  const auto cluster = wrangler_cores(24);
  const std::size_t n = 8192;
  const auto dask = simulate_throughput(dask_model(), cluster, n);
  const auto spark = simulate_throughput(spark_model(), cluster, n);
  const auto rp = simulate_throughput(rp_model(), cluster, n);
  EXPECT_GT(dask.tasks_per_s, spark.tasks_per_s);
  EXPECT_GT(spark.tasks_per_s, rp.tasks_per_s);
}

TEST(ThroughputShapeTest, RpPlateausBelow100TasksPerSecond) {
  for (std::size_t nodes : {1u, 2u, 4u}) {
    const auto rp = simulate_throughput(
        rp_model(), sim::ClusterSpec{sim::wrangler(), nodes}, 10000);
    EXPECT_LT(rp.tasks_per_s, 100.0) << nodes << " nodes (Fig. 3)";
  }
}

TEST(ThroughputShapeTest, RpFailsAt32kTasks) {
  const auto rp =
      simulate_throughput(rp_model(), wrangler_cores(24), 32768);
  EXPECT_FALSE(rp.feasible);
  const auto rp16k =
      simulate_throughput(rp_model(), wrangler_cores(24), 16384);
  EXPECT_TRUE(rp16k.feasible);
}

TEST(ThroughputShapeTest, DaskScalesNearLinearlyWithNodes) {
  const auto one = simulate_throughput(
      dask_model(), sim::ClusterSpec{sim::wrangler(), 1}, 100000);
  const auto four = simulate_throughput(
      dask_model(), sim::ClusterSpec{sim::wrangler(), 4}, 100000);
  EXPECT_GT(four.tasks_per_s, 3.0 * one.tasks_per_s);
}

TEST(ThroughputShapeTest, SparkOrderOfMagnitudeBelowDaskMultiNode) {
  const sim::ClusterSpec cluster{sim::wrangler(), 4};
  const auto dask = simulate_throughput(dask_model(), cluster, 100000);
  const auto spark = simulate_throughput(spark_model(), cluster, 100000);
  EXPECT_GT(dask.tasks_per_s, 5.0 * spark.tasks_per_s);
}

TEST(ThroughputShapeTest, SmallTaskCountsDominatedByStartup) {
  const auto cluster = wrangler_cores(24);
  const auto spark16 = simulate_throughput(spark_model(), cluster, 16);
  EXPECT_LT(spark16.makespan_s, 2.0 * spark_model().startup_s);
}

// ---- Figs. 4-5 ----

TEST(PsaShapeTest, AllFrameworksScaleSixFoldFrom16To256Cores) {
  const PsaWorkload workload{128, 3341, 102};
  const auto costs = test_costs();
  for (const auto& model :
       {mpi_model(), spark_model(), dask_model(), rp_model()}) {
    const auto t16 =
        simulate_psa(model, wrangler_cores(16), workload, costs);
    const auto t256 =
        simulate_psa(model, wrangler_cores(256), workload, costs);
    const double speedup = t16.makespan_s / t256.makespan_s;
    EXPECT_GT(speedup, 3.0) << model.name << " (paper: ~6x)";
    EXPECT_LT(speedup, 16.0) << model.name;
  }
}

TEST(PsaShapeTest, MpiFastestButFrameworksComparable) {
  const PsaWorkload workload{128, 13364, 102};
  const auto costs = test_costs();
  const auto cluster = wrangler_cores(64);
  const auto mpi = simulate_psa(mpi_model(), cluster, workload, costs);
  const auto spark = simulate_psa(spark_model(), cluster, workload, costs);
  const auto dask = simulate_psa(dask_model(), cluster, workload, costs);
  EXPECT_LE(mpi.makespan_s, spark.makespan_s);
  EXPECT_LE(mpi.makespan_s, dask.makespan_s);
  // "similar performance" (Sec. 4.2): within ~2x of each other.
  EXPECT_LT(spark.makespan_s, 2.0 * mpi.makespan_s);
  EXPECT_LT(dask.makespan_s, 2.0 * mpi.makespan_s);
}

TEST(PsaShapeTest, RuntimeScalesWithTrajectorySizeAndCount) {
  const auto costs = test_costs();
  const auto cluster = wrangler_cores(64);
  const auto small = simulate_psa(mpi_model(), cluster,
                                  {128, 3341, 102}, costs);
  const auto large = simulate_psa(mpi_model(), cluster,
                                  {128, 13364, 102}, costs);
  const auto more = simulate_psa(mpi_model(), cluster,
                                 {256, 3341, 102}, costs);
  EXPECT_GT(large.makespan_s, 2.0 * small.makespan_s);  // 4x atoms
  EXPECT_GT(more.makespan_s, 2.0 * small.makespan_s);   // 4x pairs
}

TEST(PsaShapeTest, CometOutperformsWranglerAtEqualCores) {
  // Fig. 5: same core count, but Wrangler's hyper-threaded cores yield
  // smaller speedup.
  const PsaWorkload workload{128, 13364, 102};
  const auto costs = test_costs();
  // Paper labels: Comet 256/16 (16 cores/node), Wrangler 256/8.
  const auto on_comet = simulate_psa(
      mpi_model(), sim::ClusterSpec{sim::comet(), 16, 256}, workload, costs);
  const auto on_wrangler = simulate_psa(
      mpi_model(), sim::ClusterSpec{sim::wrangler(), 8, 256}, workload,
      costs);
  EXPECT_LT(on_comet.makespan_s, on_wrangler.makespan_s);
}

// ---- Fig. 6 ----

TEST(CpptrajShapeTest, OptimizedBuildBeatsReferenceBuild) {
  const auto costs = test_costs();
  const PsaWorkload workload{128, 3341, 102};
  const auto cluster = sim::cluster_for_cores(sim::comet(), 20);
  const auto gnu =
      simulate_cpptraj(cluster, workload, costs.rmsd2d_atom_naive);
  const auto intel =
      simulate_cpptraj(cluster, workload, costs.rmsd2d_atom_optimized);
  EXPECT_GT(gnu.makespan_s, 2.0 * intel.makespan_s);
}

TEST(CpptrajShapeTest, NearLinearSpeedupTo240Cores) {
  const auto costs = test_costs();
  const PsaWorkload workload{128, 3341, 102};
  const auto t1 = simulate_cpptraj(sim::cluster_for_cores(sim::comet(), 1),
                                   workload, costs.rmsd2d_atom_naive);
  const auto t240 = simulate_cpptraj(
      sim::cluster_for_cores(sim::comet(), 240), workload,
      costs.rmsd2d_atom_naive);
  const double speedup = t1.makespan_s / t240.makespan_s;
  EXPECT_GT(speedup, 50.0);   // paper reaches ~100x
  EXPECT_LT(speedup, 240.0);  // but sub-linear
}

// ---- Figs. 7-9 ----

TEST(LeafletShapeTest, Approach1IsWorst) {
  const auto costs = test_costs();
  const auto cluster = wrangler_cores(128);
  const LfWorkload w{262144, 1750000, 1024};
  for (const auto& model : {spark_model(), dask_model(), mpi_model()}) {
    const auto a1 = simulate_leaflet(model, cluster, 1, w, costs);
    const auto a3 = simulate_leaflet(model, cluster, 3, w, costs);
    ASSERT_TRUE(a1.feasible && a3.feasible) << model.name;
    EXPECT_GT(a1.makespan_s, a3.makespan_s) << model.name;
  }
}

TEST(LeafletShapeTest, Approach3ImprovesOnApproach2ForFrameworks) {
  // Sec. 4.3.3: ~20% runtime improvement for Spark and Dask, not MPI.
  const auto costs = test_costs();
  const auto cluster = wrangler_cores(256);
  const LfWorkload w{524288, 3520000, 1024};
  for (const auto& model : {spark_model(), dask_model()}) {
    const auto a2 = simulate_leaflet(model, cluster, 2, w, costs);
    const auto a3 = simulate_leaflet(model, cluster, 3, w, costs);
    ASSERT_TRUE(a2.feasible && a3.feasible);
    EXPECT_LT(a3.makespan_s, a2.makespan_s) << model.name;
  }
}

TEST(LeafletShapeTest, TreeWinsOnLargeLosesOnSmall) {
  // Sec. 4.3.4: approach 3 faster for 131k/262k, tree faster for large.
  const auto costs = test_costs();
  const auto cluster = wrangler_cores(256);
  const auto small3 = simulate_leaflet(spark_model(), cluster, 3,
                                       {131072, 896000, 1024}, costs);
  const auto small4 = simulate_leaflet(spark_model(), cluster, 4,
                                       {131072, 896000, 1024}, costs);
  EXPECT_LT(small3.makespan_s, small4.makespan_s);
  const auto big3 = simulate_leaflet(spark_model(), cluster, 3,
                                     {4194304, 44600000, 42435}, costs);
  const auto big4 = simulate_leaflet(spark_model(), cluster, 4,
                                     {4194304, 44600000, 1024}, costs);
  ASSERT_TRUE(big4.feasible);
  if (big3.feasible) {
    EXPECT_LT(big4.makespan_s, big3.makespan_s);
  }
}

TEST(LeafletShapeTest, MpiSpeedsUpNearlyLinearlyFrameworksCapNear5) {
  const auto costs = test_costs();
  const LfWorkload w{524288, 3520000, 1024};
  const auto speedup = [&](const FrameworkModel& model) {
    const auto t32 = simulate_leaflet(model, wrangler_cores(32), 3, w,
                                      costs);
    const auto t256 = simulate_leaflet(model, wrangler_cores(256), 3, w,
                                       costs);
    return t32.makespan_s / t256.makespan_s;
  };
  const double mpi = speedup(mpi_model());
  const double spark = speedup(spark_model());
  const double dask = speedup(dask_model());
  EXPECT_GT(mpi, 6.5);    // paper: ~8 (almost linear)
  EXPECT_LT(spark, 6.5);  // paper: <= ~5
  EXPECT_LT(dask, 6.5);
  EXPECT_GT(mpi, spark);
  EXPECT_GT(mpi, dask);
}

TEST(LeafletShapeTest, MemoryWalls) {
  const auto costs = test_costs();
  const auto cluster = wrangler_cores(256);
  // Approach 2 at 4M atoms with 1024 tasks: cdist OOM for every engine.
  for (const auto& model : {spark_model(), dask_model(), mpi_model()}) {
    const auto a2 = simulate_leaflet(model, cluster, 2,
                                     {4194304, 44600000, 1024}, costs);
    EXPECT_FALSE(a2.feasible) << model.name;
  }
  // Approach 3 at 4M with the paper's 42k repartition: Spark and MPI
  // work; Dask hits the worker memory watermark.
  const LfWorkload w4m{4194304, 44600000, 42435};
  EXPECT_TRUE(
      simulate_leaflet(spark_model(), cluster, 3, w4m, costs).feasible);
  EXPECT_TRUE(
      simulate_leaflet(mpi_model(), cluster, 3, w4m, costs).feasible);
  EXPECT_FALSE(
      simulate_leaflet(dask_model(), cluster, 3, w4m, costs).feasible);
  // Approach 1: Dask's broadcast dies at 524k; Spark/MPI survive 524k
  // but nobody survives 4M.
  const LfWorkload w524{524288, 3520000, 1024};
  EXPECT_FALSE(
      simulate_leaflet(dask_model(), cluster, 1, w524, costs).feasible);
  EXPECT_TRUE(
      simulate_leaflet(spark_model(), cluster, 1, w524, costs).feasible);
  EXPECT_TRUE(
      simulate_leaflet(mpi_model(), cluster, 1, w524, costs).feasible);
  EXPECT_FALSE(simulate_leaflet(spark_model(), cluster, 1,
                                {4194304, 44600000, 1024}, costs)
                   .feasible);
}

TEST(LeafletShapeTest, BroadcastShares) {
  // Fig. 8: broadcast is <1-10% of runtime for MPI, 3-15% for Spark,
  // 40-65% of the edge-discovery time for Dask.
  const auto costs = test_costs();
  const auto cluster = wrangler_cores(256);
  const LfWorkload w{262144, 1750000, 1024};
  const auto mpi = simulate_leaflet(mpi_model(), cluster, 1, w, costs);
  const auto spark = simulate_leaflet(spark_model(), cluster, 1, w, costs);
  const auto dask = simulate_leaflet(dask_model(), cluster, 1, w, costs);
  EXPECT_LT(mpi.bcast_s / mpi.makespan_s, 0.10);
  EXPECT_GT(dask.bcast_s, spark.bcast_s);
  EXPECT_GT(dask.bcast_s, 2.0 * mpi.bcast_s);
}

TEST(LeafletShapeTest, MpiBroadcastGrowsLinearlyWithNodes) {
  const auto costs = test_costs();
  const LfWorkload w{131072, 896000, 1024};
  const auto n1 = simulate_leaflet(
      mpi_model(), sim::ClusterSpec{sim::wrangler(), 1}, 1, w, costs);
  const auto n8 = simulate_leaflet(
      mpi_model(), sim::ClusterSpec{sim::wrangler(), 8}, 1, w, costs);
  EXPECT_NEAR(n8.bcast_s / std::max(1e-12, n1.bcast_s), 8.0, 0.5);
  // Spark's broadcast stays ~flat instead (compare 2 -> 8 nodes: a 4x
  // node increase must cost well under 2x).
  const auto s2 = simulate_leaflet(
      spark_model(), sim::ClusterSpec{sim::wrangler(), 2}, 1, w, costs);
  const auto s8 = simulate_leaflet(
      spark_model(), sim::ClusterSpec{sim::wrangler(), 8}, 1, w, costs);
  EXPECT_LT(s8.bcast_s, 2.0 * s2.bcast_s);
}

TEST(LeafletShapeTest, RpOverheadDominatedRegardlessOfSystemSize) {
  // Fig. 9: RP runtimes are similar despite 4x system-size differences.
  const auto costs = test_costs();
  const auto cluster = wrangler_cores(128);
  const auto small = simulate_leaflet(rp_model(), cluster, 2,
                                      {131072, 896000, 1024}, costs);
  const auto large = simulate_leaflet(rp_model(), cluster, 2,
                                      {524288, 3520000, 1024}, costs);
  ASSERT_TRUE(small.feasible && large.feasible);
  EXPECT_LT(large.makespan_s / small.makespan_s, 2.0);
  // And far above the frameworks at the same point.
  const auto spark = simulate_leaflet(spark_model(), cluster, 2,
                                      {131072, 896000, 1024}, costs);
  EXPECT_GT(small.makespan_s, spark.makespan_s);
}

TEST(LeafletShapeTest, Approach3ShufflesLessThanApproach2) {
  const auto costs = test_costs();
  const auto cluster = wrangler_cores(256);
  const LfWorkload w{524288, 3520000, 1024};
  const auto a2 = simulate_leaflet(spark_model(), cluster, 2, w, costs);
  const auto a3 = simulate_leaflet(spark_model(), cluster, 3, w, costs);
  EXPECT_LT(a3.shuffle_s, a2.shuffle_s);  // O(n) vs O(E) (Table 2)
}

// ---- Sec. 6 future-work simulators ----

TEST(SpeculationTest, MitigatesStragglersUnderHeavyTail) {
  const auto cluster = wrangler_cores(64);
  const double plain = simulate_straggler_makespan(
      cluster, 1024, 1.0, 0.05, 10.0, SpeculationPolicy{});
  const double mitigated = simulate_straggler_makespan(
      cluster, 1024, 1.0, 0.05, 10.0,
      SpeculationPolicy{.enabled = true, .threshold_factor = 1.5});
  EXPECT_LT(mitigated, plain);
  // With 5% of tasks 10x longer, speculation should reclaim most of the
  // straggler tail: the speculative copy finishes at 2.5x nominal.
  EXPECT_LT(mitigated, 0.6 * plain);
}

TEST(SpeculationTest, NoOpWithoutStragglers) {
  const auto cluster = wrangler_cores(32);
  const double plain = simulate_straggler_makespan(
      cluster, 256, 1.0, 0.0, 10.0, SpeculationPolicy{});
  const double speculated = simulate_straggler_makespan(
      cluster, 256, 1.0, 0.0, 10.0, SpeculationPolicy{.enabled = true});
  EXPECT_DOUBLE_EQ(plain, speculated);
}

TEST(SpeculationTest, EmptyWaveHasZeroMakespan) {
  const auto cluster = wrangler_cores(16);
  EXPECT_DOUBLE_EQ(simulate_straggler_makespan(cluster, 0, 1.0, 0.05, 10.0,
                                               SpeculationPolicy{}),
                   0.0);
  EXPECT_DOUBLE_EQ(
      simulate_straggler_makespan(cluster, 0, 1.0, 0.05, 10.0,
                                  SpeculationPolicy{.enabled = true}),
      0.0);
}

TEST(SpeculationTest, EveryTaskAStragglerStillGainsNothingOrHelps) {
  // With fraction 1.0 there is no fast cohort to compare against: a
  // backup copy launched at threshold x nominal still beats riding out
  // the full 10x tail, so speculation may help but must never hurt.
  const auto cluster = wrangler_cores(64);
  const double plain = simulate_straggler_makespan(
      cluster, 256, 1.0, 1.0, 10.0, SpeculationPolicy{});
  const double speculative = simulate_straggler_makespan(
      cluster, 256, 1.0, 1.0, 10.0,
      SpeculationPolicy{.enabled = true, .threshold_factor = 1.5});
  EXPECT_GT(plain, 0.0);
  EXPECT_GT(speculative, 0.0);
  EXPECT_LE(speculative, plain);
}

TEST(SpeculationTest, DisabledPolicyMatchesTheDefault) {
  const auto cluster = wrangler_cores(64);
  const double implicit = simulate_straggler_makespan(
      cluster, 512, 1.0, 0.05, 10.0, SpeculationPolicy{});
  const double expl = simulate_straggler_makespan(
      cluster, 512, 1.0, 0.05, 10.0,
      SpeculationPolicy{.enabled = false, .threshold_factor = 99.0});
  EXPECT_DOUBLE_EQ(implicit, expl);
}

TEST(SpeculationTest, UnreachableThresholdDegeneratesToPlain) {
  // A backup that would launch after the straggler already finished is
  // never worth submitting: the simulator must fall back to the plain
  // makespan rather than paying for useless copies.
  const auto cluster = wrangler_cores(64);
  const double plain = simulate_straggler_makespan(
      cluster, 512, 1.0, 0.05, 10.0, SpeculationPolicy{});
  const double lofty = simulate_straggler_makespan(
      cluster, 512, 1.0, 0.05, 10.0,
      SpeculationPolicy{.enabled = true, .threshold_factor = 1000.0});
  EXPECT_DOUBLE_EQ(lofty, plain);
}

TEST(ElasticTest, GrowingThePoolShortensTheTail) {
  // 256 x 1 s tasks on 16 cores = 16 s flat; doubling the pool at t=4
  // finishes the remaining 192 tasks on 32 cores: 4 + 6 = 10 s.
  const double fixed = simulate_elastic_makespan(256, 1.0, 16, 0, 0.0);
  const double grown = simulate_elastic_makespan(256, 1.0, 16, 16, 4.0);
  EXPECT_DOUBLE_EQ(fixed, 16.0);
  EXPECT_DOUBLE_EQ(grown, 10.0);
}

TEST(ElasticTest, LateGrowthHelpsLess) {
  const double early = simulate_elastic_makespan(256, 1.0, 16, 16, 2.0);
  const double late = simulate_elastic_makespan(256, 1.0, 16, 16, 12.0);
  EXPECT_LT(early, late);
  EXPECT_LE(late, 16.0);
}

// ---- grid sanity: every simulated cell is finite, positive and
// monotone in resources ----

class GridSanityTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(GridSanityTest, LeafletCellsAreFiniteAndMonotoneInCores) {
  const auto [approach, atoms] = GetParam();
  const auto costs = test_costs();
  const LfWorkload w{atoms, atoms * 7, 1024};
  double previous = std::numeric_limits<double>::infinity();
  for (const auto& model : {mpi_model(), spark_model(), dask_model(),
                            rp_model()}) {
    previous = std::numeric_limits<double>::infinity();
    for (std::size_t cores : {32u, 64u, 128u, 256u}) {
      const auto outcome = simulate_leaflet(model, wrangler_cores(cores),
                                            approach, w, costs);
      if (!outcome.feasible) continue;
      EXPECT_TRUE(std::isfinite(outcome.makespan_s)) << model.name;
      EXPECT_GT(outcome.makespan_s, 0.0) << model.name;
      EXPECT_GE(outcome.compute_s, 0.0);
      EXPECT_GE(outcome.shuffle_s, 0.0);
      EXPECT_GE(outcome.bcast_s, 0.0);
      // More cores never make the virtual makespan worse (same nodes
      // layout family, fixed overheads are core-independent).
      EXPECT_LE(outcome.makespan_s, previous * 1.001)
          << model.name << " at " << cores << " cores";
      previous = outcome.makespan_s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cells, GridSanityTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(131072u, 262144u)),
    [](const auto& param_info) {
      std::string name = "A";
      name += std::to_string(std::get<0>(param_info.param));
      name += "_atoms";
      name += std::to_string(std::get<1>(param_info.param));
      return name;
    });

TEST(GridSanityTest, ThroughputMonotoneInTaskCount) {
  const auto cluster = wrangler_cores(32);
  for (const auto& model : {spark_model(), dask_model()}) {
    double previous = 0.0;
    for (std::size_t tasks = 16; tasks <= 65536; tasks *= 4) {
      const auto outcome = simulate_throughput(model, cluster, tasks);
      EXPECT_GE(outcome.makespan_s, previous) << model.name;
      previous = outcome.makespan_s;
    }
  }
}

TEST(GridSanityTest, PsaMonotoneInWorkload) {
  const auto costs = test_costs();
  const auto cluster = wrangler_cores(64);
  double previous = 0.0;
  for (std::size_t trajectories : {32u, 64u, 128u, 256u}) {
    const auto outcome = simulate_psa(
        mpi_model(), cluster, {trajectories, 3341, 102}, costs);
    EXPECT_GT(outcome.makespan_s, previous);
    previous = outcome.makespan_s;
  }
}

TEST(CalibrationTest, HostCostsArePositiveAndOrdered) {
  const auto& costs = host_kernel_costs();
  EXPECT_GT(costs.hausdorff_unit, 0.0);
  EXPECT_GT(costs.cdist_element, 0.0);
  EXPECT_GT(costs.tree_build_point, 0.0);
  EXPECT_GT(costs.tree_query_point_log, 0.0);
  EXPECT_GT(costs.cc_edge, 0.0);
  EXPECT_GT(costs.merge_vertex, 0.0);
  // The -O0 kernel must really be slower than the -O3 kernel (Fig. 6).
  EXPECT_GT(costs.rmsd2d_atom_naive, costs.rmsd2d_atom_optimized);
}

}  // namespace
}  // namespace mdtask::perf
