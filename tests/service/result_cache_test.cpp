#include "mdtask/service/result_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace mdtask::service {
namespace {

RequestKey key_of(std::uint64_t store, std::uint64_t params = 0) {
  RequestKey key;
  key.store = store;
  key.family = 0;
  key.params = params;
  return key;
}

CachedResult payload_of(double value, std::uint64_t weight = 0) {
  auto payload = std::make_shared<const ResultPayload>(
      ResultPayload{{value}, weight});
  return CachedResult(std::move(payload));
}

TEST(ResultCacheTest, MissThenFulfillThenHit) {
  ResultCache cache;
  const RequestKey key = key_of(1);

  const auto miss = cache.lookup_or_join(key);
  EXPECT_EQ(miss.outcome, ResultCache::Outcome::kMiss);
  cache.fulfill(key, payload_of(3.5));

  const auto hit = cache.lookup_or_join(key);
  ASSERT_EQ(hit.outcome, ResultCache::Outcome::kHit);
  const CachedResult result = hit.future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value()->values.at(0), 3.5);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCacheTest, SecondLookupJoinsInFlight) {
  ResultCache cache;
  const RequestKey key = key_of(1);
  ASSERT_EQ(cache.lookup_or_join(key).outcome, ResultCache::Outcome::kMiss);

  const auto joined = cache.lookup_or_join(key);
  ASSERT_EQ(joined.outcome, ResultCache::Outcome::kJoined);
  cache.fulfill(key, payload_of(7.0));

  const CachedResult result = joined.future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value()->values.at(0), 7.0);
  EXPECT_EQ(cache.stats().inflight_joins, 1u);
}

TEST(ResultCacheTest, FailedOwnerFailsEveryWaiterWithoutPoisoning) {
  ResultCache cache;
  const RequestKey key = key_of(9);
  ASSERT_EQ(cache.lookup_or_join(key).outcome, ResultCache::Outcome::kMiss);

  // Several requests pile onto the in-flight computation...
  std::vector<std::shared_future<CachedResult>> waiters;
  for (int i = 0; i < 3; ++i) {
    const auto joined = cache.lookup_or_join(key);
    ASSERT_EQ(joined.outcome, ResultCache::Outcome::kJoined);
    waiters.push_back(joined.future);
  }
  // ...and the owner fails.
  cache.fulfill(key, CachedResult(Error(ErrorCode::kIoError, "store unreadable")));

  for (auto& waiter : waiters) {
    const CachedResult result = waiter.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), ErrorCode::kIoError);
  }

  // Nothing was cached: the next lookup is a fresh miss that can
  // succeed, and a hit follows it.
  EXPECT_EQ(cache.entries(), 0u);
  ASSERT_EQ(cache.lookup_or_join(key).outcome, ResultCache::Outcome::kMiss);
  cache.fulfill(key, payload_of(1.0));
  EXPECT_EQ(cache.lookup_or_join(key).outcome, ResultCache::Outcome::kHit);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedOnEntryPressure) {
  CacheConfig config;
  config.max_entries = 2;
  ResultCache cache(config);

  for (std::uint64_t s = 1; s <= 3; ++s) {
    ASSERT_EQ(cache.lookup_or_join(key_of(s)).outcome,
              ResultCache::Outcome::kMiss);
    cache.fulfill(key_of(s), payload_of(static_cast<double>(s)));
  }
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Key 1 was least recently used -> gone; 2 and 3 remain.
  EXPECT_EQ(cache.lookup_or_join(key_of(1)).outcome,
            ResultCache::Outcome::kMiss);
  EXPECT_EQ(cache.lookup_or_join(key_of(2)).outcome,
            ResultCache::Outcome::kHit);
  EXPECT_EQ(cache.lookup_or_join(key_of(3)).outcome,
            ResultCache::Outcome::kHit);
}

TEST(ResultCacheTest, HitRefreshesLruPosition) {
  CacheConfig config;
  config.max_entries = 2;
  ResultCache cache(config);
  for (std::uint64_t s = 1; s <= 2; ++s) {
    cache.lookup_or_join(key_of(s));
    cache.fulfill(key_of(s), payload_of(static_cast<double>(s)));
  }
  // Touch 1 so 2 becomes the LRU victim when 3 arrives.
  EXPECT_EQ(cache.lookup_or_join(key_of(1)).outcome,
            ResultCache::Outcome::kHit);
  cache.lookup_or_join(key_of(3));
  cache.fulfill(key_of(3), payload_of(3.0));
  EXPECT_EQ(cache.lookup_or_join(key_of(1)).outcome,
            ResultCache::Outcome::kHit);
  EXPECT_EQ(cache.lookup_or_join(key_of(2)).outcome,
            ResultCache::Outcome::kMiss);
}

TEST(ResultCacheTest, EvictsOnBytePressure) {
  CacheConfig config;
  config.max_entries = 1024;
  config.max_bytes = 1000;
  ResultCache cache(config);

  cache.lookup_or_join(key_of(1));
  cache.fulfill(key_of(1), payload_of(1.0, 600));
  cache.lookup_or_join(key_of(2));
  cache.fulfill(key_of(2), payload_of(2.0, 600));

  // 1200 bytes > 1000: the older entry was evicted.
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_LE(cache.bytes(), 1000u);
  EXPECT_EQ(cache.lookup_or_join(key_of(1)).outcome,
            ResultCache::Outcome::kMiss);
  EXPECT_EQ(cache.lookup_or_join(key_of(2)).outcome,
            ResultCache::Outcome::kHit);
}

TEST(ResultCacheTest, ReorderedParamsShareTheCacheLine) {
  // The canonicalization satellite: reordered-but-equal configurations
  // produce the same RequestKey and therefore hit.
  AnalysisRequest first;
  first.store_fingerprint = 5;
  first.family = AnalysisFamily::kPsa;
  first.params = {{"stride", "2"}, {"selection", "all"}};
  AnalysisRequest second = first;
  second.params = {{"selection", "all"}, {"stride", "2"}};

  ResultCache cache;
  ASSERT_EQ(cache.lookup_or_join(request_key(first)).outcome,
            ResultCache::Outcome::kMiss);
  cache.fulfill(request_key(first), payload_of(4.0));
  const auto hit = cache.lookup_or_join(request_key(second));
  ASSERT_EQ(hit.outcome, ResultCache::Outcome::kHit);
  EXPECT_DOUBLE_EQ(hit.future.get().value()->values.at(0), 4.0);
}

TEST(ResultCacheTest, DisabledCacheAlwaysMisses) {
  CacheConfig config;
  config.enabled = false;
  ResultCache cache(config);
  const RequestKey key = key_of(1);
  EXPECT_EQ(cache.lookup_or_join(key).outcome, ResultCache::Outcome::kMiss);
  cache.fulfill(key, payload_of(1.0));
  EXPECT_EQ(cache.lookup_or_join(key).outcome, ResultCache::Outcome::kMiss);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

}  // namespace
}  // namespace mdtask::service
