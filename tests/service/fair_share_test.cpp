#include "mdtask/service/fair_share.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace mdtask::service {
namespace {

AnalysisRequest make_request(std::uint64_t id, std::uint64_t tenant,
                             TenantClass tenant_class,
                             std::uint64_t bytes = 1024) {
  AnalysisRequest request;
  request.id = id;
  request.tenant = tenant;
  request.tenant_class = tenant_class;
  request.input_bytes = bytes;
  return request;
}

TEST(FairShareTest, PopOnEmptyIsFalse) {
  FairShareScheduler scheduler;
  AnalysisRequest out;
  EXPECT_FALSE(scheduler.pop(&out));
  EXPECT_EQ(scheduler.queued(), 0u);
}

TEST(FairShareTest, FifoWithinOneTenant) {
  FairShareScheduler scheduler;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    scheduler.push(make_request(id, 7, TenantClass::kBatch));
  }
  AnalysisRequest out;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(scheduler.pop(&out));
    EXPECT_EQ(out.id, id);
  }
  EXPECT_FALSE(scheduler.pop(&out));
}

TEST(FairShareTest, RoundRobinAcrossTenantsWithinClass) {
  FairShareScheduler scheduler;
  // Tenant 1 floods before tenant 2's first request arrives.
  scheduler.push(make_request(1, 1, TenantClass::kBatch));
  scheduler.push(make_request(2, 1, TenantClass::kBatch));
  scheduler.push(make_request(3, 1, TenantClass::kBatch));
  scheduler.push(make_request(4, 2, TenantClass::kBatch));

  std::vector<std::uint64_t> tenants;
  AnalysisRequest out;
  while (scheduler.pop(&out)) tenants.push_back(out.tenant);
  // Tenant 2 is served second, not after the whole tenant-1 burst.
  ASSERT_EQ(tenants.size(), 4u);
  EXPECT_EQ(tenants[0], 1u);
  EXPECT_EQ(tenants[1], 2u);
  EXPECT_EQ(tenants[2], 1u);
  EXPECT_EQ(tenants[3], 1u);
}

TEST(FairShareTest, DrainOrderIsWeightProportionalUnderSaturation) {
  FairShareConfig config;
  config.weights = {8, 3, 1};
  config.quantum_bytes = 1024;  // one request per weight unit per visit
  FairShareScheduler scheduler(config);

  constexpr std::size_t kPerClass = 120;
  std::uint64_t id = 0;
  for (std::size_t c = 0; c < kTenantClasses; ++c) {
    for (std::size_t i = 0; i < kPerClass; ++i) {
      scheduler.push(
          make_request(++id, c, static_cast<TenantClass>(c), 1024));
    }
  }

  // Over the first 60 pops (half the backlog, every class saturated)
  // class bandwidth should track the 8:3:1 weights.
  std::array<std::size_t, kTenantClasses> served{};
  AnalysisRequest out;
  for (std::size_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(scheduler.pop(&out));
    ++served[static_cast<std::size_t>(out.tenant_class)];
  }
  EXPECT_GT(served[0], served[1]);
  EXPECT_GT(served[1], served[2]);
  // 8/12, 3/12, 1/12 of 60 = 40/15/5; allow one visit of slack.
  EXPECT_NEAR(static_cast<double>(served[0]), 40.0, 8.0);
  EXPECT_NEAR(static_cast<double>(served[1]), 15.0, 4.0);
  EXPECT_NEAR(static_cast<double>(served[2]), 5.0, 2.0);

  // Everything eventually drains.
  std::size_t rest = 0;
  while (scheduler.pop(&out)) ++rest;
  EXPECT_EQ(rest, kTenantClasses * kPerClass - 60);
}

TEST(FairShareTest, EmptyClassesDoNotStallTheRing) {
  FairShareScheduler scheduler;
  scheduler.push(make_request(1, 1, TenantClass::kBestEffort));
  AnalysisRequest out;
  ASSERT_TRUE(scheduler.pop(&out));
  EXPECT_EQ(out.id, 1u);
  EXPECT_FALSE(scheduler.pop(&out));
}

TEST(FairShareTest, LargeRequestsEventuallyAccumulateCredit) {
  FairShareConfig config;
  config.weights = {1, 1, 1};
  config.quantum_bytes = 16;  // far below the request cost
  FairShareScheduler scheduler(config);
  scheduler.push(
      make_request(1, 1, TenantClass::kInteractive, 1 << 20));
  AnalysisRequest out;
  ASSERT_TRUE(scheduler.pop(&out));  // terminates: credit accumulates
  EXPECT_EQ(out.id, 1u);
}

TEST(FairShareTest, QueuedPerClassTracksPushesAndPops) {
  FairShareScheduler scheduler;
  scheduler.push(make_request(1, 1, TenantClass::kInteractive));
  scheduler.push(make_request(2, 2, TenantClass::kBatch));
  scheduler.push(make_request(3, 3, TenantClass::kBatch));
  EXPECT_EQ(scheduler.queued(), 3u);
  EXPECT_EQ(scheduler.queued(TenantClass::kInteractive), 1u);
  EXPECT_EQ(scheduler.queued(TenantClass::kBatch), 2u);
  EXPECT_EQ(scheduler.queued(TenantClass::kBestEffort), 0u);
  AnalysisRequest out;
  ASSERT_TRUE(scheduler.pop(&out));
  EXPECT_EQ(scheduler.queued(), 2u);
}

TEST(FairShareTest, PopOrderIsDeterministic) {
  auto run = [] {
    FairShareScheduler scheduler;
    std::uint64_t id = 0;
    for (std::size_t i = 0; i < 30; ++i) {
      scheduler.push(make_request(
          ++id, i % 5, static_cast<TenantClass>(i % kTenantClasses),
          512 + 256 * (i % 3)));
    }
    std::vector<std::uint64_t> order;
    AnalysisRequest out;
    while (scheduler.pop(&out)) order.push_back(out.id);
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mdtask::service
