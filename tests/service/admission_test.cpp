#include "mdtask/service/admission.h"

#include <gtest/gtest.h>

#include <string>

namespace mdtask::service {
namespace {

AnalysisRequest make_request(std::uint64_t id, std::uint64_t tenant,
                             std::uint64_t bytes) {
  AnalysisRequest request;
  request.id = id;
  request.tenant = tenant;
  request.input_bytes = bytes;
  return request;
}

TEST(AdmissionTest, AdmitsWithinBudgets) {
  AdmissionController admission(AdmissionConfig{});
  EXPECT_TRUE(admission.admit(make_request(1, 1, 1024)).ok());
  const auto stats = admission.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.in_flight, 1u);
  EXPECT_EQ(stats.in_flight_bytes, 1024u);
  EXPECT_EQ(stats.shed_total(), 0u);
}

TEST(AdmissionTest, ShedsOnGlobalRequestBudget) {
  AdmissionConfig config;
  config.max_global_requests = 2;
  AdmissionController admission(config);
  EXPECT_TRUE(admission.admit(make_request(1, 1, 1)).ok());
  EXPECT_TRUE(admission.admit(make_request(2, 2, 1)).ok());
  const Status shed = admission.admit(make_request(3, 3, 1));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code(), ErrorCode::kOverloaded);
  EXPECT_NE(shed.error().message().find("request budget"), std::string::npos);
  EXPECT_EQ(admission.stats().shed_requests, 1u);
}

TEST(AdmissionTest, ShedsOnGlobalByteBudget) {
  AdmissionConfig config;
  config.max_global_bytes = 1000;
  AdmissionController admission(config);
  EXPECT_TRUE(admission.admit(make_request(1, 1, 600)).ok());
  const Status shed = admission.admit(make_request(2, 2, 600));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code(), ErrorCode::kOverloaded);
  EXPECT_NE(shed.error().message().find("byte budget"), std::string::npos);
  EXPECT_EQ(admission.stats().shed_bytes, 1u);
}

TEST(AdmissionTest, ShedsOnPerTenantBudget) {
  AdmissionConfig config;
  config.max_tenant_requests = 1;
  AdmissionController admission(config);
  EXPECT_TRUE(admission.admit(make_request(1, 7, 1)).ok());
  const Status shed = admission.admit(make_request(2, 7, 1));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code(), ErrorCode::kOverloaded);
  EXPECT_NE(shed.error().message().find("tenant"), std::string::npos);
  // A different tenant still fits.
  EXPECT_TRUE(admission.admit(make_request(3, 8, 1)).ok());
  EXPECT_EQ(admission.stats().shed_tenant, 1u);
}

TEST(AdmissionTest, ReleaseReturnsEveryReservation) {
  AdmissionConfig config;
  config.max_global_requests = 1;
  config.max_tenant_requests = 1;
  config.max_global_bytes = 100;
  AdmissionController admission(config);

  const AnalysisRequest request = make_request(1, 7, 100);
  EXPECT_TRUE(admission.admit(request).ok());
  EXPECT_FALSE(admission.admit(make_request(2, 7, 1)).ok());
  admission.release(request);

  const auto stats = admission.stats();
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.in_flight_bytes, 0u);
  // The full budget is available again — same tenant, same size.
  EXPECT_TRUE(admission.admit(make_request(3, 7, 100)).ok());
}

}  // namespace
}  // namespace mdtask::service
