#include "mdtask/service/traffic.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace mdtask::service {
namespace {

TEST(TrafficTest, SameSeedSameSchedule) {
  TrafficConfig config;
  config.duration_s = 20.0;
  config.rate_per_s = 40.0;
  const auto a = generate_traffic(config);
  const auto b = generate_traffic(config);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].request.id, b[i].request.id);
    EXPECT_EQ(a[i].request.tenant, b[i].request.tenant);
    EXPECT_EQ(a[i].request.store_fingerprint, b[i].request.store_fingerprint);
    EXPECT_EQ(a[i].request.params, b[i].request.params);
    EXPECT_EQ(a[i].request.input_bytes, b[i].request.input_bytes);
  }
}

TEST(TrafficTest, DifferentSeedsDiffer) {
  TrafficConfig config;
  config.duration_s = 10.0;
  const auto a = generate_traffic(config);
  config.seed ^= 1;
  const auto b = generate_traffic(config);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_TRUE(a.size() != b.size() ||
              a.front().arrival_s != b.front().arrival_s);
}

TEST(TrafficTest, ArrivalsAreOrderedAndBounded) {
  TrafficConfig config;
  config.duration_s = 15.0;
  const auto events = generate_traffic(config);
  double last = 0.0;
  for (const auto& event : events) {
    EXPECT_GE(event.arrival_s, last);
    EXPECT_LT(event.arrival_s, config.duration_s);
    last = event.arrival_s;
  }
}

TEST(TrafficTest, MeanRateIsRoughlyHonored) {
  TrafficConfig config;
  config.duration_s = 100.0;
  config.rate_per_s = 50.0;
  for (const auto pattern :
       {ArrivalPattern::kPoisson, ArrivalPattern::kDiurnal,
        ArrivalPattern::kBursty}) {
    config.pattern = pattern;
    const auto events = generate_traffic(config);
    const double mean_rate =
        static_cast<double>(events.size()) / config.duration_s;
    // Thinning is mean-preserving for every pattern; 15% tolerance.
    EXPECT_NEAR(mean_rate, config.rate_per_s, 0.15 * config.rate_per_s)
        << to_string(pattern);
  }
}

TEST(TrafficTest, ClassMixIsRoughlyHonored) {
  TrafficConfig config;
  config.duration_s = 100.0;
  config.rate_per_s = 50.0;
  config.class_mix = {0.2, 0.5, 0.3};
  const auto events = generate_traffic(config);
  std::array<double, kTenantClasses> counts{};
  for (const auto& event : events) {
    counts[static_cast<std::size_t>(event.request.tenant_class)] += 1.0;
  }
  const double total = static_cast<double>(events.size());
  EXPECT_NEAR(counts[0] / total, 0.2, 0.06);
  EXPECT_NEAR(counts[1] / total, 0.5, 0.06);
  EXPECT_NEAR(counts[2] / total, 0.3, 0.06);
}

TEST(TrafficTest, TenantClassIsStablePerTenant) {
  TrafficConfig config;
  config.duration_s = 30.0;
  const auto events = generate_traffic(config);
  std::set<std::pair<std::uint64_t, std::uint8_t>> seen;
  for (const auto& event : events) {
    seen.emplace(event.request.tenant,
                 static_cast<std::uint8_t>(event.request.tenant_class));
  }
  std::set<std::uint64_t> tenants;
  for (const auto& [tenant, cls] : seen) {
    // A tenant appearing twice with different classes would inflate
    // `seen` past the tenant count.
    EXPECT_TRUE(tenants.insert(tenant).second)
        << "tenant " << tenant << " changed class";
  }
}

TEST(TrafficTest, RepeatFractionConcentratesKeys) {
  TrafficConfig config;
  config.duration_s = 60.0;
  config.rate_per_s = 50.0;
  config.hot_keys = 4;
  config.repeat_fraction = 0.9;
  const auto hot_heavy = generate_traffic(config);
  config.repeat_fraction = 0.0;
  const auto uniform = generate_traffic(config);

  auto distinct_keys = [](const std::vector<TrafficEvent>& events) {
    std::set<std::uint64_t> keys;
    for (const auto& event : events) {
      keys.insert(request_key(event.request).params ^
                  request_key(event.request).store ^
                  (std::uint64_t{request_key(event.request).family} << 56));
    }
    return keys.size();
  };
  EXPECT_LT(distinct_keys(hot_heavy), distinct_keys(uniform));
}

TEST(TrafficTest, DiurnalModulationFollowsTheSine) {
  TrafficConfig config;
  config.pattern = ArrivalPattern::kDiurnal;
  config.diurnal_depth = 0.8;
  config.diurnal_period_s = 40.0;
  EXPECT_NEAR(rate_modulation(config, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(rate_modulation(config, 10.0), 1.8, 1e-12);  // peak
  EXPECT_NEAR(rate_modulation(config, 30.0), 0.2, 1e-12);  // trough
}

TEST(TrafficTest, BurstyModulationIsMeanPreserving) {
  TrafficConfig config;
  config.pattern = ArrivalPattern::kBursty;
  config.burst_factor = 6.0;
  config.burst_fraction = 0.1;
  config.burst_period_s = 10.0;
  EXPECT_NEAR(rate_modulation(config, 0.5), 6.0, 1e-12);  // in burst
  const double off = rate_modulation(config, 5.0);
  // f*factor + (1-f)*off == 1.
  EXPECT_NEAR(0.1 * 6.0 + 0.9 * off, 1.0, 1e-9);
}

}  // namespace
}  // namespace mdtask::service
