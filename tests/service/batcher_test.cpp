// Direct Batcher unit tests: coalescing keys, the size and delay
// windows, drain, and the capacity-reservation counters the DES pump
// gates on. Time is always caller-supplied, so every case is exact.
#include "mdtask/service/batcher.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

namespace mdtask::service {
namespace {

AnalysisRequest make_request(std::uint64_t id, std::uint64_t store,
                             AnalysisFamily family,
                             std::uint64_t bytes = 1024) {
  AnalysisRequest request;
  request.id = id;
  request.tenant = id % 7;
  request.family = family;
  request.store_fingerprint = store;
  request.input_bytes = bytes;
  request.params = {{"stride", std::to_string(id)}};
  return request;
}

TEST(BatcherTest, SizeLimitSealsTheBatch) {
  Batcher batcher(BatchConfig{.max_batch = 3, .max_delay_s = 10.0});
  EXPECT_FALSE(
      batcher.add(make_request(1, 5, AnalysisFamily::kPsa), 0.0));
  EXPECT_FALSE(
      batcher.add(make_request(2, 5, AnalysisFamily::kPsa), 0.1));
  EXPECT_EQ(batcher.pending(), 2u);
  EXPECT_EQ(batcher.open_batches(), 1u);
  const auto job =
      batcher.add(make_request(3, 5, AnalysisFamily::kPsa), 0.2);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->requests.size(), 3u);
  EXPECT_EQ(job->store_fingerprint, 5u);
  EXPECT_EQ(job->family, AnalysisFamily::kPsa);
  // Submission order is preserved inside the job.
  EXPECT_EQ(job->requests[0].id, 1u);
  EXPECT_EQ(job->requests[2].id, 3u);
  EXPECT_EQ(batcher.pending(), 0u);
  EXPECT_EQ(batcher.open_batches(), 0u);
  EXPECT_EQ(batcher.jobs(), 1u);
}

TEST(BatcherTest, DifferentStoreOrFamilyNeverCoalesce) {
  Batcher batcher(BatchConfig{.max_batch = 8, .max_delay_s = 10.0});
  EXPECT_FALSE(
      batcher.add(make_request(1, 5, AnalysisFamily::kPsa), 0.0));
  EXPECT_FALSE(
      batcher.add(make_request(2, 6, AnalysisFamily::kPsa), 0.0));
  EXPECT_FALSE(
      batcher.add(make_request(3, 5, AnalysisFamily::kLeaflet), 0.0));
  EXPECT_EQ(batcher.open_batches(), 3u);
  const std::vector<EngineJob> jobs = batcher.flush_all();
  ASSERT_EQ(jobs.size(), 3u);
  for (const EngineJob& job : jobs) EXPECT_EQ(job.requests.size(), 1u);
}

TEST(BatcherTest, DelayWindowExpiresOnTheOldestMember) {
  Batcher batcher(BatchConfig{.max_batch = 8, .max_delay_s = 1.0});
  EXPECT_FALSE(
      batcher.add(make_request(1, 5, AnalysisFamily::kPsa), 0.0));
  // A later add does NOT extend the window: it is anchored on the
  // oldest request in the batch.
  EXPECT_FALSE(
      batcher.add(make_request(2, 5, AnalysisFamily::kPsa), 0.9));
  const std::optional<double> deadline = batcher.next_deadline();
  ASSERT_TRUE(deadline.has_value());
  EXPECT_DOUBLE_EQ(*deadline, 1.0);
  EXPECT_TRUE(batcher.due(0.99).empty());
  const std::vector<EngineJob> jobs = batcher.due(1.0);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].requests.size(), 2u);
  EXPECT_FALSE(batcher.next_deadline().has_value());
}

TEST(BatcherTest, DueEmitsExpiredBatchesInKeyOrder) {
  Batcher batcher(BatchConfig{.max_batch = 8, .max_delay_s = 0.5});
  EXPECT_FALSE(
      batcher.add(make_request(1, 9, AnalysisFamily::kPsa), 0.0));
  EXPECT_FALSE(
      batcher.add(make_request(2, 3, AnalysisFamily::kPsa), 0.1));
  EXPECT_FALSE(
      batcher.add(make_request(3, 3, AnalysisFamily::kPsa), 5.0));
  const std::vector<EngineJob> jobs = batcher.due(1.0);
  // Both batches expired (the t=5.0 add joined the already-open
  // store-3 batch, whose window stays anchored on its oldest member),
  // and they emit ordered by (store, family) key.
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].store_fingerprint, 3u);
  EXPECT_EQ(jobs[0].requests.size(), 2u);
  EXPECT_EQ(jobs[1].store_fingerprint, 9u);
}

TEST(BatcherTest, DisabledBatchingShipsEveryRequestAlone) {
  Batcher batcher(
      BatchConfig{.max_batch = 8, .max_delay_s = 10.0, .enabled = false});
  for (std::uint64_t i = 1; i <= 4; ++i) {
    const auto job =
        batcher.add(make_request(i, 5, AnalysisFamily::kPsa), 0.0);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->requests.size(), 1u);
  }
  EXPECT_EQ(batcher.pending(), 0u);
  EXPECT_EQ(batcher.jobs(), 4u);
}

TEST(BatcherTest, TotalBytesSumsTheBatch) {
  Batcher batcher(BatchConfig{.max_batch = 2, .max_delay_s = 10.0});
  EXPECT_FALSE(
      batcher.add(make_request(1, 5, AnalysisFamily::kPsa, 100), 0.0));
  const auto job =
      batcher.add(make_request(2, 5, AnalysisFamily::kPsa, 250), 0.0);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->total_bytes(), 350u);
}

TEST(BatcherTest, JobIdsAreDenseAndOrdered) {
  Batcher batcher(BatchConfig{.max_batch = 1, .max_delay_s = 10.0});
  for (std::uint64_t i = 1; i <= 3; ++i) {
    const auto job =
        batcher.add(make_request(i, i, AnalysisFamily::kPsa), 0.0);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->job_id, i);
  }
}

}  // namespace
}  // namespace mdtask::service
