#include "mdtask/service/reliability.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "mdtask/service/result_cache.h"

namespace mdtask::service {
namespace {

AnalysisRequest make_request(std::uint64_t store,
                             AnalysisFamily family = AnalysisFamily::kRmsdSeries,
                             const char* stride = "1") {
  AnalysisRequest request;
  request.tenant = 1;
  request.tenant_class = TenantClass::kBatch;
  request.family = family;
  request.store_fingerprint = store;
  request.params = {{"stride", stride}};
  request.input_bytes = 4096;
  return request;
}

// ---------------------------------------------------------------------------
// Deadlines

TEST(DeadlineTest, DisabledBudgetIsZero) {
  DeadlineConfig config;  // enabled = false
  EXPECT_DOUBLE_EQ(deadline_budget_s(config, make_request(1)), 0.0);
}

TEST(DeadlineTest, RequestDeadlineOverridesClassDefault) {
  DeadlineConfig config;
  config.enabled = true;
  AnalysisRequest request = make_request(1);
  request.tenant_class = TenantClass::kInteractive;
  EXPECT_DOUBLE_EQ(deadline_budget_s(config, request),
                   config.for_class(TenantClass::kInteractive));
  request.deadline_s = 0.123;
  EXPECT_DOUBLE_EQ(deadline_budget_s(config, request), 0.123);
}

TEST(DeadlineTest, BatcherCarriesTightestMemberDeadline) {
  BatchConfig config;
  config.max_batch = 2;
  config.max_delay_s = 60.0;
  Batcher batcher(config);
  AnalysisRequest a = make_request(7, AnalysisFamily::kRmsdSeries, "1");
  AnalysisRequest b = make_request(7, AnalysisFamily::kRmsdSeries, "2");
  a.deadline_s = 5.0;
  b.deadline_s = 2.0;
  EXPECT_FALSE(batcher.add(std::move(a), 0.0).has_value());
  const auto job = batcher.add(std::move(b), 0.0);
  ASSERT_TRUE(job.has_value());
  EXPECT_DOUBLE_EQ(job->deadline_s, 2.0);
}

TEST(DeadlineTest, UnbatchedRequestKeepsItsOwnDeadline) {
  BatchConfig config;
  config.enabled = false;
  Batcher batcher(config);
  AnalysisRequest a = make_request(7);
  a.deadline_s = 3.5;
  const auto job = batcher.add(std::move(a), 0.0);
  ASSERT_TRUE(job.has_value());
  EXPECT_DOUBLE_EQ(job->deadline_s, 3.5);
}

// ---------------------------------------------------------------------------
// Hedging

TEST(HedgeTest, DelayRequiresSamplesAndSignal) {
  HedgeConfig config;
  autoscale::MetricsSnapshot snapshot;
  snapshot.completed = 100;
  snapshot.p95_s = 0.050;
  // Disabled -> never.
  EXPECT_FALSE(hedge_delay_s(config, snapshot).has_value());
  config.enabled = true;
  // Too few completions for a p95 signal.
  snapshot.completed = config.min_samples - 1;
  EXPECT_FALSE(hedge_delay_s(config, snapshot).has_value());
  // No latency signal at all.
  snapshot.completed = config.min_samples;
  snapshot.p95_s = 0.0;
  EXPECT_FALSE(hedge_delay_s(config, snapshot).has_value());
}

TEST(HedgeTest, DelayIsFactorTimesP95Floored) {
  HedgeConfig config;
  config.enabled = true;
  config.latency_factor = 3.0;
  config.min_delay_s = 0.010;
  autoscale::MetricsSnapshot snapshot;
  snapshot.completed = config.min_samples;
  snapshot.p95_s = 0.050;
  EXPECT_DOUBLE_EQ(hedge_delay_s(config, snapshot).value(), 0.150);
  // The floor wins when the window p95 is tiny.
  snapshot.p95_s = 0.001;
  EXPECT_DOUBLE_EQ(hedge_delay_s(config, snapshot).value(), 0.010);
}

// ---------------------------------------------------------------------------
// Circuit breakers

BreakerConfig small_breaker() {
  BreakerConfig config;
  config.enabled = true;
  config.window = 8;
  config.min_samples = 4;
  config.failure_threshold = 0.5;
  config.cooldown_s = 1.0;
  config.half_open_probes = 2;
  return config;
}

TEST(BreakerTest, DisabledBankAlwaysAllows) {
  CircuitBreakerBank bank;  // enabled = false
  for (int i = 0; i < 100; ++i) {
    bank.record(TenantClass::kBatch, AnalysisFamily::kRmsdSeries, false, 0.0);
  }
  EXPECT_TRUE(
      bank.allow(TenantClass::kBatch, AnalysisFamily::kRmsdSeries, 0.0));
  EXPECT_EQ(bank.open_cells(0.0), 0u);
}

TEST(BreakerTest, TripsOnFailureWindowAndRejectsDuringCooldown) {
  CircuitBreakerBank bank(small_breaker());
  const auto cls = TenantClass::kInteractive;
  const auto fam = AnalysisFamily::kRmsdSeries;
  for (int i = 0; i < 4; ++i) bank.record(cls, fam, false, 0.0);
  EXPECT_EQ(bank.state(cls, fam, 0.0), BreakerState::kOpen);
  EXPECT_FALSE(bank.allow(cls, fam, 0.5));
  EXPECT_EQ(bank.open_cells(0.5), 1u);
  // Other cells are unaffected: per-(class, family) isolation.
  EXPECT_TRUE(bank.allow(cls, AnalysisFamily::kLeaflet, 0.5));
  EXPECT_TRUE(bank.allow(TenantClass::kBatch, fam, 0.5));
  const auto stats = bank.stats();
  EXPECT_EQ(stats.trips, 1u);
  EXPECT_EQ(stats.rejections, 1u);
}

TEST(BreakerTest, SuccessesBelowThresholdNeverTrip) {
  CircuitBreakerBank bank(small_breaker());
  const auto cls = TenantClass::kBatch;
  const auto fam = AnalysisFamily::kLeaflet;
  // 3 failures in a window of 8 with 5 successes: 3/8 < 0.5.
  for (int i = 0; i < 5; ++i) bank.record(cls, fam, true, 0.0);
  for (int i = 0; i < 3; ++i) bank.record(cls, fam, false, 0.0);
  EXPECT_EQ(bank.state(cls, fam, 0.0), BreakerState::kClosed);
  EXPECT_TRUE(bank.allow(cls, fam, 0.0));
  EXPECT_EQ(bank.stats().trips, 0u);
}

TEST(BreakerTest, HalfOpenProbesHealTheCell) {
  CircuitBreakerBank bank(small_breaker());
  const auto cls = TenantClass::kBatch;
  const auto fam = AnalysisFamily::kRmsdSeries;
  for (int i = 0; i < 4; ++i) bank.record(cls, fam, false, 0.0);
  // Past the cooldown the cell admits half_open_probes probes, no more.
  EXPECT_TRUE(bank.allow(cls, fam, 1.5));
  EXPECT_TRUE(bank.allow(cls, fam, 1.5));
  EXPECT_FALSE(bank.allow(cls, fam, 1.5));
  EXPECT_EQ(bank.state(cls, fam, 1.5), BreakerState::kHalfOpen);
  bank.record(cls, fam, true, 1.6);
  bank.record(cls, fam, true, 1.6);
  EXPECT_EQ(bank.state(cls, fam, 1.6), BreakerState::kClosed);
  EXPECT_TRUE(bank.allow(cls, fam, 1.6));
  const auto stats = bank.stats();
  EXPECT_EQ(stats.closes, 1u);
  EXPECT_EQ(stats.probes, 2u);
}

TEST(BreakerTest, ProbeFailureReopensImmediately) {
  CircuitBreakerBank bank(small_breaker());
  const auto cls = TenantClass::kBestEffort;
  const auto fam = AnalysisFamily::kPsa;
  for (int i = 0; i < 4; ++i) bank.record(cls, fam, false, 0.0);
  EXPECT_TRUE(bank.allow(cls, fam, 1.5));  // probe
  bank.record(cls, fam, false, 1.6);
  EXPECT_EQ(bank.state(cls, fam, 1.6), BreakerState::kOpen);
  EXPECT_FALSE(bank.allow(cls, fam, 1.7));
  EXPECT_EQ(bank.stats().trips, 2u);
}

// ---------------------------------------------------------------------------
// Graceful degradation

BrownoutConfig small_brownout() {
  BrownoutConfig config;
  config.enabled = true;
  config.shed_depth = 4;
  config.shrink_depth = 8;
  config.stale_depth = 16;
  config.exit_fraction = 0.5;
  return config;
}

TEST(BrownoutTest, LevelsFollowQueueDepth) {
  DegradationController controller(small_brownout());
  EXPECT_EQ(controller.update(3, 0), BrownoutLevel::kNormal);
  EXPECT_EQ(controller.update(4, 0), BrownoutLevel::kShedBestEffort);
  EXPECT_EQ(controller.update(8, 0), BrownoutLevel::kShrinkBatch);
  EXPECT_EQ(controller.update(16, 0), BrownoutLevel::kServeStale);
  EXPECT_EQ(controller.stats().escalations, 3u);
}

TEST(BrownoutTest, ExitIsHystereticAndOneLevelPerStep) {
  DegradationController controller(small_brownout());
  controller.update(16, 0);
  ASSERT_EQ(controller.level(), BrownoutLevel::kServeStale);
  // Depth just below the entry threshold is NOT enough to de-escalate.
  EXPECT_EQ(controller.update(15, 0), BrownoutLevel::kServeStale);
  EXPECT_EQ(controller.update(9, 0), BrownoutLevel::kServeStale);
  // At exit_fraction x stale_depth = 8 the controller steps down ONE
  // level per observation, never straight to normal.
  EXPECT_EQ(controller.update(0, 0), BrownoutLevel::kShrinkBatch);
  EXPECT_EQ(controller.update(0, 0), BrownoutLevel::kShedBestEffort);
  EXPECT_EQ(controller.update(0, 0), BrownoutLevel::kNormal);
  EXPECT_EQ(controller.stats().recoveries, 3u);
}

TEST(BrownoutTest, OpenBreakerCellsForceShedding) {
  DegradationController controller(small_brownout());
  EXPECT_EQ(controller.update(0, 1), BrownoutLevel::kShedBestEffort);
  // The breaker holds the level even at zero depth...
  EXPECT_EQ(controller.update(0, 1), BrownoutLevel::kShedBestEffort);
  // ...and releases it once every cell healed.
  EXPECT_EQ(controller.update(0, 0), BrownoutLevel::kNormal);
}

TEST(BrownoutTest, DisabledControllerStaysNormal) {
  DegradationController controller;  // enabled = false
  EXPECT_EQ(controller.update(1000, 5), BrownoutLevel::kNormal);
}

// ---------------------------------------------------------------------------
// Chaos

EngineJob make_job(std::vector<AnalysisRequest> requests,
                   std::uint64_t job_id = 1) {
  EngineJob job;
  job.job_id = job_id;
  if (!requests.empty()) {
    job.store_fingerprint = requests.front().store_fingerprint;
    job.family = requests.front().family;
  }
  job.requests = std::move(requests);
  return job;
}

TEST(ChaosTest, JobIdIsOrderIndependentAndContentAddressed) {
  AnalysisRequest a = make_request(7, AnalysisFamily::kRmsdSeries, "1");
  AnalysisRequest b = make_request(7, AnalysisFamily::kRmsdSeries, "2");
  const std::uint64_t ab = chaos_job_id(make_job({a, b}, /*job_id=*/1));
  const std::uint64_t ba = chaos_job_id(make_job({b, a}, /*job_id=*/99));
  EXPECT_EQ(ab, ba);  // live ticket order and job numbering never enter
  const std::uint64_t aa = chaos_job_id(make_job({a}, /*job_id=*/1));
  EXPECT_NE(ab, aa);
}

TEST(ChaosTest, DisabledInjectorNeverFires) {
  ChaosInjector injector(ChaosConfig{});
  for (std::uint64_t id = 0; id < 64; ++id) {
    const ChaosOutcome outcome = injector.decide(id, 0);
    EXPECT_FALSE(outcome.fired());
    EXPECT_DOUBLE_EQ(outcome.delay_s, 0.0);
  }
}

TEST(ChaosTest, VerdictsAreDeterministicPerSeed) {
  ChaosConfig config;
  config.enabled = true;
  config.seed = 7;
  config.fail_rate = 0.2;
  config.slow_rate = 0.3;
  config.hang_rate = 0.1;
  ChaosInjector first(config);
  ChaosInjector second(config);
  bool any_fired = false;
  for (std::uint64_t id = 0; id < 256; ++id) {
    for (int attempt : {0, 1, kHedgeAttemptBase}) {
      const ChaosOutcome a = first.decide(id, attempt);
      const ChaosOutcome b = second.decide(id, attempt);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_DOUBLE_EQ(a.delay_s, b.delay_s);
      any_fired = any_fired || a.fired();
    }
  }
  EXPECT_TRUE(any_fired);
  // A different seed reshuffles the verdicts.
  config.seed = 8;
  ChaosInjector other(config);
  bool any_difference = false;
  for (std::uint64_t id = 0; id < 256 && !any_difference; ++id) {
    any_difference = other.decide(id, 0).kind != first.decide(id, 0).kind;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ChaosTest, SeverityMasksAndDelaysMatchConfig) {
  ChaosConfig config;
  config.enabled = true;
  config.fail_rate = 1.0;
  config.slow_rate = 1.0;
  config.hang_rate = 1.0;
  ChaosInjector all(config);
  // fail masks hang masks slow at certainty rates.
  const ChaosOutcome fail = all.decide(42, 0);
  EXPECT_TRUE(fail.fails());
  EXPECT_DOUBLE_EQ(fail.delay_s, 0.0);

  config.fail_rate = 0.0;
  ChaosInjector hang(config);
  const ChaosOutcome stalled = hang.decide(42, 0);
  EXPECT_FALSE(stalled.fails());
  EXPECT_TRUE(stalled.fired());
  EXPECT_DOUBLE_EQ(stalled.delay_s, config.hang_s);

  config.hang_rate = 0.0;
  ChaosInjector slow(config);
  const ChaosOutcome dragged = slow.decide(42, 0);
  EXPECT_FALSE(dragged.fails());
  EXPECT_TRUE(dragged.fired());
  EXPECT_DOUBLE_EQ(dragged.delay_s, config.slow_s);
}

TEST(ChaosTest, HedgeAttemptsDrawIndependentVerdicts) {
  ChaosConfig config;
  config.enabled = true;
  config.seed = 3;
  config.fail_rate = 0.5;
  ChaosInjector injector(config);
  // Over many jobs the primary and hedge verdicts must disagree
  // somewhere: the hedge attempt base decorrelates the draws.
  bool any_difference = false;
  for (std::uint64_t id = 0; id < 128 && !any_difference; ++id) {
    any_difference = injector.decide(id, 0).fails() !=
                     injector.decide(id, kHedgeAttemptBase).fails();
  }
  EXPECT_TRUE(any_difference);
}

// ---------------------------------------------------------------------------
// Cache satellites: invalidation and stale lookup

std::shared_ptr<const ResultPayload> payload_of(double value) {
  return std::make_shared<const ResultPayload>(
      ResultPayload{{value}, 4096});
}

TEST(CacheReliabilityTest, InvalidateStoreEvictsOnlyThatStore) {
  ResultCache cache{CacheConfig{}};
  const RequestKey k1 = request_key(make_request(1));
  const RequestKey k2 =
      request_key(make_request(1, AnalysisFamily::kLeaflet));
  const RequestKey other = request_key(make_request(2));
  for (const RequestKey& key : {k1, k2, other}) {
    ASSERT_EQ(cache.lookup_or_join(key).outcome,
              ResultCache::Outcome::kMiss);
    cache.fulfill(key, CachedResult(payload_of(1.0)));
  }
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.invalidate_store(1), 2u);
  EXPECT_EQ(cache.entries(), 1u);
  // The re-ingested store misses; the untouched store still hits.
  EXPECT_EQ(cache.lookup_or_join(k1).outcome, ResultCache::Outcome::kMiss);
  EXPECT_EQ(cache.lookup_or_join(other).outcome,
            ResultCache::Outcome::kHit);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(CacheReliabilityTest, LookupStaleFindsSameAnalysisOtherStore) {
  ResultCache cache{CacheConfig{}};
  const RequestKey old_key = request_key(make_request(1));
  ASSERT_EQ(cache.lookup_or_join(old_key).outcome,
            ResultCache::Outcome::kMiss);
  cache.fulfill(old_key, CachedResult(payload_of(7.0)));

  // Same analysis (family + params) against a NEW store snapshot.
  const RequestKey fresh_key = request_key(make_request(2));
  const auto stale = cache.lookup_stale(fresh_key);
  ASSERT_NE(stale, nullptr);
  EXPECT_TRUE(stale->stale);
  EXPECT_DOUBLE_EQ(stale->values.at(0), 7.0);
  EXPECT_EQ(cache.stats().stale_serves, 1u);

  // A different analysis has no stale stand-in.
  const RequestKey other_family =
      request_key(make_request(3, AnalysisFamily::kLeaflet));
  EXPECT_EQ(cache.lookup_stale(other_family), nullptr);
  // The original entry was served by copy: it is NOT flagged stale.
  EXPECT_EQ(cache.lookup_or_join(old_key).outcome,
            ResultCache::Outcome::kHit);
}

}  // namespace
}  // namespace mdtask::service
