#include "mdtask/service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

namespace mdtask::service {
namespace {

AnalysisRequest make_request(std::uint64_t tenant, std::uint64_t store,
                             AnalysisFamily family = AnalysisFamily::kRmsdSeries,
                             std::uint64_t bytes = 4096) {
  AnalysisRequest request;
  request.tenant = tenant;
  request.tenant_class = TenantClass::kBatch;
  request.family = family;
  request.store_fingerprint = store;
  request.params = {{"stride", "1"}, {"selection", "all"}};
  request.input_bytes = bytes;
  return request;
}

/// Executor returning one payload per request whose value encodes the
/// store fingerprint; optionally counts jobs and simulates work.
struct CountingExecutor {
  std::atomic<std::uint64_t>* jobs = nullptr;
  std::chrono::microseconds delay{0};

  Result<std::vector<ResultPayload>> operator()(const EngineJob& job) const {
    if (jobs != nullptr) jobs->fetch_add(1, std::memory_order_relaxed);
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    std::vector<ResultPayload> payloads;
    for (const AnalysisRequest& request : job.requests) {
      payloads.push_back(ResultPayload{
          {static_cast<double>(request.store_fingerprint)}, 0});
    }
    return payloads;
  }
};

TEST(ServiceTest, SubmitResolvesWithPayload) {
  ThreadPool pool(2);
  AnalysisService service(ServiceConfig{}, pool, CountingExecutor{});
  auto future = service.submit(make_request(1, 42));
  const CachedResult result = future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value()->values.at(0), 42.0);
}

TEST(ServiceTest, OverloadShedsWithTypedError) {
  ServiceConfig config;
  config.admission.max_global_requests = 1;
  config.batch.max_delay_s = 10.0;  // hold the first request open
  config.batch.max_batch = 64;
  ThreadPool pool(2);
  AnalysisService service(config, pool, CountingExecutor{});

  auto first = service.submit(make_request(1, 1));
  // The first request occupies the only admission slot (it sits in an
  // open batch); the second must shed immediately.
  CachedResult shed = service.submit(make_request(2, 2)).get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code(), ErrorCode::kOverloaded);

  service.drain();
  EXPECT_TRUE(first.get().ok());
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_GE(stats.admission.shed_total(), 1u);
}

TEST(ServiceTest, BatchingCoalescesCompatibleRequests) {
  ServiceConfig config;
  config.cache.enabled = false;  // force every request into the batcher
  config.batch.max_batch = 4;
  config.batch.max_delay_s = 60.0;  // dispatch only on a full batch
  std::atomic<std::uint64_t> jobs{0};
  ThreadPool pool(2);
  AnalysisService service(config, pool, CountingExecutor{&jobs});

  std::vector<std::future<CachedResult>> futures;
  for (std::uint64_t i = 0; i < 8; ++i) {
    AnalysisRequest request = make_request(i, /*store=*/7);
    request.params = {{"stride", std::to_string(i)}};  // distinct keys
    futures.push_back(service.submit(std::move(request)));
  }
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
  // 8 compatible requests, max_batch 4 -> exactly 2 engine jobs.
  EXPECT_EQ(jobs.load(), 2u);
  EXPECT_EQ(service.stats().engine_jobs, 2u);
}

TEST(ServiceTest, IncompatibleRequestsNeverCoalesce) {
  ServiceConfig config;
  config.cache.enabled = false;
  config.batch.max_batch = 8;
  config.batch.max_delay_s = 0.0;  // flush immediately
  std::atomic<std::uint64_t> jobs{0};
  ThreadPool pool(2);
  AnalysisService service(config, pool, CountingExecutor{&jobs});

  auto a = service.submit(make_request(1, 1, AnalysisFamily::kRmsdSeries));
  auto b = service.submit(make_request(2, 1, AnalysisFamily::kLeaflet));
  auto c = service.submit(make_request(3, 2, AnalysisFamily::kRmsdSeries));
  EXPECT_TRUE(a.get().ok());
  EXPECT_TRUE(b.get().ok());
  EXPECT_TRUE(c.get().ok());
  EXPECT_EQ(jobs.load(), 3u);
}

TEST(ServiceTest, CacheCollapsesRepeatedRequests) {
  ServiceConfig config;
  config.batch.enabled = false;
  std::atomic<std::uint64_t> jobs{0};
  ThreadPool pool(2);
  AnalysisService service(config, pool, CountingExecutor{&jobs});

  EXPECT_TRUE(service.submit(make_request(1, 5)).get().ok());
  for (std::uint64_t tenant = 2; tenant <= 6; ++tenant) {
    EXPECT_TRUE(service.submit(make_request(tenant, 5)).get().ok());
  }
  EXPECT_EQ(jobs.load(), 1u);
  EXPECT_EQ(service.stats().cache.hits, 5u);
}

TEST(ServiceTest, ReingestEvictsStaleAnswersAutomatically) {
  ServiceConfig config;
  config.batch.enabled = false;
  std::atomic<std::uint64_t> jobs{0};
  ThreadPool pool(2);
  AnalysisService service(config, pool, CountingExecutor{&jobs});

  // First ingest registers the store; answers get cached against it.
  EXPECT_EQ(service.ingest_store("stores/traj.mdt", 5u), 0u);
  EXPECT_TRUE(service.submit(make_request(1, 5)).get().ok());
  EXPECT_TRUE(service.submit(make_request(2, 5)).get().ok());
  EXPECT_EQ(jobs.load(), 1u);  // second answer came from the cache

  // Re-ingesting the SAME bytes is a no-op: nothing evicted, cache
  // still serves.
  EXPECT_EQ(service.ingest_store("stores/traj.mdt", 5u), 0u);
  EXPECT_TRUE(service.submit(make_request(3, 5)).get().ok());
  EXPECT_EQ(jobs.load(), 1u);

  // Rewriting the file changes the fingerprint: the re-ingest evicts
  // the stale answer without an explicit invalidate_store call, so the
  // next request recomputes.
  EXPECT_EQ(service.ingest_store("stores/traj.mdt", 9u), 1u);
  EXPECT_TRUE(service.submit(make_request(4, 5)).get().ok());
  EXPECT_EQ(jobs.load(), 2u);
  EXPECT_GE(service.stats().cache.invalidations, 1u);
}

TEST(ServiceTest, IngestTracksPathsIndependently) {
  ServiceConfig config;
  config.batch.enabled = false;
  std::atomic<std::uint64_t> jobs{0};
  ThreadPool pool(2);
  AnalysisService service(config, pool, CountingExecutor{&jobs});

  service.ingest_store("stores/a.mdt", 1u);
  service.ingest_store("stores/b.mdt", 2u);
  EXPECT_TRUE(service.submit(make_request(1, 1)).get().ok());
  EXPECT_TRUE(service.submit(make_request(1, 2)).get().ok());
  EXPECT_EQ(jobs.load(), 2u);

  // Rewriting a.mdt leaves b.mdt's cached answers untouched.
  EXPECT_EQ(service.ingest_store("stores/a.mdt", 7u), 1u);
  EXPECT_TRUE(service.submit(make_request(2, 2)).get().ok());
  EXPECT_EQ(jobs.load(), 2u);  // b's answer still cached
  EXPECT_TRUE(service.submit(make_request(2, 1)).get().ok());
  EXPECT_EQ(jobs.load(), 3u);  // a's stale answer was evicted
}

TEST(ServiceTest, ExecutorFailureFailsEveryRequestWithoutPoisoning) {
  ServiceConfig config;
  config.batch.enabled = false;
  std::atomic<bool> fail{true};
  ThreadPool pool(2);
  AnalysisService service(
      config, pool,
      [&fail](const EngineJob& job) -> Result<std::vector<ResultPayload>> {
        if (fail.load()) return Error(ErrorCode::kIoError, "store offline");
        return CountingExecutor{}(job);
      });

  CachedResult failed = service.submit(make_request(1, 9)).get();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code(), ErrorCode::kIoError);

  // The failure was not cached: the same key succeeds once the engine
  // recovers.
  fail.store(false);
  CachedResult ok = service.submit(make_request(1, 9)).get();
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok.value()->values.at(0), 9.0);
}

TEST(ServiceTest, WrongPayloadCountIsAnInternalError) {
  ServiceConfig config;
  config.batch.enabled = false;
  config.cache.enabled = false;
  ThreadPool pool(2);
  AnalysisService service(
      config, pool,
      [](const EngineJob&) -> Result<std::vector<ResultPayload>> {
        return std::vector<ResultPayload>{};  // always zero payloads
      });
  CachedResult result = service.submit(make_request(1, 1)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kInternal);
}

// The TSan matrix cell runs this file: many tenants submitting
// concurrently from their own threads while the dispatcher batches,
// the cache dedups and the pool executes.
TEST(ServiceTest, ConcurrentMultiTenantLoad) {
  ServiceConfig config;
  config.admission.max_global_requests = 4096;
  config.admission.max_tenant_requests = 4096;
  config.batch.max_batch = 4;
  config.batch.max_delay_s = 0.0005;
  std::atomic<std::uint64_t> jobs{0};
  ThreadPool pool(4);
  AnalysisService service(config, pool,
                          CountingExecutor{&jobs, std::chrono::microseconds(50)});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::vector<std::thread> tenants;
  tenants.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    tenants.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        AnalysisRequest request = make_request(
            static_cast<std::uint64_t>(t), /*store=*/i % 4,
            static_cast<AnalysisFamily>(i % 3));
        request.tenant_class = static_cast<TenantClass>(t % 3);
        request.params = {{"stride", std::to_string(i % 5)}};
        const CachedResult result = service.submit(std::move(request)).get();
        if (result.ok()) {
          ok_count.fetch_add(1);
        } else {
          ASSERT_EQ(result.error().code(), ErrorCode::kOverloaded);
          shed_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& tenant : tenants) tenant.join();
  service.drain();

  EXPECT_EQ(ok_count.load() + shed_count.load(), kThreads * kPerThread);
  EXPECT_GT(ok_count.load(), 0);
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed + stats.rejected,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  // Identical (store, family, params) keys recur across tenants: the
  // cache plus batching must have collapsed SOME of the 400 requests.
  EXPECT_LT(jobs.load(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ServiceTest, DrainFlushesOpenBatches) {
  ServiceConfig config;
  config.cache.enabled = false;
  config.batch.max_batch = 64;
  config.batch.max_delay_s = 3600.0;  // would wait an hour without drain
  std::atomic<std::uint64_t> jobs{0};
  ThreadPool pool(2);
  AnalysisService service(config, pool, CountingExecutor{&jobs});
  auto future = service.submit(make_request(1, 1));
  service.drain();
  EXPECT_TRUE(future.get().ok());
  EXPECT_EQ(jobs.load(), 1u);
}

}  // namespace
}  // namespace mdtask::service
