#include "mdtask/service/sim_service.h"

#include <gtest/gtest.h>

#include "mdtask/trace/chrome_export.h"

namespace mdtask::service {
namespace {

ServiceSimConfig quick_config() {
  ServiceSimConfig config;
  config.traffic.duration_s = 20.0;
  config.traffic.rate_per_s = 40.0;
  config.traffic.tenants = 200;
  config.servers = 8;
  return config;
}

TEST(SimServiceTest, ReportCountsAreConsistent) {
  const ServiceSimReport report = simulate_service(quick_config());
  ASSERT_GT(report.requests, 100u);
  EXPECT_EQ(report.admitted + report.rejected, report.requests);
  // Every admitted request resolves by the end of the run.
  EXPECT_EQ(report.completed, report.admitted);
  EXPECT_GE(report.horizon_s, 0.0);
  EXPECT_GT(report.busy_time_s, 0.0);
  EXPECT_GT(report.engine_jobs, 0u);
  // Cache hits and joins never reach the engine.
  EXPECT_EQ(report.batched_requests + report.cache_hits + report.dedup_joins,
            report.completed);
  std::uint64_t class_completed = 0;
  for (const ClassOutcome& out : report.classes) {
    class_completed += out.completed;
    EXPECT_LE(out.p50_s, out.p95_s);
    EXPECT_LE(out.p95_s, out.p99_s);
    EXPECT_LE(out.p99_s, out.max_s + 1e-12);
    EXPECT_GE(out.slo_attainment, 0.0);
    EXPECT_LE(out.slo_attainment, 1.0);
  }
  EXPECT_EQ(class_completed, report.completed);
}

TEST(SimServiceTest, SameSeedIsByteIdentical) {
  const ServiceSimConfig config = quick_config();
  trace::Tracer tracer_a;
  tracer_a.set_enabled(true);
  trace::Tracer tracer_b;
  tracer_b.set_enabled(true);
  ServiceSimConfig with_a = config;
  with_a.tracer = &tracer_a;
  ServiceSimConfig with_b = config;
  with_b.tracer = &tracer_b;

  const ServiceSimReport a = simulate_service(with_a);
  const ServiceSimReport b = simulate_service(with_b);
  ASSERT_EQ(a.log.size(), b.log.size());
  ASSERT_FALSE(a.log.empty());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    EXPECT_EQ(a.log[i], b.log[i]) << "log line " << i;
  }
  EXPECT_EQ(a.engine_jobs, b.engine_jobs);
  EXPECT_EQ(a.completed, b.completed);
  // The mirrored traces are byte-identical too.
  EXPECT_EQ(trace::to_chrome_json(tracer_a), trace::to_chrome_json(tracer_b));
}

TEST(SimServiceTest, DifferentSeedsDiverge) {
  ServiceSimConfig config = quick_config();
  const ServiceSimReport a = simulate_service(config);
  config.traffic.seed ^= 1;
  const ServiceSimReport b = simulate_service(config);
  EXPECT_NE(a.log, b.log);
}

TEST(SimServiceTest, CacheOnUsesStrictlyFewerEngineJobs) {
  ServiceSimConfig config = quick_config();
  config.traffic.repeat_fraction = 0.8;  // repeat-heavy workload
  config.traffic.hot_keys = 8;
  config.service.cache.enabled = true;
  const ServiceSimReport cached = simulate_service(config);
  config.service.cache.enabled = false;
  const ServiceSimReport uncached = simulate_service(config);

  EXPECT_GT(cached.cache_hits + cached.dedup_joins, 0u);
  EXPECT_LT(cached.engine_jobs, uncached.engine_jobs);
  // Same demand either way.
  EXPECT_EQ(cached.requests, uncached.requests);
}

TEST(SimServiceTest, InteractiveClassWinsUnderSaturation) {
  ServiceSimConfig config;
  config.traffic.duration_s = 30.0;
  config.traffic.rate_per_s = 120.0;
  config.traffic.tenants = 500;
  config.traffic.repeat_fraction = 0.0;  // every request costs a job
  config.traffic.mean_input_bytes = 4ull << 20;
  config.service.batch.enabled = false;
  config.service.admission.max_global_requests = 100000;
  config.service.admission.max_tenant_requests = 100000;
  config.service.admission.max_global_bytes = ~0ull;
  config.servers = 4;  // heavily oversubscribed

  const ServiceSimReport report = simulate_service(config);
  const ClassOutcome& interactive =
      report.classes[static_cast<std::size_t>(TenantClass::kInteractive)];
  const ClassOutcome& best_effort =
      report.classes[static_cast<std::size_t>(TenantClass::kBestEffort)];
  ASSERT_GT(interactive.completed, 50u);
  ASSERT_GT(best_effort.completed, 50u);
  // Weighted DRR gives the interactive class dramatically better tail
  // latency when the pool saturates.
  EXPECT_LT(interactive.p95_s, best_effort.p95_s);
}

TEST(SimServiceTest, OverloadSheds) {
  ServiceSimConfig config = quick_config();
  config.traffic.rate_per_s = 200.0;
  config.traffic.repeat_fraction = 0.0;
  config.traffic.mean_input_bytes = 8ull << 20;
  config.service.admission.max_global_requests = 16;
  config.servers = 2;
  const ServiceSimReport report = simulate_service(config);
  EXPECT_GT(report.rejected, 0u);
  EXPECT_EQ(report.admitted + report.rejected, report.requests);
  EXPECT_EQ(report.completed, report.admitted);
  bool saw_reject_line = false;
  for (const auto& line : report.log) {
    if (line.find(" reject ") != std::string::npos) {
      saw_reject_line = true;
      break;
    }
  }
  EXPECT_TRUE(saw_reject_line);
}

TEST(SimServiceTest, AutoscaleGrowsThePoolUnderDiurnalLoad) {
  ServiceSimConfig config;
  config.traffic.duration_s = 60.0;
  config.traffic.rate_per_s = 80.0;
  config.traffic.pattern = ArrivalPattern::kDiurnal;
  config.traffic.repeat_fraction = 0.2;
  config.traffic.mean_input_bytes = 4ull << 20;
  config.service.admission.max_global_requests = 100000;
  config.service.admission.max_tenant_requests = 100000;
  config.service.admission.max_global_bytes = ~0ull;
  config.servers = 2;
  config.autoscale_enabled = true;
  config.autoscale.min_pool = 2;
  config.autoscale.max_pool = 64;
  config.autoscale.cooldown_s = 1.0;

  const ServiceSimReport report = simulate_service(config);
  EXPECT_GT(report.scale_ups, 0u);
  EXPECT_GT(report.peak_servers, report.initial_servers);
  EXPECT_EQ(report.completed, report.admitted);
  bool saw_scale_line = false;
  for (const auto& line : report.log) {
    if (line.find(" scale-up ") != std::string::npos) {
      saw_scale_line = true;
      break;
    }
  }
  EXPECT_TRUE(saw_scale_line);
}

TEST(SimServiceTest, BatchingReducesEngineJobs) {
  ServiceSimConfig config = quick_config();
  config.service.cache.enabled = false;  // isolate the batching effect
  config.traffic.repeat_fraction = 0.6;
  config.service.batch.max_batch = 8;
  config.service.batch.max_delay_s = 0.05;
  const ServiceSimReport batched = simulate_service(config);
  config.service.batch.enabled = false;
  const ServiceSimReport unbatched = simulate_service(config);
  EXPECT_LT(batched.engine_jobs, unbatched.engine_jobs);
  EXPECT_EQ(batched.completed, unbatched.completed);
}

// ---------------------------------------------------------------------------
// Reliability layer in the DES twin

/// Chaos rates and the full reliability ladder over a pressured
/// schedule (the bench_service --chaos regime, shrunk for test time).
ServiceSimConfig chaos_config(bool reliable) {
  ServiceSimConfig config = quick_config();
  config.traffic.pattern = ArrivalPattern::kDiurnal;
  config.traffic.duration_s = 30.0;
  config.traffic.mean_input_bytes = 4ull << 20;
  config.servers = 6;
  config.service.chaos.enabled = true;
  config.service.chaos.fail_rate = 0.08;
  config.service.chaos.slow_rate = 0.15;
  config.service.chaos.hang_rate = 0.05;
  if (reliable) {
    config.service.reliability.deadline.enabled = true;
    config.service.reliability.retry.enabled = true;
    config.service.reliability.hedge.enabled = true;
    config.service.reliability.brownout.enabled = true;
  }
  return config;
}

TEST(SimServiceReliabilityTest, ChaosRunsAreByteIdenticalPerSeed) {
  fault::RecoveryLog log_a;
  fault::RecoveryLog log_b;
  ServiceSimConfig config_a = chaos_config(/*reliable=*/true);
  config_a.recovery_log = &log_a;
  ServiceSimConfig config_b = chaos_config(/*reliable=*/true);
  config_b.recovery_log = &log_b;
  const ServiceSimReport a = simulate_service(config_a);
  const ServiceSimReport b = simulate_service(config_b);
  ASSERT_FALSE(a.log.empty());
  ASSERT_EQ(a.log.size(), b.log.size());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    ASSERT_EQ(a.log[i], b.log[i]) << "log line " << i;
  }
  EXPECT_GT(a.chaos_failures, 0u);
  EXPECT_GT(a.retries, 0u);
  ASSERT_GT(log_a.size(), 0u);
  EXPECT_EQ(log_a.canonical(), log_b.canonical());
}

TEST(SimServiceReliabilityTest, ReliabilityOnBeatsOffForInteractiveSlo) {
  const ServiceSimReport off = simulate_service(chaos_config(false));
  const ServiceSimReport on = simulate_service(chaos_config(true));
  const auto interactive =
      static_cast<std::size_t>(TenantClass::kInteractive);
  // The acceptance criterion: at the same chaos seed, the reliability
  // layer strictly raises interactive SLO attainment.
  EXPECT_GT(on.classes[interactive].slo_attainment,
            off.classes[interactive].slo_attainment);
  // Retry converted chaos failures into completions.
  EXPECT_GT(off.classes[interactive].failed, 0u);
  EXPECT_EQ(on.classes[interactive].failed, 0u);
  // The reaper bound: nothing ever resolved past its deadline.
  EXPECT_DOUBLE_EQ(on.max_deadline_overrun_s, 0.0);
}

TEST(SimServiceReliabilityTest, EveryRequestIsAccountedForUnderChaos) {
  const ServiceSimReport report = simulate_service(chaos_config(true));
  std::uint64_t accounted = 0;
  for (const ClassOutcome& out : report.classes) {
    accounted += out.completed + out.rejected + out.deadline_expired +
                 out.circuit_rejected + out.brownout_shed + out.failed;
    EXPECT_GE(out.slo_attainment, 0.0);
    EXPECT_LE(out.slo_attainment, 1.0);
  }
  EXPECT_EQ(accounted, report.requests);
}

TEST(SimServiceReliabilityTest, TenantTableIsObservationOnly) {
  ServiceSimConfig config = quick_config();
  const ServiceSimReport plain = simulate_service(config);
  config.top_tenants = 8;
  const ServiceSimReport tracked = simulate_service(config);
  // Tracking the top tenants changes no serving decision: the logs are
  // byte-identical and only the tenants table appears.
  ASSERT_EQ(plain.log.size(), tracked.log.size());
  for (std::size_t i = 0; i < plain.log.size(); ++i) {
    ASSERT_EQ(plain.log[i], tracked.log[i]) << "log line " << i;
  }
  EXPECT_TRUE(plain.tenants.empty());
  ASSERT_EQ(tracked.tenants.size(), 8u);
  // Ordered by volume desc, tenant id asc; outcomes reconcile.
  for (std::size_t i = 1; i < tracked.tenants.size(); ++i) {
    const TenantOutcome& prev = tracked.tenants[i - 1];
    const TenantOutcome& cur = tracked.tenants[i];
    EXPECT_TRUE(prev.requests > cur.requests ||
                (prev.requests == cur.requests && prev.tenant < cur.tenant));
  }
  for (const TenantOutcome& tenant : tracked.tenants) {
    EXPECT_GT(tenant.requests, 0u);
    EXPECT_LE(tenant.completed + tenant.missed, tenant.requests);
    EXPECT_GE(tenant.slo_attainment, 0.0);
    EXPECT_LE(tenant.slo_attainment, 1.0);
  }
}

}  // namespace
}  // namespace mdtask::service
