#include "mdtask/service/sim_service.h"

#include <gtest/gtest.h>

#include "mdtask/trace/chrome_export.h"

namespace mdtask::service {
namespace {

ServiceSimConfig quick_config() {
  ServiceSimConfig config;
  config.traffic.duration_s = 20.0;
  config.traffic.rate_per_s = 40.0;
  config.traffic.tenants = 200;
  config.servers = 8;
  return config;
}

TEST(SimServiceTest, ReportCountsAreConsistent) {
  const ServiceSimReport report = simulate_service(quick_config());
  ASSERT_GT(report.requests, 100u);
  EXPECT_EQ(report.admitted + report.rejected, report.requests);
  // Every admitted request resolves by the end of the run.
  EXPECT_EQ(report.completed, report.admitted);
  EXPECT_GE(report.horizon_s, 0.0);
  EXPECT_GT(report.busy_time_s, 0.0);
  EXPECT_GT(report.engine_jobs, 0u);
  // Cache hits and joins never reach the engine.
  EXPECT_EQ(report.batched_requests + report.cache_hits + report.dedup_joins,
            report.completed);
  std::uint64_t class_completed = 0;
  for (const ClassOutcome& out : report.classes) {
    class_completed += out.completed;
    EXPECT_LE(out.p50_s, out.p95_s);
    EXPECT_LE(out.p95_s, out.p99_s);
    EXPECT_LE(out.p99_s, out.max_s + 1e-12);
    EXPECT_GE(out.slo_attainment, 0.0);
    EXPECT_LE(out.slo_attainment, 1.0);
  }
  EXPECT_EQ(class_completed, report.completed);
}

TEST(SimServiceTest, SameSeedIsByteIdentical) {
  const ServiceSimConfig config = quick_config();
  trace::Tracer tracer_a;
  tracer_a.set_enabled(true);
  trace::Tracer tracer_b;
  tracer_b.set_enabled(true);
  ServiceSimConfig with_a = config;
  with_a.tracer = &tracer_a;
  ServiceSimConfig with_b = config;
  with_b.tracer = &tracer_b;

  const ServiceSimReport a = simulate_service(with_a);
  const ServiceSimReport b = simulate_service(with_b);
  ASSERT_EQ(a.log.size(), b.log.size());
  ASSERT_FALSE(a.log.empty());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    EXPECT_EQ(a.log[i], b.log[i]) << "log line " << i;
  }
  EXPECT_EQ(a.engine_jobs, b.engine_jobs);
  EXPECT_EQ(a.completed, b.completed);
  // The mirrored traces are byte-identical too.
  EXPECT_EQ(trace::to_chrome_json(tracer_a), trace::to_chrome_json(tracer_b));
}

TEST(SimServiceTest, DifferentSeedsDiverge) {
  ServiceSimConfig config = quick_config();
  const ServiceSimReport a = simulate_service(config);
  config.traffic.seed ^= 1;
  const ServiceSimReport b = simulate_service(config);
  EXPECT_NE(a.log, b.log);
}

TEST(SimServiceTest, CacheOnUsesStrictlyFewerEngineJobs) {
  ServiceSimConfig config = quick_config();
  config.traffic.repeat_fraction = 0.8;  // repeat-heavy workload
  config.traffic.hot_keys = 8;
  config.service.cache.enabled = true;
  const ServiceSimReport cached = simulate_service(config);
  config.service.cache.enabled = false;
  const ServiceSimReport uncached = simulate_service(config);

  EXPECT_GT(cached.cache_hits + cached.dedup_joins, 0u);
  EXPECT_LT(cached.engine_jobs, uncached.engine_jobs);
  // Same demand either way.
  EXPECT_EQ(cached.requests, uncached.requests);
}

TEST(SimServiceTest, InteractiveClassWinsUnderSaturation) {
  ServiceSimConfig config;
  config.traffic.duration_s = 30.0;
  config.traffic.rate_per_s = 120.0;
  config.traffic.tenants = 500;
  config.traffic.repeat_fraction = 0.0;  // every request costs a job
  config.traffic.mean_input_bytes = 4ull << 20;
  config.service.batch.enabled = false;
  config.service.admission.max_global_requests = 100000;
  config.service.admission.max_tenant_requests = 100000;
  config.service.admission.max_global_bytes = ~0ull;
  config.servers = 4;  // heavily oversubscribed

  const ServiceSimReport report = simulate_service(config);
  const ClassOutcome& interactive =
      report.classes[static_cast<std::size_t>(TenantClass::kInteractive)];
  const ClassOutcome& best_effort =
      report.classes[static_cast<std::size_t>(TenantClass::kBestEffort)];
  ASSERT_GT(interactive.completed, 50u);
  ASSERT_GT(best_effort.completed, 50u);
  // Weighted DRR gives the interactive class dramatically better tail
  // latency when the pool saturates.
  EXPECT_LT(interactive.p95_s, best_effort.p95_s);
}

TEST(SimServiceTest, OverloadSheds) {
  ServiceSimConfig config = quick_config();
  config.traffic.rate_per_s = 200.0;
  config.traffic.repeat_fraction = 0.0;
  config.traffic.mean_input_bytes = 8ull << 20;
  config.service.admission.max_global_requests = 16;
  config.servers = 2;
  const ServiceSimReport report = simulate_service(config);
  EXPECT_GT(report.rejected, 0u);
  EXPECT_EQ(report.admitted + report.rejected, report.requests);
  EXPECT_EQ(report.completed, report.admitted);
  bool saw_reject_line = false;
  for (const auto& line : report.log) {
    if (line.find(" reject ") != std::string::npos) {
      saw_reject_line = true;
      break;
    }
  }
  EXPECT_TRUE(saw_reject_line);
}

TEST(SimServiceTest, AutoscaleGrowsThePoolUnderDiurnalLoad) {
  ServiceSimConfig config;
  config.traffic.duration_s = 60.0;
  config.traffic.rate_per_s = 80.0;
  config.traffic.pattern = ArrivalPattern::kDiurnal;
  config.traffic.repeat_fraction = 0.2;
  config.traffic.mean_input_bytes = 4ull << 20;
  config.service.admission.max_global_requests = 100000;
  config.service.admission.max_tenant_requests = 100000;
  config.service.admission.max_global_bytes = ~0ull;
  config.servers = 2;
  config.autoscale_enabled = true;
  config.autoscale.min_pool = 2;
  config.autoscale.max_pool = 64;
  config.autoscale.cooldown_s = 1.0;

  const ServiceSimReport report = simulate_service(config);
  EXPECT_GT(report.scale_ups, 0u);
  EXPECT_GT(report.peak_servers, report.initial_servers);
  EXPECT_EQ(report.completed, report.admitted);
  bool saw_scale_line = false;
  for (const auto& line : report.log) {
    if (line.find(" scale-up ") != std::string::npos) {
      saw_scale_line = true;
      break;
    }
  }
  EXPECT_TRUE(saw_scale_line);
}

TEST(SimServiceTest, BatchingReducesEngineJobs) {
  ServiceSimConfig config = quick_config();
  config.service.cache.enabled = false;  // isolate the batching effect
  config.traffic.repeat_fraction = 0.6;
  config.service.batch.max_batch = 8;
  config.service.batch.max_delay_s = 0.05;
  const ServiceSimReport batched = simulate_service(config);
  config.service.batch.enabled = false;
  const ServiceSimReport unbatched = simulate_service(config);
  EXPECT_LT(batched.engine_jobs, unbatched.engine_jobs);
  EXPECT_EQ(batched.completed, unbatched.completed);
}

}  // namespace
}  // namespace mdtask::service
