#include "mdtask/service/request.h"

#include <gtest/gtest.h>

#include <string>

#include "mdtask/stream/shard_format.h"

namespace mdtask::service {
namespace {

TEST(RequestTest, ClassAndFamilyLabels) {
  EXPECT_STREQ(to_string(TenantClass::kInteractive), "interactive");
  EXPECT_STREQ(to_string(TenantClass::kBatch), "batch");
  EXPECT_STREQ(to_string(TenantClass::kBestEffort), "best-effort");
  EXPECT_STREQ(to_string(AnalysisFamily::kRmsdSeries), "rmsd-series");
  EXPECT_STREQ(to_string(AnalysisFamily::kPsa), "psa");
  EXPECT_STREQ(to_string(AnalysisFamily::kLeaflet), "leaflet");
}

TEST(RequestTest, CanonicalParamsHashIgnoresOrder) {
  const std::vector<std::pair<std::string, std::string>> forward{
      {"stride", "2"}, {"selection", "backbone"}, {"ref", "frame0"}};
  std::vector<std::pair<std::string, std::string>> shuffled{
      {"ref", "frame0"}, {"stride", "2"}, {"selection", "backbone"}};
  EXPECT_EQ(canonical_params_hash(forward),
            canonical_params_hash(shuffled));
}

TEST(RequestTest, CanonicalParamsHashSeesValueChanges) {
  const std::vector<std::pair<std::string, std::string>> a{
      {"stride", "2"}, {"selection", "backbone"}};
  const std::vector<std::pair<std::string, std::string>> b{
      {"stride", "4"}, {"selection", "backbone"}};
  EXPECT_NE(canonical_params_hash(a), canonical_params_hash(b));
}

TEST(RequestTest, CanonicalParamsHashKeepsKeyValueBoundary) {
  // "ab"/"c" vs "a"/"bc": without a separator between key and value the
  // concatenated bytes would be identical.
  const std::vector<std::pair<std::string, std::string>> a{{"ab", "c"}};
  const std::vector<std::pair<std::string, std::string>> b{{"a", "bc"}};
  EXPECT_NE(canonical_params_hash(a), canonical_params_hash(b));
}

TEST(RequestTest, RequestKeyEquatesReorderedParams) {
  AnalysisRequest first;
  first.id = 1;
  first.tenant = 7;
  first.family = AnalysisFamily::kPsa;
  first.store_fingerprint = 0xabcdef;
  first.params = {{"stride", "2"}, {"selection", "all"}};

  AnalysisRequest second = first;
  second.id = 2;       // identity fields are NOT part of the key
  second.tenant = 99;
  second.params = {{"selection", "all"}, {"stride", "2"}};

  EXPECT_EQ(request_key(first), request_key(second));
  EXPECT_EQ(RequestKeyHash{}(request_key(first)),
            RequestKeyHash{}(request_key(second)));
}

TEST(RequestTest, RequestKeySeparatesStoreAndFamily) {
  AnalysisRequest request;
  request.store_fingerprint = 42;
  request.family = AnalysisFamily::kRmsdSeries;
  const RequestKey base = request_key(request);

  AnalysisRequest other_family = request;
  other_family.family = AnalysisFamily::kLeaflet;
  EXPECT_NE(base, request_key(other_family));

  AnalysisRequest other_store = request;
  other_store.store_fingerprint = 43;
  EXPECT_NE(base, request_key(other_store));
}

stream::ShardStoreInfo make_store() {
  stream::ShardStoreInfo info;
  info.frames = 128;
  info.atoms = 64;
  info.frames_per_shard = 32;
  info.flags = stream::kFlagDeltaCompressed;
  for (std::uint64_t s = 0; s < 4; ++s) {
    stream::ShardIndexEntry entry;
    entry.offset = s * 1000;
    entry.stored_bytes = 900 + s;
    entry.raw_bytes = 2048;
    entry.checksum = 0x1000 + s;
    info.index.push_back(entry);
  }
  return info;
}

TEST(RequestTest, StoreFingerprintIsStable) {
  EXPECT_EQ(store_fingerprint(make_store()), store_fingerprint(make_store()));
}

TEST(RequestTest, StoreFingerprintSeesContentChanges) {
  const std::uint64_t base = store_fingerprint(make_store());

  stream::ShardStoreInfo corrupt = make_store();
  corrupt.index[2].checksum ^= 1;  // one shard's bytes differ
  EXPECT_NE(base, store_fingerprint(corrupt));

  stream::ShardStoreInfo reshaped = make_store();
  reshaped.frames_per_shard = 16;
  EXPECT_NE(base, store_fingerprint(reshaped));
}

}  // namespace
}  // namespace mdtask::service
