// Live-path tests of the request reliability layer: deadlines, retry,
// hedging, circuit breakers, brownout and the chaos harness, plus the
// live-vs-DES chaos determinism contract (same seed -> byte-identical
// canonical RecoveryLog on both paths).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "mdtask/fault/recovery.h"
#include "mdtask/service/service.h"
#include "mdtask/service/sim_service.h"
#include "mdtask/service/traffic.h"

namespace mdtask::service {
namespace {

AnalysisRequest make_request(std::uint64_t tenant, std::uint64_t store,
                             AnalysisFamily family = AnalysisFamily::kRmsdSeries,
                             const char* stride = "1") {
  AnalysisRequest request;
  request.tenant = tenant;
  request.tenant_class = TenantClass::kBatch;
  request.family = family;
  request.store_fingerprint = store;
  request.params = {{"stride", stride}};
  request.input_bytes = 4096;
  return request;
}

Result<std::vector<ResultPayload>> echo_executor(const EngineJob& job) {
  std::vector<ResultPayload> payloads;
  for (const AnalysisRequest& request : job.requests) {
    payloads.push_back(ResultPayload{
        {static_cast<double>(request.store_fingerprint)}, 0});
  }
  return payloads;
}

TEST(ServiceReliabilityTest, DeadlineReapsRequestHeldInOpenBatch) {
  ServiceConfig config;
  config.batch.max_batch = 64;
  config.batch.max_delay_s = 3600.0;  // the batch would wait an hour
  config.reliability.deadline.enabled = true;
  config.reliability.deadline.default_s = {0.01, 0.01, 0.01};
  ThreadPool pool(2);
  AnalysisService service(config, pool, echo_executor);

  const auto t0 = std::chrono::steady_clock::now();
  CachedResult result = service.submit(make_request(1, 1)).get();
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kDeadlineExceeded);
  // The future resolved at the deadline, not at the batch window: the
  // acceptance bound is deadline + one retry budget, far under a second.
  EXPECT_LT(std::chrono::duration<double>(waited).count(), 2.0);
  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.rejected, 0u);  // counted separately from sheds
}

TEST(ServiceReliabilityTest, ExpiredRequestNeverReachesTheExecutor) {
  ServiceConfig config;
  config.batch.max_batch = 64;
  config.batch.max_delay_s = 0.2;
  config.reliability.deadline.enabled = true;
  config.reliability.deadline.default_s = {0.01, 0.01, 0.01};
  std::atomic<std::uint64_t> jobs{0};
  ThreadPool pool(2);
  AnalysisService service(
      config, pool,
      [&jobs](const EngineJob& job) -> Result<std::vector<ResultPayload>> {
        jobs.fetch_add(1);
        return echo_executor(job);
      });
  // The request expires (10 ms) long before the batch window (200 ms):
  // the pre-dispatch strip must drop the whole job.
  CachedResult result = service.submit(make_request(1, 1)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kDeadlineExceeded);
  service.drain();
  EXPECT_EQ(jobs.load(), 0u);
}

TEST(ServiceReliabilityTest, RetryRecoversFromTransientExecutorFailure) {
  ServiceConfig config;
  config.batch.enabled = false;
  config.reliability.retry.enabled = true;
  config.reliability.retry.policy.max_attempts = 3;
  config.reliability.retry.policy.backoff_s = 0.001;
  std::atomic<int> calls{0};
  ThreadPool pool(2);
  AnalysisService service(
      config, pool,
      [&calls](const EngineJob& job) -> Result<std::vector<ResultPayload>> {
        if (calls.fetch_add(1) == 0) {
          return Error(ErrorCode::kIoError, "transient store hiccup");
        }
        return echo_executor(job);
      });
  CachedResult result = service.submit(make_request(1, 5)).get();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value()->values.at(0), 5.0);
  service.drain();
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(service.stats().retries, 1u);
}

TEST(ServiceReliabilityTest, RetryBudgetExhaustsToTheLastError) {
  ServiceConfig config;
  config.batch.enabled = false;
  config.reliability.retry.enabled = true;
  config.reliability.retry.policy.max_attempts = 3;
  config.reliability.retry.policy.backoff_s = 0.001;
  std::atomic<int> calls{0};
  ThreadPool pool(2);
  AnalysisService service(
      config, pool,
      [&calls](const EngineJob&) -> Result<std::vector<ResultPayload>> {
        calls.fetch_add(1);
        return Error(ErrorCode::kIoError, "store offline");
      });
  CachedResult result = service.submit(make_request(1, 5)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kIoError);
  service.drain();
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(service.stats().retries, 2u);
}

TEST(ServiceReliabilityTest, ChaosFailureSurfacesTypedWhenRetryIsOff) {
  ServiceConfig config;
  config.batch.enabled = false;
  config.chaos.enabled = true;
  config.chaos.fail_rate = 1.0;  // every attempt fails by hash
  ThreadPool pool(2);
  AnalysisService service(config, pool, echo_executor);
  CachedResult result = service.submit(make_request(1, 5)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kUnavailable);
  service.drain();
  EXPECT_GE(service.stats().chaos_failures, 1u);
}

TEST(ServiceReliabilityTest, HedgesFireAndEveryFutureResolves) {
  ServiceConfig config;
  config.batch.enabled = false;
  config.cache.enabled = false;  // every submit is its own job
  config.reliability.hedge.enabled = true;
  config.reliability.hedge.min_samples = 4;
  config.reliability.hedge.latency_factor = 1.0;
  config.reliability.hedge.min_delay_s = 0.001;
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  AnalysisService service(
      config, pool,
      [&calls](const EngineJob& job) -> Result<std::vector<ResultPayload>> {
        // Warm-up jobs are fast; later jobs straggle long enough for
        // the hedge timer to fire a duplicate.
        if (calls.fetch_add(1) >= 4) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        return echo_executor(job);
      });
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        service.submit(make_request(1, static_cast<std::uint64_t>(i)))
            .get()
            .ok());
  }
  std::vector<std::future<CachedResult>> slow;
  for (int i = 0; i < 4; ++i) {
    slow.push_back(
        service.submit(make_request(2, 100 + static_cast<std::uint64_t>(i))));
  }
  for (auto& future : slow) EXPECT_TRUE(future.get().ok());
  service.drain();
  const auto stats = service.stats();
  EXPECT_GE(stats.hedges, 1u);
  // First-completion-wins: hedges never double-resolve a future, and
  // completed counts each request exactly once.
  EXPECT_EQ(stats.completed, 8u);
}

TEST(ServiceReliabilityTest, OpenCircuitRejectsWithTypedError) {
  ServiceConfig config;
  config.batch.enabled = false;
  config.cache.enabled = false;
  config.reliability.breaker.enabled = true;
  config.reliability.breaker.window = 8;
  config.reliability.breaker.min_samples = 4;
  config.reliability.breaker.failure_threshold = 0.5;
  config.reliability.breaker.cooldown_s = 3600.0;  // stays open
  ThreadPool pool(2);
  AnalysisService service(
      config, pool,
      [](const EngineJob&) -> Result<std::vector<ResultPayload>> {
        return Error(ErrorCode::kIoError, "store offline");
      });
  for (std::uint64_t i = 0; i < 4; ++i) {
    CachedResult result = service.submit(make_request(1, i)).get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), ErrorCode::kIoError);
  }
  // Four windowed failures tripped the (batch, rmsd-series) cell.
  CachedResult rejected = service.submit(make_request(1, 9)).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), ErrorCode::kCircuitOpen);
  // Another family's cell is independent.
  CachedResult other =
      service.submit(make_request(1, 9, AnalysisFamily::kLeaflet)).get();
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.error().code(), ErrorCode::kIoError);
  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.circuit_rejected, 1u);
  EXPECT_GE(stats.breaker.trips, 1u);
  EXPECT_EQ(stats.rejected, 0u);  // kOverloaded sheds stay separate
}

TEST(ServiceReliabilityTest, DrainRacesSubmitWhileExecutorFails) {
  ServiceConfig config;
  config.batch.max_delay_s = 0.0005;
  config.cache.enabled = false;
  config.reliability.breaker.enabled = true;
  config.reliability.breaker.window = 16;
  config.reliability.breaker.min_samples = 8;
  config.reliability.breaker.failure_threshold = 0.3;
  config.reliability.breaker.cooldown_s = 0.005;
  config.reliability.retry.enabled = true;
  config.reliability.retry.policy.max_attempts = 2;
  config.reliability.retry.policy.backoff_s = 0.0005;
  std::atomic<int> calls{0};
  ThreadPool pool(4);
  AnalysisService service(
      config, pool,
      [&calls](const EngineJob& job) -> Result<std::vector<ResultPayload>> {
        if (calls.fetch_add(1) % 3 == 0) {
          return Error(ErrorCode::kIoError, "intermittent");
        }
        return echo_executor(job);
      });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> resolved{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        AnalysisRequest request =
            make_request(static_cast<std::uint64_t>(t),
                         static_cast<std::uint64_t>(i % 8),
                         static_cast<AnalysisFamily>(i % 3),
                         /*stride=*/"1");
        request.params = {{"stride", std::to_string(i)}};
        const CachedResult result = service.submit(std::move(request)).get();
        // Success, engine failure, circuit rejection and sheds are all
        // legal outcomes here; what must hold is that EVERY future
        // resolves while drain() races the submitters.
        if (!result.ok()) {
          const ErrorCode code = result.error().code();
          ASSERT_TRUE(code == ErrorCode::kIoError ||
                      code == ErrorCode::kCircuitOpen ||
                      code == ErrorCode::kOverloaded);
        }
        resolved.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 10; ++i) {
    service.drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& thread : submitters) thread.join();
  service.drain();
  EXPECT_EQ(resolved.load(), kThreads * kPerThread);
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed + stats.rejected + stats.circuit_rejected,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ServiceReliabilityTest, BrownoutShedsBestEffortFirst) {
  ServiceConfig config;
  config.batch.max_batch = 64;
  config.batch.max_delay_s = 3600.0;  // hold work open: backlog persists
  config.reliability.brownout.enabled = true;
  config.reliability.brownout.shed_depth = 1;
  ThreadPool pool(2);
  AnalysisService service(config, pool, echo_executor);

  auto held = service.submit(make_request(1, 1));
  // The dispatcher observes the backlog and escalates; poll until the
  // level is visible (its pass races this thread).
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.stats().brownout_level < BrownoutLevel::kShedBestEffort &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(service.stats().brownout_level, BrownoutLevel::kShedBestEffort);

  AnalysisRequest best_effort = make_request(2, 2);
  best_effort.tenant_class = TenantClass::kBestEffort;
  CachedResult shed = service.submit(std::move(best_effort)).get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code(), ErrorCode::kOverloaded);

  // Batch-class traffic still passes admission under level 1.
  auto batch_ok = service.submit(make_request(3, 3));
  service.drain();
  EXPECT_TRUE(held.get().ok());
  EXPECT_TRUE(batch_ok.get().ok());
  EXPECT_EQ(service.stats().brownout_shed, 1u);
}

TEST(ServiceReliabilityTest, BrownoutServesStaleCacheEntries) {
  ServiceConfig config;
  config.batch.enabled = false;
  config.reliability.brownout.enabled = true;
  config.reliability.brownout.shed_depth = 1;
  config.reliability.brownout.shrink_depth = 1;
  config.reliability.brownout.stale_depth = 1;
  ThreadPool pool(2);
  AnalysisService service(
      config, pool,
      [](const EngineJob& job) -> Result<std::vector<ResultPayload>> {
        if (job.store_fingerprint == 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
        return echo_executor(job);
      });

  // Prime the cache against store 1 while the service is healthy.
  ASSERT_TRUE(service.submit(make_request(1, 1)).get().ok());

  // A slow job holds the backlog at 1 so the controller escalates all
  // the way to serve-stale.
  auto held = service.submit(make_request(1, 3, AnalysisFamily::kLeaflet));
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.stats().brownout_level < BrownoutLevel::kServeStale &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(service.stats().brownout_level, BrownoutLevel::kServeStale);

  // Same analysis against a NEW store fingerprint: a brownout miss is
  // answered from the stale store-1 entry, flagged stale.
  CachedResult stale = service.submit(make_request(2, 2)).get();
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale.value()->stale);
  EXPECT_DOUBLE_EQ(stale.value()->values.at(0), 1.0);
  service.drain();
  EXPECT_TRUE(held.get().ok());
  EXPECT_EQ(service.stats().stale_served, 1u);
}

TEST(ServiceReliabilityTest, InvalidateStoreForcesRecomputation) {
  ServiceConfig config;
  config.batch.enabled = false;
  std::atomic<std::uint64_t> jobs{0};
  ThreadPool pool(2);
  AnalysisService service(
      config, pool,
      [&jobs](const EngineJob& job) -> Result<std::vector<ResultPayload>> {
        jobs.fetch_add(1);
        return echo_executor(job);
      });
  ASSERT_TRUE(service.submit(make_request(1, 5)).get().ok());
  ASSERT_TRUE(service.submit(make_request(2, 5)).get().ok());
  EXPECT_EQ(jobs.load(), 1u);  // second was a cache hit
  EXPECT_EQ(service.invalidate_store(5), 1u);
  ASSERT_TRUE(service.submit(make_request(3, 5)).get().ok());
  EXPECT_EQ(jobs.load(), 2u);  // re-ingested store recomputes
}

// ---------------------------------------------------------------------------
// Chaos determinism: live vs live, and live vs the DES twin

/// The determinism preconditions: mechanisms that depend on wall-clock
/// timing (batch windows, hedges, breakers, deadlines, brownout) off,
/// retry ON so multi-attempt verdict chains exercise the hash, cache
/// off so both paths dispatch the identical job multiset.
ServiceConfig chaos_determinism_config() {
  ServiceConfig config;
  config.admission.max_global_requests = 1 << 20;
  config.admission.max_tenant_requests = 1 << 20;
  config.batch.enabled = false;
  config.cache.enabled = false;
  config.reliability.retry.enabled = true;
  config.reliability.retry.policy.max_attempts = 3;
  config.reliability.retry.policy.backoff_s = 0.0;
  config.chaos.enabled = true;
  config.chaos.seed = 1234;
  config.chaos.fail_rate = 0.2;
  config.chaos.slow_rate = 0.0;
  config.chaos.hang_rate = 0.0;
  return config;
}

TrafficConfig chaos_traffic() {
  TrafficConfig traffic;
  traffic.seed = 99;
  traffic.duration_s = 5.0;
  traffic.rate_per_s = 40.0;
  traffic.repeat_fraction = 0.0;
  traffic.stores = 8;
  traffic.param_variants = 50;
  return traffic;
}

std::vector<std::string> live_chaos_log(const ServiceConfig& config) {
  fault::RecoveryLog log;
  ThreadPool pool(4);
  AnalysisService service(config, pool, echo_executor);
  service.set_recovery_log(&log);
  std::vector<std::future<CachedResult>> futures;
  for (const TrafficEvent& event : generate_traffic(chaos_traffic())) {
    futures.push_back(service.submit(event.request));
  }
  for (auto& future : futures) (void)future.get();
  service.drain();
  return log.canonical();
}

TEST(ChaosDeterminismTest, LiveRunsAreByteIdenticalPerSeed) {
  const ServiceConfig config = chaos_determinism_config();
  const std::vector<std::string> first = live_chaos_log(config);
  const std::vector<std::string> second = live_chaos_log(config);
  ASSERT_FALSE(first.empty());  // the chaos rates really fired
  EXPECT_EQ(first, second);
}

TEST(ChaosDeterminismTest, LiveAndDesAgreeByteForByte) {
  const ServiceConfig config = chaos_determinism_config();
  const std::vector<std::string> live = live_chaos_log(config);

  fault::RecoveryLog des_log;
  ServiceSimConfig sim;
  sim.traffic = chaos_traffic();
  sim.service = config;
  sim.recovery_log = &des_log;
  (void)simulate_service(sim);
  const std::vector<std::string> des = des_log.canonical();

  ASSERT_FALSE(live.empty());
  EXPECT_EQ(live, des);
}

}  // namespace
}  // namespace mdtask::service
