#include "mdtask/traj/mdt_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unistd.h>

#include "mdtask/traj/generators.h"

namespace mdtask::traj {
namespace {

class MdtFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/test_traj.mdt";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(MdtFileTest, RoundTripPreservesData) {
  ProteinTrajectoryParams p;
  p.atoms = 17;
  p.frames = 9;
  const Trajectory t = make_protein_trajectory(p);
  ASSERT_TRUE(write_mdt(path_, t).ok());
  auto back = read_mdt(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().frames(), t.frames());
  EXPECT_EQ(back.value().atoms(), t.atoms());
  for (std::size_t f = 0; f < t.frames(); ++f) {
    for (std::size_t i = 0; i < t.atoms(); ++i) {
      EXPECT_EQ(back.value().frame(f)[i], t.frame(f)[i]);
    }
  }
}

TEST_F(MdtFileTest, PartialFrameRead) {
  ProteinTrajectoryParams p;
  p.atoms = 5;
  p.frames = 10;
  const Trajectory t = make_protein_trajectory(p);
  ASSERT_TRUE(write_mdt(path_, t).ok());
  auto part = read_mdt_frames(path_, 3, 4);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part.value().frames(), 4u);
  for (std::size_t f = 0; f < 4; ++f) {
    for (std::size_t i = 0; i < t.atoms(); ++i) {
      EXPECT_EQ(part.value().frame(f)[i], t.frame(f + 3)[i]);
    }
  }
}

TEST_F(MdtFileTest, StatReportsShape) {
  const Trajectory t(6, 11);
  ASSERT_TRUE(write_mdt(path_, t).ok());
  auto info = stat_mdt(path_);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().frames, 6u);
  EXPECT_EQ(info.value().atoms, 11u);
}

TEST_F(MdtFileTest, OutOfRangeFrameReadFails) {
  const Trajectory t(3, 2);
  ASSERT_TRUE(write_mdt(path_, t).ok());
  EXPECT_FALSE(read_mdt_frames(path_, 2, 5).ok());
}

TEST_F(MdtFileTest, MissingFileFails) {
  auto r = read_mdt("/no/such/file.mdt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kIoError);
}

TEST_F(MdtFileTest, BadMagicFails) {
  std::ofstream f(path_, std::ios::binary);
  f << "NOTMDT..garbagegarbagegarbage";
  f.close();
  auto r = read_mdt(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kFormatError);
}

TEST_F(MdtFileTest, TruncatedPayloadFails) {
  const Trajectory t(4, 8);
  ASSERT_TRUE(write_mdt(path_, t).ok());
  // Truncate the file to half its payload.
  std::ofstream f(path_, std::ios::binary | std::ios::in);
  f.seekp(24 + 4 * 8 * 12 / 2);
  f.close();
  ::truncate(path_.c_str(), 24 + 4 * 8 * 12 / 2);
  EXPECT_FALSE(read_mdt(path_).ok());
}

TEST_F(MdtFileTest, EmptyTrajectoryRoundTrips) {
  const Trajectory t(0, 0);
  ASSERT_TRUE(write_mdt(path_, t).ok());
  auto back = read_mdt(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().frames(), 0u);
}

}  // namespace
}  // namespace mdtask::traj
