#include "mdtask/traj/selection.h"

#include <gtest/gtest.h>

#include "mdtask/traj/generators.h"

namespace mdtask::traj {
namespace {

TEST(SelectionBuildersTest, AllAndRangeAndStride) {
  EXPECT_EQ(select_all(4), (AtomSelection{0, 1, 2, 3}));
  EXPECT_EQ(select_range(2, 5), (AtomSelection{2, 3, 4}));
  EXPECT_TRUE(select_range(5, 2).empty());
  EXPECT_EQ(select_stride(7, 3), (AtomSelection{0, 3, 6}));
  EXPECT_EQ(select_stride(3, 0), (AtomSelection{0, 1, 2}));  // clamped
}

TEST(SelectionBuildersTest, SphereSelectsByDistance) {
  const std::vector<Vec3> frame = {{0, 0, 0}, {1, 0, 0}, {5, 0, 0}};
  EXPECT_EQ(select_sphere(frame, {0, 0, 0}, 1.5), (AtomSelection{0, 1}));
  EXPECT_EQ(select_sphere(frame, {0, 0, 0}, 0.5), (AtomSelection{0}));
  EXPECT_TRUE(select_sphere(frame, {100, 0, 0}, 1.0).empty());
}

TEST(SelectionBuildersTest, SlabSelectsByAxis) {
  const std::vector<Vec3> frame = {{0, 0, 0}, {0, 0, 3}, {0, 0, 7}};
  EXPECT_EQ(select_slab(frame, 2, 2.0, 5.0), (AtomSelection{1}));
  EXPECT_EQ(select_slab(frame, 2, -1.0, 10.0), (AtomSelection{0, 1, 2}));
  EXPECT_EQ(select_slab(frame, 0, -0.5, 0.5), (AtomSelection{0, 1, 2}));
}

TEST(SelectionBuildersTest, MakeSelectionSortsAndDedups) {
  EXPECT_EQ(make_selection({5, 1, 5, 3, 1}), (AtomSelection{1, 3, 5}));
}

TEST(SelectionAlgebraTest, UnionIntersectionDifference) {
  const AtomSelection a = {1, 3, 5}, b = {3, 4, 5, 6};
  EXPECT_EQ(selection_union(a, b), (AtomSelection{1, 3, 4, 5, 6}));
  EXPECT_EQ(selection_intersection(a, b), (AtomSelection{3, 5}));
  EXPECT_EQ(selection_difference(a, b), (AtomSelection{1}));
  EXPECT_EQ(selection_difference(b, a), (AtomSelection{4, 6}));
}

TEST(SelectionAlgebraTest, DeMorganSpotCheck) {
  const auto universe = select_all(10);
  const AtomSelection a = {1, 2, 3}, b = {3, 4};
  const auto lhs = selection_difference(
      universe, selection_union(a, b));
  const auto rhs = selection_intersection(
      selection_difference(universe, a), selection_difference(universe, b));
  EXPECT_EQ(lhs, rhs);
}

TEST(SubsetTest, SubsetFramePicksAtoms) {
  const std::vector<Vec3> frame = {{0, 0, 0}, {1, 1, 1}, {2, 2, 2}};
  const auto out = subset_frame(frame, {0, 2});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1], Vec3(2, 2, 2));
}

TEST(SubsetTest, SubsetTrajectoryPreservesFrames) {
  ProteinTrajectoryParams p;
  p.atoms = 10;
  p.frames = 4;
  const auto t = make_protein_trajectory(p);
  auto sub = subset_trajectory(t, {2, 7});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub.value().atoms(), 2u);
  EXPECT_EQ(sub.value().frames(), 4u);
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_EQ(sub.value().frame(f)[0], t.frame(f)[2]);
    EXPECT_EQ(sub.value().frame(f)[1], t.frame(f)[7]);
  }
}

TEST(SubsetTest, OutOfRangeSelectionRejected) {
  const Trajectory t(2, 3);
  EXPECT_FALSE(subset_trajectory(t, {0, 3}).ok());
}

TEST(SubsetTest, EmptySelectionGivesZeroWidth) {
  const Trajectory t(2, 3);
  auto sub = subset_trajectory(t, {});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub.value().atoms(), 0u);
  EXPECT_EQ(sub.value().frames(), 2u);
}

TEST(SliceTest, StridedSlice) {
  ProteinTrajectoryParams p;
  p.atoms = 3;
  p.frames = 10;
  const auto t = make_protein_trajectory(p);
  auto sliced = slice_frames(t, 2, 9, 3);  // frames 2, 5, 8
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced.value().frames(), 3u);
  EXPECT_EQ(sliced.value().frame(1)[0], t.frame(5)[0]);
}

TEST(SliceTest, OutOfRangeRejected) {
  const Trajectory t(5, 2);
  EXPECT_FALSE(slice_frames(t, 3, 7).ok());
  EXPECT_FALSE(slice_frames(t, 4, 2).ok());
}

TEST(SliceTest, FullCopy) {
  ProteinTrajectoryParams p;
  p.atoms = 2;
  p.frames = 4;
  const auto t = make_protein_trajectory(p);
  auto sliced = slice_frames(t, 0, 4);
  ASSERT_TRUE(sliced.ok());
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_EQ(sliced.value().frame(f)[1], t.frame(f)[1]);
  }
}

}  // namespace
}  // namespace mdtask::traj
