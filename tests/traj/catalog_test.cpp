#include "mdtask/traj/catalog.h"

#include <gtest/gtest.h>

namespace mdtask::traj {
namespace {

TEST(CatalogTest, PsaAtomCountsMatchPaper) {
  EXPECT_EQ(psa_atoms(PsaSize::kSmall), 3341u);
  EXPECT_EQ(psa_atoms(PsaSize::kMedium), 6682u);
  EXPECT_EQ(psa_atoms(PsaSize::kLarge), 13364u);
}

TEST(CatalogTest, MediumAndLargeAreMultiplesOfSmall) {
  EXPECT_EQ(psa_atoms(PsaSize::kMedium), 2 * psa_atoms(PsaSize::kSmall));
  EXPECT_EQ(psa_atoms(PsaSize::kLarge), 4 * psa_atoms(PsaSize::kSmall));
}

TEST(CatalogTest, PsaParamsHavePaperFrameCount) {
  EXPECT_EQ(psa_params(PsaSize::kSmall).frames, 102u);
}

TEST(CatalogTest, PsaScalingShrinksButStaysPositive) {
  const auto p = psa_params(PsaSize::kLarge, 100);
  EXPECT_GE(p.atoms, 4u);
  EXPECT_GE(p.frames, 4u);
  EXPECT_LT(p.atoms, psa_atoms(PsaSize::kLarge));
}

TEST(CatalogTest, LfAtomCountsMatchPaper) {
  EXPECT_EQ(lf_atoms(LfSize::k131k), 131072u);
  EXPECT_EQ(lf_atoms(LfSize::k262k), 262144u);
  EXPECT_EQ(lf_atoms(LfSize::k524k), 524288u);
  EXPECT_EQ(lf_atoms(LfSize::k4M), 4194304u);
}

TEST(CatalogTest, LfPaperEdgesMonotone) {
  std::size_t prev = 0;
  for (LfSize s : all_lf_sizes()) {
    EXPECT_GT(lf_paper_edges(s), prev);
    prev = lf_paper_edges(s);
  }
}

TEST(CatalogTest, Names) {
  EXPECT_STREQ(to_string(PsaSize::kSmall), "small");
  EXPECT_STREQ(to_string(LfSize::k4M), "4M");
}

TEST(CatalogTest, SweepsCoverAllSizes) {
  EXPECT_EQ(all_psa_sizes().size(), 3u);
  EXPECT_EQ(all_lf_sizes().size(), 4u);
}

TEST(CatalogTest, LfParamsSeedVariesBySize) {
  EXPECT_NE(lf_params(LfSize::k131k).seed, lf_params(LfSize::k4M).seed);
}

}  // namespace
}  // namespace mdtask::traj
