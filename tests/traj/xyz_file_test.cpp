#include "mdtask/traj/xyz_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "mdtask/traj/generators.h"

namespace mdtask::traj {
namespace {

class XyzFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/test_traj.xyz";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(XyzFileTest, RoundTripWithinFloatPrecision) {
  ProteinTrajectoryParams p;
  p.atoms = 9;
  p.frames = 4;
  const auto t = make_protein_trajectory(p);
  ASSERT_TRUE(write_xyz(path_, t).ok());
  auto back = read_xyz(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().frames(), 4u);
  EXPECT_EQ(back.value().atoms(), 9u);
  for (std::size_t f = 0; f < 4; ++f) {
    for (std::size_t a = 0; a < 9; ++a) {
      // Text round trip: ostream default precision keeps ~6 digits.
      EXPECT_NEAR(back.value().frame(f)[a].x, t.frame(f)[a].x,
                  2e-4 * (1.0 + std::abs(t.frame(f)[a].x)));
    }
  }
}

TEST_F(XyzFileTest, MissingFileIsIoError) {
  auto r = read_xyz("/no/such/file.xyz");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kIoError);
}

TEST_F(XyzFileTest, BadAtomCountLine) {
  std::ofstream(path_) << "banana\ncomment\n";
  auto r = read_xyz(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kFormatError);
}

TEST_F(XyzFileTest, TruncatedFrame) {
  std::ofstream(path_) << "3\ncomment\nC 1 2 3\nC 4 5 6\n";
  EXPECT_FALSE(read_xyz(path_).ok());
}

TEST_F(XyzFileTest, InconsistentAtomCounts) {
  std::ofstream(path_) << "1\nf0\nC 0 0 0\n2\nf1\nC 0 0 0\nC 1 1 1\n";
  auto r = read_xyz(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message().find("inconsistent"), std::string::npos);
}

TEST_F(XyzFileTest, BadCoordinateLine) {
  std::ofstream(path_) << "1\nf0\nC 1 two 3\n";
  EXPECT_FALSE(read_xyz(path_).ok());
}

TEST_F(XyzFileTest, BlankLinesBetweenFramesTolerated) {
  std::ofstream(path_) << "1\nf0\nC 1 2 3\n\n1\nf1\nC 4 5 6\n";
  auto r = read_xyz(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().frames(), 2u);
  EXPECT_FLOAT_EQ(r.value().frame(1)[0].z, 6.0f);
}

TEST_F(XyzFileTest, ElementLabelIsWrittenVerbatim) {
  Trajectory t(1, 1);
  t.frame(0)[0] = {1, 2, 3};
  ASSERT_TRUE(write_xyz(path_, t, "Ar").ok());
  std::ifstream in(path_);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("Ar 1 2 3"), std::string::npos);
}

TEST_F(XyzFileTest, EmptyTrajectoryWritesEmptyFile) {
  ASSERT_TRUE(write_xyz(path_, Trajectory()).ok());
  auto r = read_xyz(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().frames(), 0u);
}

}  // namespace
}  // namespace mdtask::traj
