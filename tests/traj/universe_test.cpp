#include "mdtask/traj/universe.h"

#include <gtest/gtest.h>

#include "mdtask/analysis/leaflet.h"
#include "mdtask/traj/generators.h"

namespace mdtask::traj {
namespace {

Universe make_universe(std::size_t atoms = 20, std::size_t frames = 3) {
  ProteinTrajectoryParams p;
  p.atoms = atoms;
  p.frames = frames;
  auto result = Universe::create(make_protein_topology(atoms),
                                 make_protein_trajectory(p));
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(UniverseTest, CreateValidatesShapes) {
  EXPECT_FALSE(
      Universe::create(make_protein_topology(5), Trajectory(2, 7)).ok());
  EXPECT_TRUE(
      Universe::create(make_protein_topology(7), Trajectory(2, 7)).ok());
}

TEST(UniverseTest, TopologyLayoutIsResidueCyclic) {
  const auto topology = make_protein_topology(10, 5);
  EXPECT_EQ(topology.atom(0).name, "N");
  EXPECT_EQ(topology.atom(1).name, "CA");
  EXPECT_EQ(topology.atom(5).name, "N");  // next residue restarts
  EXPECT_EQ(topology.atom(0).residue_id, 0u);
  EXPECT_EQ(topology.atom(5).residue_id, 1u);
  EXPECT_NE(topology.atom(0).residue_name, topology.atom(5).residue_name);
}

TEST(SelectionLanguageTest, NameSelection) {
  const auto universe = make_universe(20);
  auto ca = universe.select("name CA");
  ASSERT_TRUE(ca.ok()) << ca.error().to_string();
  EXPECT_EQ(ca.value(), (AtomSelection{1, 6, 11, 16}));
}

TEST(SelectionLanguageTest, MultipleNamesUnion) {
  const auto universe = make_universe(10);
  auto backbone = universe.select("name N C");
  ASSERT_TRUE(backbone.ok());
  EXPECT_EQ(backbone.value(), (AtomSelection{0, 2, 5, 7}));
}

TEST(SelectionLanguageTest, WildcardNames) {
  const auto universe = make_universe(10);
  // C* matches CA, C, CB (and not N, O).
  auto carbons = universe.select("name C*");
  ASSERT_TRUE(carbons.ok());
  EXPECT_EQ(carbons.value(), (AtomSelection{1, 2, 4, 6, 7, 9}));
}

TEST(SelectionLanguageTest, ResidSingleAndRange) {
  const auto universe = make_universe(25);  // residues 0..4
  auto r2 = universe.select("resid 2");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), (AtomSelection{10, 11, 12, 13, 14}));
  auto r13 = universe.select("resid 1:3");
  ASSERT_TRUE(r13.ok());
  EXPECT_EQ(r13.value().size(), 15u);
  EXPECT_EQ(r13.value().front(), 5u);
  EXPECT_EQ(r13.value().back(), 19u);
}

TEST(SelectionLanguageTest, IndexRanges) {
  const auto universe = make_universe(10);
  auto sel = universe.select("index 0:2 7");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value(), (AtomSelection{0, 1, 2, 7}));
}

TEST(SelectionLanguageTest, MassComparisons) {
  const auto universe = make_universe(10);
  // Masses: N=14, CA/C=12, O=16, CB=12 per residue.
  auto heavy = universe.select("mass > 13");
  ASSERT_TRUE(heavy.ok());
  EXPECT_EQ(heavy.value(), (AtomSelection{0, 3, 5, 8}));  // N and O
  auto exact = universe.select("mass == 16.0");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value(), (AtomSelection{3, 8}));
}

TEST(SelectionLanguageTest, BooleanOperatorsAndPrecedence) {
  const auto universe = make_universe(10);
  // AND binds tighter than OR: name N or (name O and resid 1).
  auto sel = universe.select("name N or name O and resid 1");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value(), (AtomSelection{0, 5, 8}));
  // Parentheses override.
  auto sel2 = universe.select("(name N or name O) and resid 1");
  ASSERT_TRUE(sel2.ok());
  EXPECT_EQ(sel2.value(), (AtomSelection{5, 8}));
}

TEST(SelectionLanguageTest, NotInvertsAndComposes) {
  const auto universe = make_universe(10);
  auto not_backbone = universe.select("not (name N CA C O)");
  ASSERT_TRUE(not_backbone.ok());
  EXPECT_EQ(not_backbone.value(), (AtomSelection{4, 9}));  // CBs
  auto all = universe.select("name CB or not name CB");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 10u);
}

TEST(SelectionLanguageTest, AllAndNone) {
  const auto universe = make_universe(6);
  EXPECT_EQ(universe.select("all").value().size(), 6u);
  EXPECT_TRUE(universe.select("none").value().empty());
}

TEST(SelectionLanguageTest, AroundSelectsByDistance) {
  // Hand-built universe with known geometry: 3 atoms on a line.
  Topology topology({{"A", "UNK", 0, 1.0f},
                     {"B", "UNK", 0, 1.0f},
                     {"C", "UNK", 0, 1.0f}});
  Trajectory trajectory(1, 3);
  trajectory.frame(0)[0] = {0, 0, 0};
  trajectory.frame(0)[1] = {1, 0, 0};
  trajectory.frame(0)[2] = {5, 0, 0};
  auto universe =
      Universe::create(std::move(topology), std::move(trajectory));
  ASSERT_TRUE(universe.ok());
  auto near_a = universe.value().select("around 2.0 of name A");
  ASSERT_TRUE(near_a.ok());
  EXPECT_EQ(near_a.value(), (AtomSelection{1}));  // B only; C too far
  auto near_any = universe.value().select("around 4.5 of (name A or name B)");
  ASSERT_TRUE(near_any.ok());
  // A is near B, B near A, C within 4.5 of B (distance 4).
  EXPECT_EQ(near_any.value(), (AtomSelection{0, 1, 2}));
}

TEST(SelectionLanguageTest, ParseErrorsCarryContext) {
  const auto universe = make_universe(5);
  for (const char* bad :
       {"", "name", "resid xyz", "mass >", "mass maybe 12", "around of",
        "(name CA", "name CA extra)", "banana CA", "around 2.0 name CA"}) {
    auto r = universe.select(bad);
    EXPECT_FALSE(r.ok()) << "expression '" << bad << "' should fail";
    if (!r.ok()) {
      EXPECT_EQ(r.error().code(), ErrorCode::kFormatError) << bad;
    }
  }
}

TEST(SelectionLanguageTest, CaseInsensitiveKeywordsCaseSensitiveNames) {
  const auto universe = make_universe(10);
  auto sel = universe.select("NAME CA AND RESID 0");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value(), (AtomSelection{1}));
  // Atom names are matched verbatim: lowercase 'ca' matches nothing.
  EXPECT_TRUE(universe.select("name ca").value().empty());
}

TEST(SelectionLanguageTest, AroundWithoutFramesIsAnErrorNotACrash) {
  auto universe =
      Universe::create(make_protein_topology(4), Trajectory(0, 4));
  ASSERT_TRUE(universe.ok());
  // Topology-only selections still work without coordinates...
  EXPECT_EQ(universe.value().select("name CA").value().size(), 1u);
  // ...but geometric ones report a clear error.
  auto r = universe.value().select("around 2 of name CA");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message().find("no frames"), std::string::npos);
}

TEST(UniverseTest, SubsetCarriesTopologyAndCoordinates) {
  const auto universe = make_universe(10, 2);
  auto ca = universe.select("name CA");
  ASSERT_TRUE(ca.ok());
  auto reduced = universe.subset(ca.value());
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced.value().atoms(), 2u);
  EXPECT_EQ(reduced.value().frames(), 2u);
  EXPECT_EQ(reduced.value().topology().atom(0).name, "CA");
  EXPECT_EQ(reduced.value().trajectory().frame(1)[0],
            universe.trajectory().frame(1)[1]);
  // Selections compose on the reduced universe.
  EXPECT_EQ(reduced.value().select("name CA").value().size(), 2u);
}

TEST(UniverseTest, SelectOnLaterFrameUsesThoseCoordinates) {
  Topology topology({{"A", "UNK", 0, 1.0f}, {"B", "UNK", 0, 1.0f}});
  Trajectory trajectory(2, 2);
  trajectory.frame(0)[0] = {0, 0, 0};
  trajectory.frame(0)[1] = {10, 0, 0};  // far in frame 0
  trajectory.frame(1)[0] = {0, 0, 0};
  trajectory.frame(1)[1] = {1, 0, 0};  // close in frame 1
  auto universe =
      Universe::create(std::move(topology), std::move(trajectory));
  ASSERT_TRUE(universe.ok());
  EXPECT_TRUE(
      universe.value().select("around 2 of name A", 0).value().empty());
  EXPECT_EQ(universe.value().select("around 2 of name A", 1).value(),
            (AtomSelection{1}));
}

TEST(LipidBilayerUniverseTest, HeadsAndTailsAreLaidOut) {
  LipidBilayerParams params;
  params.lipids = 64;
  params.tail_beads = 3;
  const auto universe = make_lipid_bilayer_universe(params);
  EXPECT_EQ(universe.atoms(), 64u * 4u);
  auto heads = universe.select("name P");
  ASSERT_TRUE(heads.ok());
  EXPECT_EQ(heads.value().size(), 64u);
  auto tails = universe.select("name C*");
  ASSERT_TRUE(tails.ok());
  EXPECT_EQ(tails.value().size(), 64u * 3u);
  // One residue per lipid.
  EXPECT_EQ(universe.topology().atom(3).residue_id,
            universe.topology().atom(0).residue_id);
  EXPECT_NE(universe.topology().atom(4).residue_id,
            universe.topology().atom(0).residue_id);
}

TEST(LipidBilayerUniverseTest, HeadSelectionSeparatesLeafletsTailsDoNot) {
  // The MDAnalysis usage pattern: LF on the head-group selection finds
  // exactly two leaflets; on ALL atoms the interleaved tails bridge the
  // membrane interior into one component.
  LipidBilayerParams params;
  params.lipids = 200;
  const auto universe = make_lipid_bilayer_universe(params);
  const double cutoff = 2.1 * params.spacing;

  auto heads = universe.select("name P");
  ASSERT_TRUE(heads.ok());
  const auto head_positions =
      subset_frame(universe.trajectory().frame(0), heads.value());
  const auto by_heads =
      analysis::leaflet_finder_reference(head_positions, cutoff);
  EXPECT_EQ(by_heads.component_count, 2u);
  EXPECT_EQ(by_heads.leaflet_a_size, 100u);
  EXPECT_EQ(by_heads.leaflet_b_size, 100u);

  const auto all =
      analysis::leaflet_finder_reference(universe.trajectory().frame(0),
                                         cutoff);
  EXPECT_LT(all.component_count, 2u + 1u);  // tails bridge: 1 component
  EXPECT_EQ(all.component_count, 1u);
}

TEST(LipidBilayerUniverseTest, MassSelectionSplitsHeadsFromTails) {
  LipidBilayerParams params;
  params.lipids = 20;
  const auto universe = make_lipid_bilayer_universe(params);
  auto heavy = universe.select("mass > 20");
  ASSERT_TRUE(heavy.ok());
  EXPECT_EQ(heavy.value().size(), 20u);  // phosphates (31 amu)
}

}  // namespace
}  // namespace mdtask::traj
