#include "mdtask/traj/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mdtask/traj/vec3.h"

namespace mdtask::traj {
namespace {

TEST(ProteinGeneratorTest, ShapeMatchesParams) {
  ProteinTrajectoryParams p;
  p.atoms = 50;
  p.frames = 20;
  const Trajectory t = make_protein_trajectory(p);
  EXPECT_EQ(t.frames(), 20u);
  EXPECT_EQ(t.atoms(), 50u);
}

TEST(ProteinGeneratorTest, DeterministicForSeed) {
  ProteinTrajectoryParams p;
  p.atoms = 10;
  p.frames = 5;
  p.seed = 99;
  const Trajectory a = make_protein_trajectory(p);
  const Trajectory b = make_protein_trajectory(p);
  for (std::size_t f = 0; f < a.frames(); ++f) {
    for (std::size_t i = 0; i < a.atoms(); ++i) {
      EXPECT_EQ(a.frame(f)[i], b.frame(f)[i]);
    }
  }
}

TEST(ProteinGeneratorTest, FramesMoveSmoothly) {
  ProteinTrajectoryParams p;
  p.atoms = 100;
  p.frames = 30;
  const Trajectory t = make_protein_trajectory(p);
  for (std::size_t f = 1; f < t.frames(); ++f) {
    double max_step = 0.0;
    for (std::size_t i = 0; i < t.atoms(); ++i) {
      max_step = std::max(max_step, dist(t.frame(f)[i], t.frame(f - 1)[i]));
    }
    // Per-frame displacement bounded by drift + a few noise sigmas.
    EXPECT_LT(max_step, p.drift + 8.0 * p.step_sigma);
    EXPECT_GT(max_step, 0.0);
  }
}

TEST(ProteinGeneratorTest, EnsembleMembersDiffer) {
  ProteinTrajectoryParams p;
  p.atoms = 10;
  p.frames = 5;
  const Ensemble e = make_protein_ensemble(3, p);
  ASSERT_EQ(e.size(), 3u);
  EXPECT_NE(e[0].frame(0)[0], e[1].frame(0)[0]);
  EXPECT_NE(e[1].frame(0)[0], e[2].frame(0)[0]);
}

TEST(BilayerGeneratorTest, AtomCountAndLabels) {
  BilayerParams p;
  p.atoms = 1000;
  const Bilayer b = make_bilayer(p);
  EXPECT_EQ(b.atoms(), 1000u);
  ASSERT_EQ(b.leaflet.size(), 1000u);
  std::size_t upper = 0;
  for (auto l : b.leaflet) upper += l;
  EXPECT_EQ(upper, 500u);
}

TEST(BilayerGeneratorTest, LeafletsAreSeparatedInZ) {
  BilayerParams p;
  p.atoms = 2000;
  const Bilayer b = make_bilayer(p);
  float max_lower = -1e9f, min_upper = 1e9f;
  for (std::size_t i = 0; i < b.atoms(); ++i) {
    if (b.leaflet[i] == 0) {
      max_lower = std::max(max_lower, b.positions[i].z);
    } else {
      min_upper = std::min(min_upper, b.positions[i].z);
    }
  }
  // Gap (4 spacings) must far exceed the cutoff (2.1 spacings).
  EXPECT_GT(min_upper - max_lower, static_cast<float>(default_cutoff(p)));
}

TEST(BilayerGeneratorTest, ContactGraphDegreeNearPaperDensity) {
  BilayerParams p;
  p.atoms = 4096;
  const Bilayer b = make_bilayer(p);
  const double cutoff = default_cutoff(p);
  const double c2 = cutoff * cutoff;
  std::size_t edges = 0;
  for (std::size_t i = 0; i < b.atoms(); ++i) {
    for (std::size_t j = i + 1; j < b.atoms(); ++j) {
      if (dist2(b.positions[i], b.positions[j]) <= c2) ++edges;
    }
  }
  const double degree = 2.0 * static_cast<double>(edges) /
                        static_cast<double>(b.atoms());
  // Paper: 131k atoms -> 896k edges => mean degree ~13.7. Allow slack for
  // boundary effects at this small size.
  EXPECT_GT(degree, 10.0);
  EXPECT_LT(degree, 17.0);
}

TEST(BilayerGeneratorTest, DeterministicForSeed) {
  BilayerParams p;
  p.atoms = 256;
  const Bilayer a = make_bilayer(p);
  const Bilayer b = make_bilayer(p);
  EXPECT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i], b.positions[i]);
  }
}

}  // namespace
}  // namespace mdtask::traj
