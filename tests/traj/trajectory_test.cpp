#include "mdtask/traj/trajectory.h"

#include <gtest/gtest.h>

namespace mdtask::traj {
namespace {

TEST(Vec3Test, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
}

TEST(Vec3Test, Distances) {
  const Vec3 a{0, 0, 0}, b{3, 4, 0};
  EXPECT_DOUBLE_EQ(dist2(a, b), 25.0);
  EXPECT_DOUBLE_EQ(dist(a, b), 5.0);
  EXPECT_DOUBLE_EQ(dist(a, a), 0.0);
}

TEST(TrajectoryTest, ShapeAndFrameAccess) {
  Trajectory t(5, 10);
  EXPECT_EQ(t.frames(), 5u);
  EXPECT_EQ(t.atoms(), 10u);
  EXPECT_EQ(t.frame(0).size(), 10u);
  EXPECT_EQ(t.data().size(), 50u);
  EXPECT_EQ(t.byte_size(), 50u * sizeof(Vec3));
}

TEST(TrajectoryTest, FramesAreDisjointViews) {
  Trajectory t(2, 3);
  t.frame(0)[0] = {1, 1, 1};
  t.frame(1)[0] = {2, 2, 2};
  EXPECT_EQ(t.frame(0)[0], Vec3(1, 1, 1));
  EXPECT_EQ(t.frame(1)[0], Vec3(2, 2, 2));
}

TEST(TrajectoryTest, DefaultIsEmpty) {
  Trajectory t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.frames(), 0u);
  EXPECT_EQ(t.atoms(), 0u);
}

}  // namespace
}  // namespace mdtask::traj
