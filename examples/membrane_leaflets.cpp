// The MDAnalysis-style Leaflet Finder workflow, end to end:
//
//   1. Build a lipid-resolved membrane Universe (heads + tails).
//   2. Select the phosphate head groups with the selection language
//      ("name P") — LF is specified on head groups; running it on all
//      atoms would merge the leaflets through the interleaved tails.
//   3. Run the engine-parallel tree-search Leaflet Finder on the
//      selection.
//   4. Map the per-head components back to lipid residues and report
//      the two leaflets.
//
// Usage: membrane_leaflets [lipids=2000] [engine=spark|dask|mpi|rp]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mdtask/common/table.h"
#include "mdtask/traj/generators.h"
#include "mdtask/traj/universe.h"
#include "mdtask/workflows/leaflet_runner.h"

int main(int argc, char** argv) {
  using namespace mdtask;
  traj::LipidBilayerParams params;
  params.lipids = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  workflows::EngineKind engine = workflows::EngineKind::kSpark;
  if (argc > 2) {
    const std::string name = argv[2];
    if (name == "dask") engine = workflows::EngineKind::kDask;
    else if (name == "mpi") engine = workflows::EngineKind::kMpi;
    else if (name == "rp") engine = workflows::EngineKind::kRp;
  }

  const auto universe = traj::make_lipid_bilayer_universe(params);
  std::printf("membrane: %zu lipids, %zu atoms total\n", params.lipids,
              universe.atoms());

  auto heads = universe.select("name P");
  if (!heads.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 heads.error().to_string().c_str());
    return 1;
  }
  const auto head_positions =
      traj::subset_frame(universe.trajectory().frame(0), heads.value());
  std::printf("selection 'name P': %zu head groups\n",
              head_positions.size());

  workflows::LfRunConfig config;
  config.workers = 4;
  config.target_tasks = 64;
  const double cutoff = 2.1 * params.spacing;
  auto result = workflows::run_leaflet_finder(engine, /*approach=*/4,
                                              head_positions, cutoff,
                                              config);
  if (!result.ok()) {
    std::fprintf(stderr, "leaflet finder failed: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }
  const auto& leaflets = result.value().leaflets;

  // Map head components back to lipid residues.
  Table table("Leaflets (" + std::string(workflows::to_string(engine)) +
              ", tree-search)");
  table.set_header({"leaflet", "lipids", "example residues"});
  for (int which = 0; which < 2; ++which) {
    const auto label = which == 0 ? leaflets.leaflet_a : leaflets.leaflet_b;
    std::string examples;
    std::size_t count = 0;
    for (std::size_t h = 0; h < leaflets.labels.size(); ++h) {
      if (leaflets.labels[h] != label) continue;
      ++count;
      if (count <= 5) {
        const std::uint32_t atom_index = heads.value()[h];
        examples += std::to_string(
                        universe.topology().atom(atom_index).residue_id) +
                    " ";
      }
    }
    table.add_row({which == 0 ? "outer" : "inner", std::to_string(count),
                   examples + "..."});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("components found: %zu (wall %.3f s, %llu tasks)\n",
              leaflets.component_count,
              result.value().metrics.wall_seconds,
              static_cast<unsigned long long>(result.value().metrics.tasks));
  return leaflets.component_count == 2 ? 0 : 1;
}
