// Path Similarity Analysis, end to end: distance matrix -> hierarchical
// clustering -> flat clusters — the published purpose of PSA (Seyler et
// al. 2015): "compute pair-wise distances between members of an
// ensemble of trajectories and cluster the trajectories based on their
// distance matrix".
//
// We synthesize an ensemble with known family structure (three base
// trajectories, each perturbed into several members), run PSA in
// parallel on a chosen engine with either the Hausdorff or Fréchet
// metric, cluster, and check the recovered families.
//
// Usage: psa_clustering [families=3] [members=4] [metric=hausdorff|frechet]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mdtask/analysis/clustering.h"
#include "mdtask/common/rng.h"
#include "mdtask/common/table.h"
#include "mdtask/traj/generators.h"
#include "mdtask/workflows/psa_runner.h"

int main(int argc, char** argv) {
  using namespace mdtask;
  const std::size_t families =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  const std::size_t members =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;
  const bool use_frechet = argc > 3 && std::strcmp(argv[3], "frechet") == 0;

  // Build the ensemble: per family, a base trajectory plus noisy copies.
  traj::ProteinTrajectoryParams params;
  params.atoms = 24;
  params.frames = 16;
  Xoshiro256StarStar noise(2026);
  traj::Ensemble ensemble;
  std::vector<std::size_t> truth;
  for (std::size_t f = 0; f < families; ++f) {
    params.seed = 500 * (f + 1);
    const auto base = traj::make_protein_trajectory(params);
    for (std::size_t m = 0; m < members; ++m) {
      traj::Trajectory member = base;
      for (auto& p : member.data()) {
        p.x += static_cast<float>(noise.normal(0.0, 0.15));
        p.y += static_cast<float>(noise.normal(0.0, 0.15));
        p.z += static_cast<float>(noise.normal(0.0, 0.15));
      }
      ensemble.push_back(std::move(member));
      truth.push_back(f);
    }
  }
  std::printf("ensemble: %zu families x %zu members, metric: %s\n",
              families, members, use_frechet ? "Frechet" : "Hausdorff");

  // Distance matrix in parallel on the Dask-like engine, with the
  // requested metric (both share Alg. 2's blocking).
  workflows::PsaRunConfig config;
  config.workers = 4;
  config.metric = use_frechet ? workflows::PsaMetric::kFrechet
                              : workflows::PsaMetric::kHausdorff;
  const analysis::DistanceMatrix matrix =
      workflows::run_psa(workflows::EngineKind::kDask, ensemble, config)
          .matrix;

  // Cluster and cut into the known number of families.
  auto dendrogram =
      analysis::hierarchical_cluster(matrix, analysis::Linkage::kAverage);
  if (!dendrogram.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 dendrogram.error().to_string().c_str());
    return 1;
  }
  const auto labels =
      analysis::cut_into_clusters(dendrogram.value(), families);

  Table table("Recovered clusters");
  table.set_header({"trajectory", "true_family", "cluster_label"});
  std::size_t misplaced = 0;
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    table.add_row({std::to_string(i), std::to_string(truth[i]),
                   std::to_string(labels[i])});
    // A member is well-placed if it shares its label with its family's
    // first member.
    if (labels[i] != labels[truth[i] * members]) ++misplaced;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("last merge distances: ");
  const auto& steps = dendrogram.value().steps;
  for (std::size_t s = steps.size() >= 3 ? steps.size() - 3 : 0;
       s < steps.size(); ++s) {
    std::printf("%.3f ", steps[s].distance);
  }
  std::printf("\n%zu of %zu members misplaced\n", misplaced,
              ensemble.size());
  return misplaced == 0 ? 0 : 1;
}
