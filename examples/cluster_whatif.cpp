// What-if cluster explorer: replay a PSA or Leaflet Finder campaign on a
// hypothetical cluster before burning an allocation.
//
// This drives the same virtual-time layer the figure benches use: pick a
// machine, node count, framework and workload, and see the predicted
// makespan with its phase breakdown.
//
// Usage: cluster_whatif [nodes=8] [atoms=524288]
#include <cstdio>
#include <cstdlib>

#include "mdtask/common/table.h"
#include "mdtask/perf/workloads.h"

int main(int argc, char** argv) {
  using namespace mdtask;
  using namespace mdtask::perf;
  const std::size_t nodes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const std::size_t atoms =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 524288;

  const auto costs = python_pipeline_costs(host_kernel_costs());
  const LfWorkload workload{atoms, atoms * 7, 1024};

  Table table("Predicted Leaflet Finder campaign, " +
              std::to_string(nodes) + " Wrangler nodes (32 cores each), " +
              std::to_string(atoms) + " atoms");
  table.set_header({"framework", "approach", "makespan_s", "bcast_s",
                    "shuffle_s", "driver_s", "verdict"});
  for (const auto& model :
       {mpi_model(), spark_model(), dask_model(), rp_model()}) {
    for (int approach = 1; approach <= 4; ++approach) {
      const sim::ClusterSpec cluster{sim::wrangler(), nodes, nodes * 32};
      const auto outcome =
          simulate_leaflet(model, cluster, approach, workload, costs);
      if (!outcome.feasible) {
        table.add_row({model.name, std::to_string(approach), "-", "-", "-",
                       "-", outcome.failure});
        continue;
      }
      table.add_row({model.name, std::to_string(approach),
                     Table::fmt(outcome.makespan_s, 1),
                     Table::fmt(outcome.bcast_s, 2),
                     Table::fmt(outcome.shuffle_s, 2),
                     Table::fmt(outcome.driver_s, 2), "ok"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(pick the row with the smallest makespan that says 'ok')\n");
  return 0;
}
