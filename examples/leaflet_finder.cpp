// Leaflet Finder: all four architectural approaches (Table 2) on a
// generated lipid membrane, on your choice of engine.
//
// Usage: leaflet_finder [engine=spark|dask|mpi|rp] [atoms=20000]
//                       [tasks=64] [workers=4] [--trace out.json]
//
// Prints, per approach, the wall time, task count, measured data volume
// and the resulting leaflet assignment — and checks every approach
// against the serial reference (Alg. 3). With --trace, the engine's
// stage/task/collective spans are exported as a Chrome/Perfetto trace
// and summarized in a table.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mdtask/common/table.h"
#include "mdtask/trace/chrome_export.h"
#include "mdtask/trace/summary.h"
#include "mdtask/traj/generators.h"
#include "mdtask/workflows/leaflet_runner.h"

int main(int argc, char** argv) {
  using namespace mdtask;
  // Pull out `--trace <path>` first; the rest stay positional.
  const char* trace_path = nullptr;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(positional.size()) + 1;
  std::vector<char*> args(1, argv[0]);
  args.insert(args.end(), positional.begin(), positional.end());
  argv = args.data();

  workflows::EngineKind engine = workflows::EngineKind::kSpark;
  if (argc > 1) {
    const std::string name = argv[1];
    if (name == "dask") engine = workflows::EngineKind::kDask;
    else if (name == "mpi") engine = workflows::EngineKind::kMpi;
    else if (name == "rp") engine = workflows::EngineKind::kRp;
    else if (name != "spark") {
      std::fprintf(stderr, "unknown engine '%s' (spark|dask|mpi|rp)\n",
                   name.c_str());
      return 1;
    }
  }
  const std::size_t atoms =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;
  const std::size_t tasks =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 64;
  const std::size_t workers =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 4;

  traj::BilayerParams params;
  params.atoms = atoms;
  const auto membrane = traj::make_bilayer(params);
  const double cutoff = traj::default_cutoff(params);
  std::printf("membrane: %zu atoms, cutoff %.2f; engine: %s\n",
              membrane.atoms(), cutoff, workflows::to_string(engine));

  const auto reference =
      analysis::leaflet_finder_reference(membrane.positions, cutoff);
  std::printf("serial reference: leaflets of %zu and %zu atoms\n\n",
              reference.leaflet_a_size, reference.leaflet_b_size);

  Table table(std::string("Leaflet Finder approaches on ") +
              workflows::to_string(engine));
  table.set_header({"approach", "wall_s", "tasks", "data_moved",
                    "matches_reference"});
  trace::Tracer& tracer = trace::Tracer::global();
  if (trace_path != nullptr) tracer.set_enabled(true);
  for (int approach = 1; approach <= 4; ++approach) {
    workflows::LfRunConfig config;
    config.workers = workers;
    config.target_tasks = tasks;
    if (trace_path != nullptr) config.tracer = &tracer;
    const auto result = workflows::run_leaflet_finder(
        engine, approach, membrane.positions, cutoff, config);
    if (!result.ok()) {
      table.add_row({std::to_string(approach), "FAIL",
                     result.error().to_string(), "-", "-"});
      continue;
    }
    const auto& value = result.value();
    const std::uint64_t moved =
        value.edges_found != 0
            ? value.edges_found * sizeof(analysis::Edge)
            : value.metrics.shuffle_bytes + value.metrics.staged_bytes;
    table.add_row(
        {std::to_string(approach),
         Table::fmt(value.metrics.wall_seconds, 3),
         std::to_string(value.metrics.tasks),
         Table::fmt_bytes(static_cast<double>(moved)),
         value.leaflets.labels == reference.labels ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());

  if (trace_path != nullptr) {
    if (auto status = trace::write_chrome_trace(tracer, trace_path);
        !status.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   status.error().to_string().c_str());
      return 1;
    }
    std::printf("%s\n(trace: %s — open in Perfetto / chrome://tracing)\n",
                trace::to_table(trace::summarize(tracer), "Span summary")
                    .render()
                    .c_str(),
                trace_path);
  }
  return 0;
}
