// PSA over a trajectory ensemble, end to end, with real file I/O.
//
// Mirrors the paper's Sec. 4.2 pipeline: trajectories live as files on a
// (shared) filesystem, every engine task reads its inputs, computes its
// Alg.-2 block of Hausdorff distances and the driver assembles the
// distance matrix. All four engines are run and cross-checked.
//
// Usage: psa_ensemble [trajectories=12] [atoms=64] [frames=24] [workers=4]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "mdtask/common/table.h"
#include "mdtask/traj/generators.h"
#include "mdtask/traj/mdt_file.h"
#include "mdtask/workflows/psa_runner.h"

int main(int argc, char** argv) {
  using namespace mdtask;
  const std::size_t count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;
  const std::size_t atoms = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const std::size_t frames = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 24;
  const std::size_t workers = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 4;

  // Stage the ensemble to disk as MDT files (the Lustre stand-in).
  traj::ProteinTrajectoryParams params;
  params.atoms = atoms;
  params.frames = frames;
  const auto staging_dir =
      std::filesystem::temp_directory_path() / "mdtask_psa_example";
  std::filesystem::create_directories(staging_dir);
  std::printf("staging %zu trajectories under %s ...\n", count,
              staging_dir.c_str());
  traj::Ensemble ensemble;
  for (std::size_t i = 0; i < count; ++i) {
    params.seed = 100 + i;
    auto trajectory = traj::make_protein_trajectory(params);
    const auto path = staging_dir / ("traj_" + std::to_string(i) + ".mdt");
    if (auto s = traj::write_mdt(path.string(), trajectory); !s.ok()) {
      std::fprintf(stderr, "write failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    ensemble.push_back(std::move(trajectory));
  }

  // Read everything back (exactly what the paper's tasks do per block;
  // we read once up front since all engines share this process).
  for (std::size_t i = 0; i < count; ++i) {
    const auto path = staging_dir / ("traj_" + std::to_string(i) + ".mdt");
    auto loaded = traj::read_mdt(path.string());
    if (!loaded.ok()) {
      std::fprintf(stderr, "read failed: %s\n",
                   loaded.error().to_string().c_str());
      return 1;
    }
    ensemble[i] = std::move(loaded).value();
  }

  Table table("PSA across engines (" + std::to_string(count) +
              " trajectories)");
  table.set_header({"engine", "tasks", "wall_s", "max_diff_vs_mpi"});
  workflows::PsaRunConfig config;
  config.workers = workers;
  const auto reference =
      workflows::run_psa(workflows::EngineKind::kMpi, ensemble, config);
  for (auto engine :
       {workflows::EngineKind::kMpi, workflows::EngineKind::kSpark,
        workflows::EngineKind::kDask, workflows::EngineKind::kRp}) {
    const auto result = workflows::run_psa(engine, ensemble, config);
    table.add_row({workflows::to_string(engine),
                   std::to_string(result.metrics.tasks),
                   Table::fmt(result.metrics.wall_seconds, 3),
                   Table::fmt(result.matrix.max_abs_diff(reference.matrix),
                              12)});
  }
  std::printf("%s\n", table.render().c_str());

  std::filesystem::remove_all(staging_dir);
  return 0;
}
