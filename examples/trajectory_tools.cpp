// Trajectory toolbox walkthrough: file formats, sub-setting, slicing and
// RMSD analysis — the "common algorithms" of the paper's Sec. 2 (RMSD,
// pairwise distances, sub-setting) on one synthetic system.
//
// Usage: trajectory_tools [atoms=500] [frames=40]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "mdtask/analysis/pairwise.h"
#include "mdtask/common/table.h"
#include "mdtask/traj/generators.h"
#include "mdtask/traj/mdt_file.h"
#include "mdtask/traj/selection.h"
#include "mdtask/traj/xyz_file.h"
#include "mdtask/workflows/rmsd_runner.h"

int main(int argc, char** argv) {
  using namespace mdtask;
  const std::size_t atoms =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  const std::size_t frames =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40;

  traj::ProteinTrajectoryParams params;
  params.atoms = atoms;
  params.frames = frames;
  const auto trajectory = traj::make_protein_trajectory(params);

  // 1. Formats: write MDT (binary) and XYZ (text), read both back.
  const auto dir = std::filesystem::temp_directory_path() / "mdtask_tools";
  std::filesystem::create_directories(dir);
  const auto mdt_path = (dir / "traj.mdt").string();
  const auto xyz_path = (dir / "traj.xyz").string();
  if (!traj::write_mdt(mdt_path, trajectory).ok() ||
      !traj::write_xyz(xyz_path, trajectory).ok()) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }
  std::printf("wrote %s (%zu B/frame binary) and %s (text)\n",
              mdt_path.c_str(), trajectory.atoms() * sizeof(traj::Vec3),
              xyz_path.c_str());

  // 2. Sub-setting: atoms near the initial centroid, minus a core.
  const auto frame0 = trajectory.frame(0);
  traj::Vec3 centroid{};
  for (const auto& p : frame0) centroid += p;
  centroid = centroid * (1.0f / static_cast<float>(frame0.size()));
  const auto shell = traj::selection_difference(
      traj::select_sphere(frame0, centroid, 25.0),
      traj::select_sphere(frame0, centroid, 10.0));
  std::printf("selection: %zu shell atoms (10 < r <= 25 from centroid)\n",
              shell.size());
  auto sub = traj::subset_trajectory(trajectory, shell);
  if (!sub.ok()) {
    std::fprintf(stderr, "%s\n", sub.error().to_string().c_str());
    return 1;
  }

  // 3. Slicing: analyze every 4th frame of the second half.
  auto sliced = traj::slice_frames(sub.value(), frames / 2, frames, 4);
  if (!sliced.ok()) {
    std::fprintf(stderr, "%s\n", sliced.error().to_string().c_str());
    return 1;
  }

  // 4. Parallel RMSD series on the subset (Spark engine), plain and
  //    Kabsch-superposed.
  workflows::RmsdRunConfig plain_config;
  plain_config.workers = 4;
  auto plain = workflows::run_rmsd_series(workflows::EngineKind::kSpark,
                                          sub.value(), plain_config);
  workflows::RmsdRunConfig fitted_config = plain_config;
  fitted_config.options.superpose = true;
  auto fitted = workflows::run_rmsd_series(workflows::EngineKind::kSpark,
                                           sub.value(), fitted_config);

  Table table("RMSD of the shell selection vs frame 0");
  table.set_header({"frame", "rmsd", "rmsd_superposed"});
  for (std::size_t f = 0; f < plain.series.size(); f += frames / 10) {
    table.add_row({std::to_string(f), Table::fmt(plain.series[f], 3),
                   Table::fmt(fitted.series[f], 3)});
  }
  std::printf("%s\n", table.render().c_str());

  // 5. Pairwise distances (cdist) between the first and last sliced
  //    frames: how far did the shell drift?
  const auto first = sliced.value().frame(0);
  const auto last = sliced.value().frame(sliced.value().frames() - 1);
  const auto d = analysis::cdist(first, last);
  double mean = 0.0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    mean += d[i * last.size() + i];  // same-atom displacement
  }
  mean /= static_cast<double>(first.size());
  std::printf("mean same-atom displacement across the slice: %.3f\n", mean);

  std::filesystem::remove_all(dir);
  return 0;
}
