// Quickstart: the 60-second tour of the mdtask public API.
//
//  1. Generate a synthetic trajectory ensemble (the PSA input).
//  2. Compute one Hausdorff distance directly.
//  3. Run the full Path Similarity Analysis in parallel on the Dask-like
//     engine and print a corner of the distance matrix.
//  4. Build a membrane and find its leaflets with the tree-search
//     Leaflet Finder on the Spark-like engine.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "mdtask/analysis/hausdorff.h"
#include "mdtask/traj/generators.h"
#include "mdtask/workflows/leaflet_runner.h"
#include "mdtask/workflows/psa_runner.h"

int main() {
  using namespace mdtask;

  // 1. An ensemble of 8 small trajectories (32 atoms x 24 frames each).
  traj::ProteinTrajectoryParams params;
  params.atoms = 32;
  params.frames = 24;
  const traj::Ensemble ensemble = traj::make_protein_ensemble(8, params);
  std::printf("ensemble: %zu trajectories, %zu atoms x %zu frames each\n",
              ensemble.size(), ensemble[0].atoms(), ensemble[0].frames());

  // 2. One pairwise Hausdorff distance (Alg. 1).
  const double d01 = analysis::hausdorff_naive(ensemble[0], ensemble[1]);
  std::printf("hausdorff(traj0, traj1) = %.4f Angstrom\n", d01);

  // 3. Parallel PSA on the Dask-like engine (all engines give the same
  //    matrix; try kMpi / kSpark / kRp).
  workflows::PsaRunConfig psa_config;
  psa_config.workers = 4;
  const auto psa = workflows::run_psa(workflows::EngineKind::kDask,
                                      ensemble, psa_config);
  std::printf("\nPSA on %s: %llu tasks in %.3f s; D[0..3][0..3]:\n", "Dask",
              static_cast<unsigned long long>(psa.metrics.tasks),
              psa.metrics.wall_seconds);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      std::printf("  %7.3f", psa.matrix.at(i, j));
    }
    std::printf("\n");
  }

  // 4. Leaflet Finder (Alg. 3), tree-search approach, Spark-like engine.
  traj::BilayerParams bilayer_params;
  bilayer_params.atoms = 5000;
  const auto membrane = traj::make_bilayer(bilayer_params);
  workflows::LfRunConfig lf_config;
  lf_config.workers = 4;
  lf_config.target_tasks = 16;
  const auto lf = workflows::run_leaflet_finder(
      workflows::EngineKind::kSpark, /*approach=*/4, membrane.positions,
      traj::default_cutoff(bilayer_params), lf_config);
  if (!lf.ok()) {
    std::printf("leaflet finder failed: %s\n",
                lf.error().to_string().c_str());
    return 1;
  }
  std::printf(
      "\nleaflet finder: %zu components; leaflets of %zu and %zu atoms "
      "(%zu stray) in %.3f s\n",
      lf.value().leaflets.component_count,
      lf.value().leaflets.leaflet_a_size, lf.value().leaflets.leaflet_b_size,
      lf.value().leaflets.unassigned, lf.value().metrics.wall_seconds);
  return 0;
}
