#!/usr/bin/env python3
"""Plot the figure CSVs produced by the bench harness.

Usage:
    for b in build/bench/*; do $b; done   # writes ./bench_results/*.csv
    python3 scripts/plot_results.py [bench_results] [out_dir]

Produces one PNG per reproducible figure, with the same axes the paper
uses (log-log runtime/throughput plots, speedup panels). Requires
matplotlib; every plot degrades gracefully if its CSV is missing.
"""
import csv
import pathlib
import sys


def read(results_dir: pathlib.Path, stem: str):
    path = results_dir / f"{stem}.csv"
    if not path.exists():
        print(f"  (skipping {stem}: {path} not found)")
        return None
    with path.open() as handle:
        return list(csv.DictReader(handle))


def numeric(value: str):
    try:
        return float(value)
    except ValueError:
        return None


def main() -> int:
    results = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "bench_results")
    out = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "bench_results/plots")
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib")
        return 1
    out.mkdir(parents=True, exist_ok=True)

    # Fig. 2: throughput vs task count, log-log.
    rows = read(results, "fig2_throughput_single")
    if rows:
        fig, ax = plt.subplots(figsize=(6, 4))
        for framework in sorted({r["framework"] for r in rows}):
            xs, ys = [], []
            for r in rows:
                if r["framework"] != framework:
                    continue
                y = numeric(r["tasks_per_s"])
                if y is not None:
                    xs.append(float(r["tasks"]))
                    ys.append(y)
            ax.loglog(xs, ys, marker="o", label=framework)
        ax.set_xlabel("number of tasks")
        ax.set_ylabel("throughput (tasks/s)")
        ax.set_title("Fig. 2: single-node task throughput")
        ax.legend()
        fig.tight_layout()
        fig.savefig(out / "fig2.png", dpi=150)
        print(f"  wrote {out/'fig2.png'}")

    # Fig. 6: CPPTraj runtime + speedup.
    rows = read(results, "fig6_cpptraj")
    if rows:
        fig, (top, bottom) = plt.subplots(2, 1, figsize=(6, 6), sharex=True)
        for build in sorted({r["build"] for r in rows}):
            sub = [r for r in rows if r["build"] == build]
            cores = [float(r["cores"]) for r in sub]
            top.semilogy(cores, [float(r["runtime_s"]) for r in sub],
                         marker="o", label=build)
            bottom.plot(cores, [float(r["speedup"]) for r in sub],
                        marker="o", label=build)
        top.set_ylabel("time (s)")
        bottom.set_ylabel("speedup")
        bottom.set_xlabel("cores")
        top.set_title("Fig. 6: CPPTraj 2D-RMSD")
        top.legend()
        fig.tight_layout()
        fig.savefig(out / "fig6.png", dpi=150)
        print(f"  wrote {out/'fig6.png'}")

    # Fig. 7: Leaflet Finder runtimes per approach/framework.
    rows = read(results, "fig7_leaflet")
    if rows:
        frameworks = sorted({r["framework"] for r in rows})
        approaches = sorted({r["approach"] for r in rows})
        fig, axes = plt.subplots(len(frameworks), len(approaches),
                                 figsize=(4 * len(approaches),
                                          3 * len(frameworks)),
                                 sharex=True, sharey=True, squeeze=False)
        for i, framework in enumerate(frameworks):
            for j, approach in enumerate(approaches):
                ax = axes[i][j]
                for atoms in sorted({r["atoms"] for r in rows}):
                    sub = [r for r in rows
                           if r["framework"] == framework
                           and r["approach"] == approach
                           and r["atoms"] == atoms
                           and numeric(r["runtime_s"]) is not None]
                    if not sub:
                        continue
                    xs = [float(r["cores/nodes"].split("/")[0]) for r in sub]
                    ys = [float(r["runtime_s"]) for r in sub]
                    ax.loglog(xs, ys, marker="o", label=atoms)
                if i == 0:
                    ax.set_title(approach, fontsize=8)
                if j == 0:
                    ax.set_ylabel(f"{framework}\nruntime (s)", fontsize=8)
        axes[0][0].legend(fontsize=7)
        fig.suptitle("Fig. 7: Leaflet Finder")
        fig.tight_layout()
        fig.savefig(out / "fig7.png", dpi=150)
        print(f"  wrote {out/'fig7.png'}")

    # Fig. 8: broadcast vs runtime.
    rows = read(results, "fig8_broadcast")
    if rows:
        fig, ax = plt.subplots(figsize=(6, 4))
        for framework in sorted({r["framework"] for r in rows}):
            sub = [r for r in rows if r["framework"] == framework
                   and numeric(r["broadcast_s"]) is not None]
            xs = [float(r["cores/nodes"].split("/")[0]) for r in sub]
            ys = [float(r["broadcast_s"]) for r in sub]
            ax.loglog(xs, ys, marker="o", label=f"{framework} bcast")
        ax.set_xlabel("cores")
        ax.set_ylabel("broadcast time (s)")
        ax.set_title("Fig. 8: approach-1 broadcast time")
        ax.legend()
        fig.tight_layout()
        fig.savefig(out / "fig8.png", dpi=150)
        print(f"  wrote {out/'fig8.png'}")

    print("done")
    return 0


if __name__ == "__main__":
    sys.exit(main())
