#!/usr/bin/env python3
"""Diff a bench_kernels --json run against the committed baseline.

Usage:
    bench_kernels --json --quick --out=current.json
    python3 scripts/check_bench_regression.py \
        --baseline bench/BENCH_kernels.json --current current.json \
        [--max-regression 0.25] \
        [--min-speedup hausdorff_rmsd=2.0 --min-speedup leaflet_cutoff=2.0]

Also understands bench_pool --json output (same schema, family "pool").

Exit status is non-zero when any (kernel, policy) cell is more than
--max-regression slower than the baseline, or when a --min-speedup
kernel's policy-pair ratio falls below the requested factor.

--min-speedup accepts KERNEL=FACTOR[:SLOW/FAST]; the policy pair
defaults to scalar/vectorized. With an explicit pair, behavioural
entries are gated too: both cells come from the same run on the same
machine, so the ratio is comparable even though the absolute ns is not.
Example: --min-speedup pool_tile=0.9:single_fifo/work_stealing
"""

import argparse
import json
import sys


def load_entries(path):
    with open(path) as f:
        doc = json.load(f)
    return {(e["kernel"], e["policy"]): e for e in doc["entries"]}


# Behavioural entry families, excluded from the regression gate: they
# record recovery/membership/control-loop behaviour, not kernel speed,
# so their timings are not comparable across plans. An entry belongs to
# a family when it carries the family key as a truthy flag, or when its
# kernel name is the key or starts with "<key>_". Extend by appending a
# (key, reason) pair — no code changes needed.
BEHAVIOURAL_FAMILIES = (
    ("fault_injection", "fault-injection entry; timings not comparable"),
    ("elastic", "elasticity entry; timings depend on the membership plan"),
    ("autoscale", "autoscale entry; timings depend on the control loop"),
    ("stream", "streamed-I/O entry; timings depend on the filesystem model"),
    ("pool", "pool-overhead entry; absolute ns is machine-bound, gate the "
             "same-run policy ratio instead"),
    ("service", "serving-layer entry; latencies depend on the traffic "
                "schedule, gate same-run ratios instead"),
    ("repex", "replica-exchange entry; absolute ns is machine-bound, gate "
              "the same-run cache off/on ratio instead"),
    ("iterative_caching", "iterative-caching entry; absolute ns is "
                          "machine-bound, gate the same-run off/on ratio "
                          "instead"),
)


def behavioural(entry):
    """Skip reason for behavioural entries, None for kernel-speed ones."""
    if entry is None:
        return None
    kernel = entry.get("kernel", "")
    for key, reason in BEHAVIOURAL_FAMILIES:
        if entry.get(key):
            return reason
        if kernel == key or kernel.startswith(key + "_"):
            return reason
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="fail when current > baseline * (1 + this)")
    ap.add_argument("--min-speedup", action="append", default=[],
                    metavar="KERNEL=FACTOR[:SLOW/FAST]",
                    help="fail when FAST is not FACTOR x faster than SLOW "
                         "for KERNEL (repeatable; the policy pair defaults "
                         "to scalar/vectorized)")
    args = ap.parse_args()

    baseline = load_entries(args.baseline)
    current = load_entries(args.current)

    failures = []
    for key, base_entry in sorted(baseline.items()):
        kernel, policy = key
        cur_entry = current.get(key)
        # Behavioural entries (fault injection, elasticity) measure
        # recovery/membership behaviour, not kernel speed. Skip them
        # with a note.
        reason = behavioural(base_entry) or behavioural(cur_entry)
        if reason:
            print(f"{kernel:<16} {policy:<12} skipped ({reason})")
            continue
        base_ns = base_entry["ns_per_unit"]
        if cur_entry is None:
            failures.append(f"{kernel}/{policy}: missing from current run")
            continue
        cur_ns = cur_entry["ns_per_unit"]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + args.max_regression:
            status = "REGRESSION"
            failures.append(
                f"{kernel}/{policy}: {cur_ns:.2f} ns vs baseline "
                f"{base_ns:.2f} ns ({ratio:.2f}x, limit "
                f"{1.0 + args.max_regression:.2f}x)")
        print(f"{kernel:<16} {policy:<12} baseline {base_ns:>9.2f}  "
              f"current {cur_ns:>9.2f}  ratio {ratio:5.2f}  {status}")

    for spec in args.min_speedup:
        kernel, _, rest = spec.partition("=")
        factor_text, _, pair = rest.partition(":")
        factor = float(factor_text)
        if pair:
            slow_name, _, fast_name = pair.partition("/")
        else:
            slow_name, fast_name = "scalar", "vectorized"
        slow_entry = current.get((kernel, slow_name))
        fast_entry = current.get((kernel, fast_name))
        if slow_entry is None or fast_entry is None:
            failures.append(
                f"{kernel}: {slow_name}/{fast_name} cells missing")
            continue
        if not pair:
            # Behavioural entries stay out of the implicit gate, but an
            # EXPLICIT pair opts in: both cells come from the same run on
            # the same machine, so the ratio is comparable even though
            # the absolute ns is not.
            reason = behavioural(slow_entry) or behavioural(fast_entry)
            if reason:
                print(f"{kernel:<16} skipped ({reason})")
                continue
        slow = slow_entry["ns_per_unit"]
        fast = fast_entry["ns_per_unit"]
        speedup = slow / fast if fast > 0 else float("inf")
        ok = speedup >= factor
        print(f"{kernel:<16} {fast_name} speedup {speedup:5.2f}x "
              f"(required {factor:.2f}x)  {'ok' if ok else 'TOO SLOW'}")
        if not ok:
            failures.append(
                f"{kernel}: {fast_name} speedup {speedup:.2f}x < "
                f"required {factor:.2f}x")

    if failures:
        print("\nFAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall kernel benchmarks within limits")
    return 0


if __name__ == "__main__":
    sys.exit(main())
